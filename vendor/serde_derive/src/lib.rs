//! Vendored `#[derive(Serialize, Deserialize)]` without syn/quote.
//!
//! Parses the item declaration directly from the proc-macro token stream and
//! emits impl source as text. Supports exactly the shapes this workspace
//! derives on: non-generic structs (unit / tuple / named, with
//! `#[serde(skip)]` on named fields) and non-generic enums whose variants are
//! unit, newtype, tuple or struct-like (explicit discriminants tolerated).
//! Anything fancier (generics, rename, borrows) panics at expansion time
//! with a clear message rather than generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    UnitStruct,
    /// Tuple struct with its arity.
    TupleStruct(usize),
    NamedStruct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    skip: bool,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Newtype,
    Tuple(usize),
    Named(Vec<Field>),
}

// ---------------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            toks: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// Skip leading attributes; returns true if any was `#[serde(skip)]`.
    fn skip_attrs(&mut self) -> bool {
        let mut skip = false;
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.next();
                    match self.next() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                            let mut inner = g.stream().into_iter();
                            if let Some(TokenTree::Ident(head)) = inner.next() {
                                if head.to_string() == "serde" {
                                    if let Some(TokenTree::Group(args)) = inner.next() {
                                        for tok in args.stream() {
                                            match tok {
                                                TokenTree::Ident(i) if i.to_string() == "skip" => {
                                                    skip = true;
                                                }
                                                TokenTree::Punct(p) if p.as_char() == ',' => {}
                                                other => panic!(
                                                    "serde_derive: unsupported serde attribute \
                                                     `{other}` (only `skip` is vendored)"
                                                ),
                                            }
                                        }
                                    }
                                }
                            }
                        }
                        other => panic!("serde_derive: malformed attribute near {other:?}"),
                    }
                }
                _ => return skip,
            }
        }
    }

    /// Skip a `pub` / `pub(...)` visibility marker.
    fn skip_vis(&mut self) {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected {what}, found {other:?}"),
        }
    }

    /// Consume tokens up to (and including) a depth-0 comma. Depth counts
    /// `<`/`>` pairs so commas inside generic arguments don't split fields;
    /// `->` is recognised so function-pointer types don't unbalance it.
    fn skip_until_comma(&mut self) {
        let mut angle: i32 = 0;
        let mut prev_dash = false;
        while let Some(tok) = self.peek() {
            match tok {
                TokenTree::Punct(p) => {
                    let c = p.as_char();
                    if c == ',' && angle == 0 {
                        self.next();
                        return;
                    }
                    match c {
                        '<' => angle += 1,
                        '>' if !prev_dash => angle -= 1,
                        _ => {}
                    }
                    prev_dash = c == '-';
                }
                _ => prev_dash = false,
            }
            self.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    cur.skip_attrs();
    cur.skip_vis();
    let keyword = cur.expect_ident("`struct` or `enum`");
    let name = cur.expect_ident("item name");
    if let Some(TokenTree::Punct(p)) = cur.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive: generic types are not supported by the vendored derive ({name})");
        }
    }
    let kind = match keyword.as_str() {
        "struct" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("serde_derive: unexpected token after struct {name}: {other:?}"),
        },
        "enum" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: expected enum body for {name}, found {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    Item { name, kind }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        let skip = cur.skip_attrs();
        if cur.at_end() {
            break;
        }
        cur.skip_vis();
        let name = cur.expect_ident("field name");
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field {name}, found {other:?}"),
        }
        cur.skip_until_comma();
        fields.push(Field { name, skip });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut cur = Cursor::new(stream);
    let mut count = 0;
    loop {
        cur.skip_attrs();
        if cur.at_end() {
            break;
        }
        cur.skip_vis();
        if cur.at_end() {
            break;
        }
        count += 1;
        cur.skip_until_comma();
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        cur.skip_attrs();
        if cur.at_end() {
            break;
        }
        let name = cur.expect_ident("variant name");
        let shape = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                cur.next();
                match n {
                    0 => Shape::Unit,
                    1 => Shape::Newtype,
                    n => Shape::Tuple(n),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                cur.next();
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        // Tolerate explicit discriminants (`= expr`) and the trailing comma.
        cur.skip_until_comma();
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::UnitStruct => format!("serializer.serialize_unit_struct(\"{name}\")"),
        Kind::TupleStruct(1) => {
            format!("serializer.serialize_newtype_struct(\"{name}\", &self.0)")
        }
        Kind::TupleStruct(n) => {
            let mut s = String::new();
            s.push_str("{ use serde::ser::SerializeTupleStruct as _;\n");
            s.push_str(&format!(
                "let mut state = serializer.serialize_tuple_struct(\"{name}\", {n})?;\n"
            ));
            for i in 0..*n {
                s.push_str(&format!("state.serialize_field(&self.{i})?;\n"));
            }
            s.push_str("state.end() }");
            s
        }
        Kind::NamedStruct(fields) => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            let mut s = String::new();
            s.push_str("{ use serde::ser::SerializeStruct as _;\n");
            s.push_str(&format!(
                "let mut state = serializer.serialize_struct(\"{name}\", {})?;\n",
                live.len()
            ));
            for f in &live {
                s.push_str(&format!(
                    "state.serialize_field(\"{0}\", &self.{0})?;\n",
                    f.name
                ));
            }
            s.push_str("state.end() }");
            s
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => serializer.serialize_unit_variant(\"{name}\", {idx}u32, \"{vname}\"),\n"
                    )),
                    Shape::Newtype => arms.push_str(&format!(
                        "{name}::{vname}(f0) => serializer.serialize_newtype_variant(\"{name}\", {idx}u32, \"{vname}\", f0),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let mut arm = format!(
                            "{name}::{vname}({}) => {{ use serde::ser::SerializeTupleVariant as _;\n\
                             let mut state = serializer.serialize_tuple_variant(\"{name}\", {idx}u32, \"{vname}\", {n})?;\n",
                            binds.join(", ")
                        );
                        for b in &binds {
                            arm.push_str(&format!("state.serialize_field({b})?;\n"));
                        }
                        arm.push_str("state.end() }\n");
                        arms.push_str(&arm);
                    }
                    Shape::Named(fields) => {
                        let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut arm = format!(
                            "{name}::{vname} {{ {} }} => {{ use serde::ser::SerializeStructVariant as _;\n\
                             let mut state = serializer.serialize_struct_variant(\"{name}\", {idx}u32, \"{vname}\", {})?;\n",
                            binds.join(", "),
                            live.len()
                        );
                        for f in fields {
                            if f.skip {
                                arm.push_str(&format!("let _ = {};\n", f.name));
                            } else {
                                arm.push_str(&format!(
                                    "state.serialize_field(\"{0}\", {0})?;\n",
                                    f.name
                                ));
                            }
                        }
                        arm.push_str("state.end() }\n");
                        arms.push_str(&arm);
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::ser::Serialize for {name} {{\n\
             fn serialize<S: serde::ser::Serializer>(&self, serializer: S) \
                 -> std::result::Result<S::Ok, S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

/// `seq.next_element()?` unwrapped with a positional length error.
fn next_element(pos: usize, what: &str) -> String {
    format!(
        "match seq.next_element()? {{ Some(v) => v, None => \
         return Err(serde::de::Error::invalid_length({pos}usize, &\"{what}\")) }}"
    )
}

/// A `visit_seq` visitor body building `ctor` from `fields` in order,
/// filling skipped fields from `Default`.
fn seq_visitor(value_ty: &str, ctor: &str, fields: &[Field], what: &str) -> String {
    let mut inits = String::new();
    let mut pos = 0usize;
    for f in fields {
        if f.skip {
            inits.push_str(&format!("{}: std::default::Default::default(),\n", f.name));
        } else {
            inits.push_str(&format!("{}: {},\n", f.name, next_element(pos, what)));
            pos += 1;
        }
    }
    format!(
        "struct SeqV;\n\
         impl<'de> serde::de::Visitor<'de> for SeqV {{\n\
             type Value = {value_ty};\n\
             fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {{\n\
                 f.write_str(\"{what}\")\n\
             }}\n\
             fn visit_seq<A: serde::de::SeqAccess<'de>>(self, mut seq: A) \
                 -> std::result::Result<Self::Value, A::Error> {{\n\
                 Ok({ctor} {{ {inits} }})\n\
             }}\n\
         }}"
    )
}

/// Same, for tuple-positional constructors.
fn tuple_seq_visitor(value_ty: &str, ctor: &str, arity: usize, what: &str) -> String {
    let args: Vec<String> = (0..arity).map(|i| next_element(i, what)).collect();
    format!(
        "struct SeqV;\n\
         impl<'de> serde::de::Visitor<'de> for SeqV {{\n\
             type Value = {value_ty};\n\
             fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {{\n\
                 f.write_str(\"{what}\")\n\
             }}\n\
             fn visit_seq<A: serde::de::SeqAccess<'de>>(self, mut seq: A) \
                 -> std::result::Result<Self::Value, A::Error> {{\n\
                 Ok({ctor}({}))\n\
             }}\n\
         }}",
        args.join(", ")
    )
}

fn field_name_list(fields: &[Field]) -> String {
    let names: Vec<String> = fields
        .iter()
        .filter(|f| !f.skip)
        .map(|f| format!("\"{}\"", f.name))
        .collect();
    names.join(", ")
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::UnitStruct => format!(
            "struct V;\n\
             impl<'de> serde::de::Visitor<'de> for V {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {{\n\
                     f.write_str(\"unit struct {name}\")\n\
                 }}\n\
                 fn visit_unit<E: serde::de::Error>(self) -> std::result::Result<{name}, E> {{\n\
                     Ok({name})\n\
                 }}\n\
             }}\n\
             deserializer.deserialize_unit_struct(\"{name}\", V)"
        ),
        Kind::TupleStruct(1) => format!(
            "struct V;\n\
             impl<'de> serde::de::Visitor<'de> for V {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {{\n\
                     f.write_str(\"newtype struct {name}\")\n\
                 }}\n\
                 fn visit_newtype_struct<D: serde::de::Deserializer<'de>>(self, d: D) \
                     -> std::result::Result<{name}, D::Error> {{\n\
                     Ok({name}(serde::de::Deserialize::deserialize(d)?))\n\
                 }}\n\
             }}\n\
             deserializer.deserialize_newtype_struct(\"{name}\", V)"
        ),
        Kind::TupleStruct(n) => {
            let visitor = tuple_seq_visitor(name, name, *n, &format!("tuple struct {name}"));
            format!("{visitor}\ndeserializer.deserialize_tuple_struct(\"{name}\", {n}, SeqV)")
        }
        Kind::NamedStruct(fields) => {
            let visitor = seq_visitor(name, name, fields, &format!("struct {name}"));
            format!(
                "{visitor}\n\
                 deserializer.deserialize_struct(\"{name}\", &[{}], SeqV)",
                field_name_list(fields)
            )
        }
        Kind::Enum(variants) => {
            let variant_names: Vec<String> =
                variants.iter().map(|v| format!("\"{}\"", v.name)).collect();
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{idx}u32 => {{ variant.unit_variant()?; Ok({name}::{vname}) }}\n"
                    )),
                    Shape::Newtype => arms.push_str(&format!(
                        "{idx}u32 => Ok({name}::{vname}(variant.newtype_variant()?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let visitor = tuple_seq_visitor(
                            name,
                            &format!("{name}::{vname}"),
                            *n,
                            &format!("tuple variant {name}::{vname}"),
                        );
                        arms.push_str(&format!(
                            "{idx}u32 => {{ {visitor}\nvariant.tuple_variant({n}, SeqV) }}\n"
                        ));
                    }
                    Shape::Named(fields) => {
                        let visitor = seq_visitor(
                            name,
                            &format!("{name}::{vname}"),
                            fields,
                            &format!("struct variant {name}::{vname}"),
                        );
                        arms.push_str(&format!(
                            "{idx}u32 => {{ {visitor}\n\
                             variant.struct_variant(&[{}], SeqV) }}\n",
                            field_name_list(fields)
                        ));
                    }
                }
            }
            format!(
                "struct Idx(u32);\n\
                 impl<'de> serde::de::Deserialize<'de> for Idx {{\n\
                     fn deserialize<D: serde::de::Deserializer<'de>>(d: D) \
                         -> std::result::Result<Idx, D::Error> {{\n\
                         struct IdxV;\n\
                         impl<'de> serde::de::Visitor<'de> for IdxV {{\n\
                             type Value = Idx;\n\
                             fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {{\n\
                                 f.write_str(\"a variant index\")\n\
                             }}\n\
                             fn visit_u64<E: serde::de::Error>(self, v: u64) \
                                 -> std::result::Result<Idx, E> {{\n\
                                 Ok(Idx(v as u32))\n\
                             }}\n\
                         }}\n\
                         d.deserialize_identifier(IdxV)\n\
                     }}\n\
                 }}\n\
                 const VARIANTS: &[&str] = &[{variant_list}];\n\
                 struct V;\n\
                 impl<'de> serde::de::Visitor<'de> for V {{\n\
                     type Value = {name};\n\
                     fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {{\n\
                         f.write_str(\"enum {name}\")\n\
                     }}\n\
                     fn visit_enum<A: serde::de::EnumAccess<'de>>(self, data: A) \
                         -> std::result::Result<{name}, A::Error> {{\n\
                         use serde::de::VariantAccess as _;\n\
                         let (Idx(idx), variant) = data.variant()?;\n\
                         match idx {{\n\
                             {arms}\
                             other => Err(serde::de::Error::unknown_variant(other, VARIANTS)),\n\
                         }}\n\
                     }}\n\
                 }}\n\
                 deserializer.deserialize_enum(\"{name}\", VARIANTS, V)",
                variant_list = variant_names.join(", "),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> serde::de::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: serde::de::Deserializer<'de>>(deserializer: D) \
                 -> std::result::Result<Self, D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
