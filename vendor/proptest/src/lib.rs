//! Vendored proptest subset.
//!
//! Implements the strategy algebra and `proptest!` runner the workspace's
//! property tests use: `any`, `Just`, ranges, regex-ish string patterns
//! (character classes + `{m,n}` counts), tuples, `prop_oneof!`,
//! `prop_map` / `prop_recursive`, `prop::collection::{vec, btree_map}`,
//! `prop::option::of`, `prop::sample::select`, and `ProptestConfig`.
//!
//! Differences from the real crate, deliberately accepted:
//! * **no shrinking** — a failing case reports the generated inputs verbatim;
//! * seeds are derived deterministically from the test's module path, so a
//!   failure reproduces on re-run but `.proptest-regressions` files are not
//!   consulted;
//! * string patterns support only the subset of regex syntax used in-tree
//!   (literals, `[...]` classes with ranges, `{n}` / `{m,n}` repetition).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// A failed property case (what `prop_assert!` produces).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-test RNG: seeded from the test path so every run
/// explores the same sequence (reproducible failures without a seed file).
pub fn test_rng_for(test_path: &str) -> TestRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h)
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy: 'static {
    type Value;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T + 'static,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Bounded recursion: `depth` levels of `expand` applied over the leaf,
    /// each level mixing leaves back in so shallow values stay common. The
    /// `_desired_size` / `_expected_branch` hints are accepted for API
    /// compatibility and ignored (no size-driven scaling).
    fn prop_recursive<F, R>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
        R: Strategy<Value = Self::Value> + 'static,
    {
        let mut strat = self.clone().boxed();
        for _ in 0..depth {
            let leaf = self.clone().boxed();
            let deeper = expand(strat).boxed();
            strat = Union::new(vec![leaf, deeper]).boxed();
        }
        strat
    }
}

/// Object-safe strategy, for `BoxedStrategy`.
trait DynStrategy<T> {
    fn gen_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.gen_value(rng)
    }
}

/// A cheaply-cloneable type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.0.gen_dyn(rng)
    }
}

/// Uniform choice among same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].gen_value(rng)
    }
}

/// `strategy.prop_map(f)`.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T + 'static,
    T: 'static,
{
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Whole-domain generation for primitives.
pub trait Arbitrary: Sized + 'static {
    fn arb(rng: &mut TestRng) -> Self;
}

pub struct AnyStrategy<T>(PhantomData<T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(PhantomData)
    }
}

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arb(rng)
    }
}

macro_rules! arb_int {
    ($($ty:ty),*) => {
        $(impl Arbitrary for $ty {
            fn arb(rng: &mut TestRng) -> Self {
                rand::RngCore::next_u64(rng) as $ty
            }
        })*
    };
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arb(rng: &mut TestRng) -> Self {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arb(rng: &mut TestRng) -> Self {
        // Finite, sign/magnitude-diverse floats. NaN and infinities are
        // excluded, matching the real crate's default f64 strategy.
        let sign = if rand::RngCore::next_u64(rng) & 1 == 0 {
            1.0
        } else {
            -1.0
        };
        let mantissa = (rand::RngCore::next_u64(rng) >> 11) as f64 / (1u64 << 53) as f64;
        let exp = rng.gen_range(-60..61i32);
        sign * mantissa * (2.0f64).powi(exp)
    }
}

impl Arbitrary for f32 {
    fn arb(rng: &mut TestRng) -> Self {
        f64::arb(rng) as f32
    }
}

impl Arbitrary for char {
    fn arb(rng: &mut TestRng) -> Self {
        // ASCII-weighted with occasional wider scalars.
        if rng.gen_range(0..4u32) == 0 {
            char::from_u32(rng.gen_range(0x80..0xD800u32)).unwrap_or('\u{FFFD}')
        } else {
            char::from(rng.gen_range(0x20..0x7Fu32) as u8)
        }
    }
}

// ---------------------------------------------------------------------------
// Ranges
// ---------------------------------------------------------------------------

macro_rules! range_strategy {
    ($($ty:ty),*) => {
        $(impl Strategy for Range<$ty> {
            type Value = $ty;
            fn gen_value(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        })*
    };
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------------
// String patterns
// ---------------------------------------------------------------------------

impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

enum PatItem {
    Class(Vec<char>),
    Literal(char),
}

/// Parse the regex subset `([...] | literal){n | m,n}?`* and draw a string.
fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut chars = pattern.chars().peekable();
    let mut items: Vec<(PatItem, u32, u32)> = Vec::new();
    while let Some(c) = chars.next() {
        let item = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        None => panic!("unterminated character class in pattern {pattern:?}"),
                        Some(']') => break,
                        Some('-') if prev.is_some() && chars.peek().is_some_and(|&c| c != ']') => {
                            let lo = prev.take().unwrap();
                            let hi = chars.next().unwrap();
                            for x in lo..=hi {
                                set.push(x);
                            }
                        }
                        Some(other) => {
                            if let Some(p) = prev.take() {
                                set.push(p);
                            }
                            prev = Some(other);
                        }
                    }
                }
                if let Some(p) = prev {
                    set.push(p);
                }
                assert!(
                    !set.is_empty(),
                    "empty character class in pattern {pattern:?}"
                );
                PatItem::Class(set)
            }
            '\\' => PatItem::Literal(
                chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}")),
            ),
            other => PatItem::Literal(other),
        };
        // Optional {n} / {m,n} quantifier.
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad quantifier"),
                    n.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let n: u32 = spec.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        items.push((item, min, max));
    }
    let mut out = String::new();
    for (item, min, max) in &items {
        let count = if min == max {
            *min
        } else {
            rng.gen_range(*min..max + 1)
        };
        for _ in 0..count {
            match item {
                PatItem::Class(set) => out.push(set[rng.gen_range(0..set.len())]),
                PatItem::Literal(c) => out.push(*c),
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($t:ident . $idx:tt),+) => {
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

// ---------------------------------------------------------------------------
// prop:: modules
// ---------------------------------------------------------------------------

pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> Self {
            VecStrategy {
                elem: self.elem.clone(),
                size: self.size.clone(),
            }
        }
    }

    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = sample_size(&self.size, rng);
            (0..len).map(|_| self.elem.gen_value(rng)).collect()
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy { key, value, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = sample_size(&self.size, rng);
            let mut out = BTreeMap::new();
            // Duplicate keys collapse; an exact-size retry loop is not worth
            // it for property inputs.
            for _ in 0..len {
                out.insert(self.key.gen_value(rng), self.value.gen_value(rng));
            }
            out
        }
    }

    fn sample_size(range: &Range<usize>, rng: &mut TestRng) -> usize {
        if range.start >= range.end {
            range.start
        } else {
            rng.gen_range(range.clone())
        }
    }
}

pub mod option {
    use super::*;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_range(0..4u32) == 0 {
                None
            } else {
                Some(self.inner.gen_value(rng))
            }
        }
    }
}

pub mod sample {
    use super::*;

    pub struct Select<T> {
        choices: Vec<T>,
    }

    impl<T: Clone> Clone for Select<T> {
        fn clone(&self) -> Self {
            Select {
                choices: self.choices.clone(),
            }
        }
    }

    pub fn select<T: Clone + 'static>(choices: Vec<T>) -> Select<T> {
        assert!(!choices.is_empty(), "select() needs at least one choice");
        Select { choices }
    }

    impl<T: Clone + 'static> Strategy for Select<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            self.choices[rng.gen_range(0..self.choices.len())].clone()
        }
    }
}

/// Namespace mirror so `prop::collection::vec(..)` paths work.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "prop_assert failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq failed: {:?} != {:?}",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq failed: {:?} != {:?}: {}",
                left,
                right,
                format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_ne failed: both {:?}",
                left
            )));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr); $($(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let __strategy = ($($strat,)+);
                let __path = concat!(module_path!(), "::", stringify!($name));
                let mut __rng = $crate::test_rng_for(__path);
                for __case in 0..__config.cases {
                    let __values = $crate::Strategy::gen_value(&__strategy, &mut __rng);
                    let __debug = format!("{:?}", &__values);
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| -> ::std::result::Result<(), $crate::TestCaseError> {
                            let ($($pat,)+) = __values;
                            $body
                            ::std::result::Result::Ok(())
                        })
                    );
                    match __outcome {
                        ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                        ::std::result::Result::Ok(::std::result::Result::Err(e)) => {
                            panic!(
                                "proptest case {}/{} failed: {}\n  input: {}",
                                __case + 1, __config.cases, e, __debug
                            );
                        }
                        ::std::result::Result::Err(panic_payload) => {
                            let msg = panic_payload
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| panic_payload.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "<non-string panic>".into());
                            panic!(
                                "proptest case {}/{} panicked: {}\n  input: {}",
                                __case + 1, __config.cases, msg, __debug
                            );
                        }
                    }
                }
            }
        )*
    };
}
