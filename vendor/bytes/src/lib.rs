//! Vendored `bytes::Bytes`: an immutable, cheaply cloneable byte buffer.
//!
//! Backed by `Arc<[u8]>`, so `clone()` is a refcount bump — the property the
//! storage layer's snapshot images rely on. No `BytesMut`/split machinery;
//! the workspace only stores and reads whole records.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.data == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &*self.data == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data.cmp(&other.data)
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data.hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}
