//! Vendored criterion subset.
//!
//! A plain wall-clock timing harness behind criterion's builder API: no
//! statistical analysis, no HTML reports, no outlier rejection — each
//! benchmark runs `sample_size` samples after a warm-up window and prints
//! min / mean / max per-iteration times. Good enough to eyeball the
//! chapter-7 comparisons offline; use the real crate for publishable
//! numbers.

use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup; the vendored harness runs one setup
/// per iteration regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\n== group: {name}");
        BenchmarkGroup {
            config: self.clone(),
            name,
        }
    }

    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup {
    config: Criterion,
    #[allow(dead_code)]
    name: String,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            config: self.config.clone(),
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(id);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    config: Criterion,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` repeatedly: warm up, then collect `sample_size`
    /// samples or until the measurement window elapses.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_deadline {
            std::hint::black_box(routine());
        }
        let started = Instant::now();
        while self.samples.len() < self.config.sample_size
            && started.elapsed() < self.config.measurement_time
        {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
        }
        if self.samples.is_empty() {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Batched variant: `setup` output feeds `routine`; setup time is
    /// excluded from the sample.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_deadline {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        let started = Instant::now();
        while self.samples.len() < self.config.sample_size
            && started.elapsed() < self.config.measurement_time
        {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
        if self.samples.is_empty() {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }

    fn report(&self, id: &str) {
        let n = self.samples.len().max(1) as u32;
        let total: Duration = self.samples.iter().sum();
        let mean = total / n;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        let max = self.samples.iter().max().copied().unwrap_or_default();
        println!("{id:<40} samples={n:<4} min={min:>12?} mean={mean:>12?} max={max:>12?}");
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                {
                    let mut criterion: $crate::Criterion = $config;
                    $target(&mut criterion);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
