//! A vendored, dependency-free subset of the serde data model.
//!
//! The build environment has no registry access, so this crate provides the
//! slice of serde's API the workspace actually exercises: the `Serialize` /
//! `Deserialize` traits, the 29-method (de)serializer data model, the
//! visitor/access machinery, and impls for the std types that appear in
//! persisted records. The derive macros live in the sibling
//! `serde_derive` vendor crate and are re-exported under the `derive`
//! feature, mirroring the real crate layout.
//!
//! Behavioural compatibility notes:
//! * integer visitors forward upward (`visit_u8` defaults to `visit_u64`)
//!   exactly like serde, so a visitor may implement only the widest method;
//! * `deserialize_str` may borrow from the input (`visit_borrowed_str`),
//!   falling back to the owned path is each visitor's choice;
//! * no `serde(rename)` / adjacently-tagged representations — the binary
//!   codec in `prometheus-storage` is positional and never needs them.

pub mod de;
pub mod ser;

pub use de::{Deserialize, DeserializeOwned, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

mod impls;
