//! Deserialization half of the data model.

use std::fmt::{self, Display};
use std::marker::PhantomData;

/// Error produced by a deserializer.
pub trait Error: Sized + std::fmt::Debug + Display {
    fn custom<T: Display>(msg: T) -> Self;

    fn invalid_length(len: usize, exp: &dyn Expected) -> Self {
        Self::custom(format_args!("invalid length {len}, expected {exp}"))
    }

    fn unknown_variant(variant_index: u32, expected: &'static [&'static str]) -> Self {
        Self::custom(format_args!(
            "unknown variant index {variant_index}, expected one of {expected:?}"
        ))
    }

    fn missing_field(field: &'static str) -> Self {
        Self::custom(format_args!("missing field `{field}`"))
    }
}

/// What a visitor expected, for diagnostics.
pub trait Expected {
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;
}

impl<'de, V: Visitor<'de>> Expected for V {
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.expecting(formatter)
    }
}

impl Expected for &str {
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
        formatter.write_str(self)
    }
}

impl Display for dyn Expected + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Expected::fmt(self, f)
    }
}

/// A type constructible from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// `Deserialize` at every lifetime — owned results.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Stateful deserialization seed; `PhantomData<T>` is the stateless case.
pub trait DeserializeSeed<'de>: Sized {
    type Value;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<T, D::Error> {
        T::deserialize(deserializer)
    }
}

/// The deserialization data model mirror of `Serializer`.
pub trait Deserializer<'de>: Sized {
    type Error: Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    fn is_human_readable(&self) -> bool {
        true
    }
}

fn unexpected<'de, V: Visitor<'de>, E: Error>(visitor: &V, got: &str) -> E {
    struct Expecting<'a, V>(&'a V);
    impl<'a, 'de, V: Visitor<'de>> Display for Expecting<'a, V> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.0.expecting(f)
        }
    }
    E::custom(format_args!(
        "invalid type: {got}, expected {}",
        Expecting(visitor)
    ))
}

/// Driver-side callbacks. Narrow visitors only implement the cases their
/// type can be built from; integer callbacks widen by default so a visitor
/// may implement only `visit_i64` / `visit_u64`.
pub trait Visitor<'de>: Sized {
    type Value;

    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    fn visit_bool<E: Error>(self, _v: bool) -> Result<Self::Value, E> {
        Err(unexpected(&self, "a boolean"))
    }
    fn visit_i8<E: Error>(self, v: i8) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    fn visit_i16<E: Error>(self, v: i16) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    fn visit_i32<E: Error>(self, v: i32) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    fn visit_i64<E: Error>(self, _v: i64) -> Result<Self::Value, E> {
        Err(unexpected(&self, "a signed integer"))
    }
    fn visit_u8<E: Error>(self, v: u8) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    fn visit_u16<E: Error>(self, v: u16) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    fn visit_u32<E: Error>(self, v: u32) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    fn visit_u64<E: Error>(self, _v: u64) -> Result<Self::Value, E> {
        Err(unexpected(&self, "an unsigned integer"))
    }
    fn visit_f32<E: Error>(self, v: f32) -> Result<Self::Value, E> {
        self.visit_f64(v as f64)
    }
    fn visit_f64<E: Error>(self, _v: f64) -> Result<Self::Value, E> {
        Err(unexpected(&self, "a float"))
    }
    fn visit_char<E: Error>(self, _v: char) -> Result<Self::Value, E> {
        Err(unexpected(&self, "a character"))
    }
    fn visit_str<E: Error>(self, _v: &str) -> Result<Self::Value, E> {
        Err(unexpected(&self, "a string"))
    }
    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }
    fn visit_bytes<E: Error>(self, _v: &[u8]) -> Result<Self::Value, E> {
        Err(unexpected(&self, "bytes"))
    }
    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(unexpected(&self, "an option"))
    }
    fn visit_some<D: Deserializer<'de>>(self, _deserializer: D) -> Result<Self::Value, D::Error> {
        Err(unexpected(&self, "an option"))
    }
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(unexpected(&self, "unit"))
    }
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        _deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        Err(unexpected(&self, "a newtype struct"))
    }
    fn visit_seq<A: SeqAccess<'de>>(self, _seq: A) -> Result<Self::Value, A::Error> {
        Err(unexpected(&self, "a sequence"))
    }
    fn visit_map<A: MapAccess<'de>>(self, _map: A) -> Result<Self::Value, A::Error> {
        Err(unexpected(&self, "a map"))
    }
    fn visit_enum<A: EnumAccess<'de>>(self, _data: A) -> Result<Self::Value, A::Error> {
        Err(unexpected(&self, "an enum"))
    }
}

pub trait SeqAccess<'de> {
    type Error: Error;

    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;

    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }

    fn size_hint(&self) -> Option<usize> {
        None
    }
}

pub trait MapAccess<'de> {
    type Error: Error;

    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;

    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error>;

    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }

    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }

    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error> {
        match self.next_key()? {
            Some(key) => Ok(Some((key, self.next_value()?))),
            None => Ok(None),
        }
    }

    fn size_hint(&self) -> Option<usize> {
        None
    }
}

pub trait EnumAccess<'de>: Sized {
    type Error: Error;
    type Variant: VariantAccess<'de, Error = Self::Error>;

    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;

    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

pub trait VariantAccess<'de>: Sized {
    type Error: Error;

    fn unit_variant(self) -> Result<(), Self::Error>;

    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;

    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }

    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

pub mod value {
    //! Trivial deserializers wrapping a single primitive value.

    use super::{Deserializer, Error, Visitor};
    use std::marker::PhantomData;

    /// Deserializer that hands `visit_u32` a fixed value, whatever data-model
    /// entry point is used (the codec feeds enum variant indexes through it).
    pub struct U32Deserializer<E> {
        value: u32,
        marker: PhantomData<E>,
    }

    impl<E> U32Deserializer<E> {
        pub fn new(value: u32) -> Self {
            U32Deserializer {
                value,
                marker: PhantomData,
            }
        }
    }

    macro_rules! forward_to_visit_u32 {
        ($($method:ident)*) => {
            $(
                fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
                    visitor.visit_u32(self.value)
                }
            )*
        };
    }

    impl<'de, E: Error> Deserializer<'de> for U32Deserializer<E> {
        type Error = E;

        forward_to_visit_u32! {
            deserialize_any deserialize_bool
            deserialize_i8 deserialize_i16 deserialize_i32 deserialize_i64
            deserialize_u8 deserialize_u16 deserialize_u32 deserialize_u64
            deserialize_f32 deserialize_f64 deserialize_char
            deserialize_str deserialize_string deserialize_bytes deserialize_byte_buf
            deserialize_option deserialize_unit deserialize_seq deserialize_map
            deserialize_identifier deserialize_ignored_any
        }

        fn deserialize_unit_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            visitor: V,
        ) -> Result<V::Value, Self::Error> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_newtype_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            visitor: V,
        ) -> Result<V::Value, Self::Error> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_tuple<V: Visitor<'de>>(
            self,
            _len: usize,
            visitor: V,
        ) -> Result<V::Value, Self::Error> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_tuple_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _len: usize,
            visitor: V,
        ) -> Result<V::Value, Self::Error> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _fields: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, Self::Error> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_enum<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _variants: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, Self::Error> {
            visitor.visit_u32(self.value)
        }
    }
}
