//! `Serialize` / `Deserialize` impls for the std types that appear in the
//! workspace's persisted records and wire frames.

use crate::de::{self, Deserialize, Deserializer, MapAccess, SeqAccess, Visitor};
use crate::ser::{Serialize, SerializeMap, SerializeSeq, SerializeTuple, Serializer};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasher, Hash};
use std::marker::PhantomData;

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

macro_rules! primitive {
    ($ty:ty, $ser:ident, $de:ident, $visit:ident, $expect:literal) => {
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$ser(*self)
            }
        }

        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V;
                impl<'de> Visitor<'de> for V {
                    type Value = $ty;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str($expect)
                    }
                    fn $visit<E: de::Error>(self, v: $ty) -> Result<$ty, E> {
                        Ok(v)
                    }
                }
                deserializer.$de(V)
            }
        }
    };
}

primitive!(
    bool,
    serialize_bool,
    deserialize_bool,
    visit_bool,
    "a boolean"
);
primitive!(i8, serialize_i8, deserialize_i8, visit_i8, "an i8");
primitive!(i16, serialize_i16, deserialize_i16, visit_i16, "an i16");
primitive!(i32, serialize_i32, deserialize_i32, visit_i32, "an i32");
primitive!(i64, serialize_i64, deserialize_i64, visit_i64, "an i64");
primitive!(u8, serialize_u8, deserialize_u8, visit_u8, "a u8");
primitive!(u16, serialize_u16, deserialize_u16, visit_u16, "a u16");
primitive!(u32, serialize_u32, deserialize_u32, visit_u32, "a u32");
primitive!(u64, serialize_u64, deserialize_u64, visit_u64, "a u64");
primitive!(f32, serialize_f32, deserialize_f32, visit_f32, "an f32");
primitive!(f64, serialize_f64, deserialize_f64, visit_f64, "an f64");
primitive!(
    char,
    serialize_char,
    deserialize_char,
    visit_char,
    "a character"
);

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = i64::deserialize(deserializer)?;
        v.try_into()
            .map_err(|_| de::Error::custom(format_args!("{v} out of range for isize")))
    }
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = u64::deserialize(deserializer)?;
        v.try_into()
            .map_err(|_| de::Error::custom(format_args!("{v} out of range for usize")))
    }
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: de::Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: de::Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(V)
    }
}

impl<'de> Deserialize<'de> for &'de str {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = &'de str;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a borrowed string")
            }
            fn visit_borrowed_str<E: de::Error>(self, v: &'de str) -> Result<&'de str, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_str(V)
    }
}

// ---------------------------------------------------------------------------
// Unit, references, boxes, options
// ---------------------------------------------------------------------------

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("unit")
            }
            fn visit_unit<E: de::Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(V)
    }
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: ?Sized + Serialize> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: ?Sized + Serialize> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<T: ?Sized + Serialize> Serialize for std::sync::Arc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::sync::Arc<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an option")
            }
            fn visit_none<E: de::Error>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Self::Value, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
            fn visit_unit<E: de::Error>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
        }
        deserializer.deserialize_option(V(PhantomData))
    }
}

// ---------------------------------------------------------------------------
// Sequences
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(V(PhantomData))
    }
}

macro_rules! set_impl {
    ($set:ident, $($bound:tt)+) => {
        impl<T: Serialize> Serialize for $set<T> {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut seq = serializer.serialize_seq(Some(self.len()))?;
                for item in self {
                    seq.serialize_element(item)?;
                }
                seq.end()
            }
        }

        impl<'de, T: Deserialize<'de> + $($bound)+> Deserialize<'de> for $set<T> {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V<T>(PhantomData<T>);
                impl<'de, T: Deserialize<'de> + $($bound)+> Visitor<'de> for V<T> {
                    type Value = $set<T>;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str("a sequence")
                    }
                    fn visit_seq<A: SeqAccess<'de>>(
                        self,
                        mut seq: A,
                    ) -> Result<Self::Value, A::Error> {
                        let mut out = $set::new();
                        while let Some(item) = seq.next_element()? {
                            out.insert(item);
                        }
                        Ok(out)
                    }
                }
                deserializer.deserialize_seq(V(PhantomData))
            }
        }
    };
}

set_impl!(BTreeSet, Ord);
set_impl!(HashSet, Eq + Hash);

// ---------------------------------------------------------------------------
// Maps
// ---------------------------------------------------------------------------

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Vis<K, V>(PhantomData<(K, V)>);
        impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Visitor<'de> for Vis<K, V> {
            type Value = BTreeMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = BTreeMap::new();
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(Vis(PhantomData))
    }
}

impl<K: Serialize, V: Serialize, H: BuildHasher> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<'de, K, V, H> Deserialize<'de> for HashMap<K, V, H>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
    H: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Vis<K, V, H>(PhantomData<(K, V, H)>);
        impl<'de, K, V, H> Visitor<'de> for Vis<K, V, H>
        where
            K: Deserialize<'de> + Eq + Hash,
            V: Deserialize<'de>,
            H: BuildHasher + Default,
        {
            type Value = HashMap<K, V, H>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = HashMap::with_hasher(H::default());
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(Vis(PhantomData))
    }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! tuple_impl {
    ($len:expr => $(($idx:tt $t:ident $v:ident))+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut tup = serializer.serialize_tuple($len)?;
                $(tup.serialize_element(&self.$idx)?;)+
                tup.end()
            }
        }

        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V<$($t),+>(PhantomData<($($t,)+)>);
                impl<'de, $($t: Deserialize<'de>),+> Visitor<'de> for V<$($t),+> {
                    type Value = ($($t,)+);
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        write!(f, "a tuple of length {}", $len)
                    }
                    fn visit_seq<A: SeqAccess<'de>>(
                        self,
                        mut seq: A,
                    ) -> Result<Self::Value, A::Error> {
                        $(
                            let $v = seq
                                .next_element()?
                                .ok_or_else(|| de::Error::invalid_length($idx, &"tuple"))?;
                        )+
                        Ok(($($v,)+))
                    }
                }
                deserializer.deserialize_tuple($len, V(PhantomData))
            }
        }
    };
}

tuple_impl!(1 => (0 T0 e0));
tuple_impl!(2 => (0 T0 e0) (1 T1 e1));
tuple_impl!(3 => (0 T0 e0) (1 T1 e1) (2 T2 e2));
tuple_impl!(4 => (0 T0 e0) (1 T1 e1) (2 T2 e2) (3 T3 e3));
tuple_impl!(5 => (0 T0 e0) (1 T1 e1) (2 T2 e2) (3 T3 e3) (4 T4 e4));
tuple_impl!(6 => (0 T0 e0) (1 T1 e1) (2 T2 e2) (3 T3 e3) (4 T4 e4) (5 T5 e5));
