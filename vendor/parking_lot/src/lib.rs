//! Vendored parking_lot façade over `std::sync`.
//!
//! Offers parking_lot's non-poisoning guard-returning API (`lock()` /
//! `read()` / `write()` return guards directly, no `Result`). Poison from a
//! panicking holder is swallowed via `into_inner`, matching parking_lot's
//! semantics of leaving the data accessible — callers that need
//! panic-consistency already maintain it structurally (see the poison audit
//! note in prometheus-server).

use std::fmt;
use std::sync::{self, TryLockError};

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}
