//! Vendored parking_lot façade over `std::sync`.
//!
//! Offers parking_lot's non-poisoning guard-returning API (`lock()` /
//! `read()` / `write()` return guards directly, no `Result`). Poison from a
//! panicking holder is swallowed via `into_inner`, matching parking_lot's
//! semantics of leaving the data accessible — callers that need
//! panic-consistency already maintain it structurally (see the poison audit
//! note in prometheus-server).

use std::fmt;
use std::sync::{self, TryLockError};

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Condition variable paired with [`Mutex`], mirroring parking_lot's
/// guard-taking `wait` signature (`&mut MutexGuard`, no poison `Result`).
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and block until notified; the
    /// lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // std's wait consumes and returns the guard; replace it in place.
        take_mut(guard, |g| {
            self.inner.wait(g).unwrap_or_else(|p| p.into_inner())
        });
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Replace `*dest` through a consuming closure. The guard types here have
/// no sensible placeholder value, so on the (impossible-by-construction)
/// panic inside `f` the process aborts rather than exposing a hole.
fn take_mut<T>(dest: &mut T, f: impl FnOnce(T) -> T) {
    unsafe {
        let old = std::ptr::read(dest);
        let new = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(old)))
            .unwrap_or_else(|_| std::process::abort());
        std::ptr::write(dest, new);
    }
}

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}
