//! Vendored rand subset.
//!
//! Provides the slice of the `rand` 0.8 API the workspace uses:
//! `rngs::StdRng`, `SeedableRng::{seed_from_u64, from_entropy}`, and
//! `Rng::{gen, gen_range, gen_bool, fill_bytes}` over integer ranges. The
//! generator is xoshiro256** seeded through SplitMix64 — deterministic for a
//! given seed, which the benchmark datasets and load generator rely on, but
//! NOT the same stream as the real crate (nothing in-tree depends on the
//! exact sequence, only on determinism).

use std::ops::Range;

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;

    fn from_entropy() -> Self {
        // Cheap entropy without OS hooks: address layout + monotonic time.
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E3779B97F4A7C15);
        let stack_probe = &t as *const _ as u64;
        Self::seed_from_u64(t ^ stack_probe.rotate_left(17))
    }
}

/// Sampling API. Everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($ty:ty),*) => {
        $(impl Standard for $ty {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        })*
    };
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with `gen_range`.
pub trait SampleRange<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

/// Element types drawable from a half-open range. The single blanket
/// `SampleRange` impl below keeps type inference working the way the real
/// crate's does: `Range<{integer}>: SampleRange<?T>` unifies `?T` with the
/// literal's type var, so comparisons against the result pin the literal.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_in<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_in(self.start, self.end, rng)
    }
}

macro_rules! sample_uint {
    ($($ty:ty),*) => {
        $(impl SampleUniform for $ty {
            fn sample_in<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high - low) as u64;
                // Plain modulo draw: the bias is ~span/2^64, irrelevant for
                // the dataset generators and load mixes this backs.
                low + (rng.next_u64() % span) as $ty
            }
        })*
    };
}

sample_uint!(u8, u16, u32, u64, usize);

macro_rules! sample_int {
    ($($ty:ty),*) => {
        $(impl SampleUniform for $ty {
            fn sample_in<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high as i64).wrapping_sub(low as i64) as u64;
                let off = rng.next_u64() % span;
                ((low as i64).wrapping_add(off as i64)) as $ty
            }
        })*
    };
}

sample_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore>(low: Self, high: Self, rng: &mut R) -> Self {
        low + f64::sample(rng) * (high - low)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce it from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// `rand::thread_rng()` stand-in: a fresh entropy-seeded StdRng per call.
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&w));
        }
    }
}
