//! What-if scenarios (§7.1.4): a taxonomist speculatively reorganises a
//! classification inside a unit of work, inspects the consequences (here:
//! how the derived names would change), and then keeps or discards the
//! experiment. Discarding rolls back every object, relationship, index and
//! classification change.
//!
//! Run with: `cargo run --example what_if`

use prometheus_db::{DbResult, Prometheus, StoreOptions};
use prometheus_taxonomy::dataset::{random_flora, FloraParams};
use prometheus_taxonomy::revision::{Revision, WhatIf};

fn main() -> DbResult<()> {
    let path = std::env::temp_dir().join("prometheus-what-if.db");
    let _ = std::fs::remove_file(&path);
    let p = Prometheus::open_with(
        &path,
        StoreOptions {
            sync_on_commit: false,
        },
    )?;
    let tax = p.taxonomy()?;

    // A small synthetic flora (see DESIGN.md, Substitutions) and a revision.
    let params = FloraParams {
        families: 1,
        genera_per_family: 3,
        species_per_genus: 4,
        specimens_per_species: 2,
        type_percent: 100,
    };
    let flora = random_flora(&tax, &params, 2024)?;
    let revision = Revision::start(&tax, &flora.classification, "working-revision")?;
    let db = tax.db();

    let species = flora.species[0];
    let old_genus = revision.working.parents(db, species)?[0];
    let new_genus = *flora.genera.iter().find(|g| **g != old_genus).unwrap();
    println!(
        "Scenario: move species '{}' from genus '{}' to genus '{}'",
        tax.name_of(species)?,
        tax.name_of(old_genus)?,
        tax.name_of(new_genus)?
    );

    // Scenario 1: try the move, look at the resulting circumscriptions,
    // decide to DISCARD.
    let (decision, counts) = revision.what_if(&tax, |tax, working| {
        let db = tax.db();
        for edge in db.classification_parent_edges(working.oid(), species)? {
            working.remove_edge(db, edge.oid)?;
        }
        tax.circumscribe(working, new_genus, species)?;
        let old_size = tax.circumscription(working, old_genus)?.len();
        let new_size = tax.circumscription(working, new_genus)?.len();
        println!(
            "  inside the scenario: old genus now holds {old_size} specimens, new genus {new_size}"
        );
        Ok((WhatIf::Discard, (old_size, new_size)))
    })?;
    println!("  decision: {decision:?} (sizes seen: {counts:?})");
    assert_eq!(revision.working.parents(db, species)?, vec![old_genus]);
    println!(
        "  after discard the species is back under '{}'",
        tax.name_of(old_genus)?
    );

    // Scenario 2: same move, KEEP it this time.
    let (decision, _) = revision.what_if(&tax, |tax, working| {
        let db = tax.db();
        for edge in db.classification_parent_edges(working.oid(), species)? {
            working.remove_edge(db, edge.oid)?;
        }
        tax.circumscribe(working, new_genus, species)?;
        Ok((WhatIf::Keep, ()))
    })?;
    println!("Second run, decision: {decision:?}");
    assert_eq!(revision.working.parents(db, species)?, vec![new_genus]);
    println!("  the working classification now keeps the move,");
    println!(
        "  while the published base still has the species under '{}'",
        tax.name_of(revision.base.parents(db, species)?[0])?
    );
    Ok(())
}
