//! An interactive POOL shell over the Figure 3 + Figure 4 datasets — the
//! closest thing to the thesis prototype's query console.
//!
//! ```text
//! cargo run --example pool_repl
//! pool> select n.name, n.year from NT n order by n.year
//! pool> \ast select x from CT x
//! pool> \quit
//! ```
//!
//! Reads queries from stdin (one per line); also works non-interactively:
//! `echo 'select s.code from Specimen s' | cargo run --example pool_repl`.

use prometheus_db::{DbResult, Prometheus, StoreOptions};
use prometheus_taxonomy::dataset::{figure3, figure4};
use std::io::{BufRead, Write};

fn main() -> DbResult<()> {
    let path = std::env::temp_dir().join("prometheus-repl.db");
    let _ = std::fs::remove_file(&path);
    let p = Prometheus::open_with(
        &path,
        StoreOptions {
            sync_on_commit: false,
        },
    )?;
    let tax = p.taxonomy()?;
    figure3(&tax)?;
    figure4(&tax)?;
    prometheus_taxonomy::derivation::derive_names(
        &tax,
        &prometheus_db::Classification::from_oid(
            p.db().classification_by_name("Raguenaud 2000")?.unwrap(),
        ),
        "Raguenaud.",
        2000,
    )?;

    println!("Prometheus POOL shell — Figure 3 + Figure 4 data loaded.");
    println!("Classifications: Raguenaud 2000, taxonomist-1..4. Classes: NT, CT, Specimen.");
    println!("Commands: \\ast <query> (show the parsed form), \\quit.");
    let stdin = std::io::stdin();
    loop {
        print!("pool> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "\\quit" || line == "\\q" {
            break;
        }
        if let Some(rest) = line.strip_prefix("\\ast ") {
            match prometheus_db::pool::parse(rest) {
                Ok(q) => println!("{q:#?}"),
                Err(e) => println!("parse error: {e}"),
            }
            continue;
        }
        match p.query(line) {
            Ok(result) => {
                println!("{}", result.columns.join(" | "));
                for row in &result.rows {
                    let cells: Vec<String> = row.columns.iter().map(|v| v.to_string()).collect();
                    println!("{}", cells.join(" | "));
                }
                println!("({} row(s))", result.len());
            }
            Err(e) => println!("error: {e}"),
        }
    }
    Ok(())
}
