//! The thesis' *other* running example (§1, introduction): a library whose
//! books appear simultaneously in several catalogue classifications —
//! by subject, by author, by format. Demonstrates that the classification
//! mechanism is generic (requirements 11 and 12): nothing here is taxonomic.
//!
//! Run with: `cargo run --example library_catalogue`

use prometheus_db::{
    AttrDef, ClassDef, Classification, DbResult, Prometheus, RelClassDef, StoreOptions, Type,
    Value, View,
};

fn main() -> DbResult<()> {
    let path = std::env::temp_dir().join("prometheus-library.db");
    let _ = std::fs::remove_file(&path);
    let p = Prometheus::open_with(
        &path,
        StoreOptions {
            sync_on_commit: false,
        },
    )?;
    let db = p.db();

    db.define_class(
        ClassDef::new("Category").attr(AttrDef::required("label", Type::Str).indexed()),
    )?;
    db.define_class(
        ClassDef::new("Book")
            .attr(AttrDef::required("title", Type::Str).indexed())
            .attr(AttrDef::required("author", Type::Str).indexed())
            .attr(AttrDef::optional("year", Type::Int)),
    )?;
    // Shelving is a generic placement classification — not is-a, not is-of
    // (requirement 11), so a plain sharable aggregation fits.
    db.define_relationship(RelClassDef::aggregation("Holds", "Category", "Object").sharable(true))?;

    let cat = |label: &str| -> DbResult<_> {
        db.create_object("Category", vec![("label".to_string(), Value::from(label))])
    };
    let book = |title: &str, author: &str, year: i64| -> DbResult<_> {
        db.create_object(
            "Book",
            vec![
                ("title".to_string(), Value::from(title)),
                ("author".to_string(), Value::from(author)),
                ("year".to_string(), Value::Int(year)),
            ],
        )
    };

    let dune = book("Dune", "Herbert", 1965)?;
    let hobbit = book("The Hobbit", "Tolkien", 1937)?;
    let silmarillion = book("The Silmarillion", "Tolkien", 1977)?;
    let neuromancer = book("Neuromancer", "Gibson", 1984)?;

    // Catalogue 1: by subject.
    let by_subject = Classification::create(db, "by-subject", Vec::new(), true)?;
    let fiction = cat("Fiction")?;
    let sf = cat("Science fiction")?;
    let fantasy = cat("Fantasy")?;
    by_subject.link(db, "Holds", fiction, sf, Vec::new())?;
    by_subject.link(db, "Holds", fiction, fantasy, Vec::new())?;
    for b in [dune, neuromancer] {
        by_subject.link(db, "Holds", sf, b, Vec::new())?;
    }
    for b in [hobbit, silmarillion] {
        by_subject.link(db, "Holds", fantasy, b, Vec::new())?;
    }

    // Catalogue 2: by author — the same book objects, a different shape.
    let by_author = Classification::create(db, "by-author", Vec::new(), true)?;
    let tolkien = cat("Tolkien shelf")?;
    let others = cat("Other authors")?;
    for b in [hobbit, silmarillion] {
        by_author.link(db, "Holds", tolkien, b, Vec::new())?;
    }
    for b in [dune, neuromancer] {
        by_author.link(db, "Holds", others, b, Vec::new())?;
    }

    // Query each catalogue independently (querying by context, §4.6.2).
    println!("Fiction shelf, subject catalogue:");
    let r = p.query(
        "select b.title from Category c, Book b in classification \"by-subject\" \
         where c.label = \"Fiction\" and b in c -> Holds* order by b.title",
    )?;
    for row in &r.rows {
        println!("  {}", row.columns[0]);
    }
    println!("Tolkien shelf, author catalogue:");
    let r = p.query(
        "select b.title from Category c, Book b in classification \"by-author\" \
         where c.label = \"Tolkien shelf\" and b in c -> Holds order by b.title",
    )?;
    for row in &r.rows {
        println!("  {}", row.columns[0]);
    }

    // Compare catalogues: both contain all four books (full overlap on
    // leaves) but no shared categories.
    let cmp = by_subject.compare(db, &by_author, prometheus_db::SynonymMode::Ignore)?;
    println!(
        "Catalogues share {} leaves, {} categories",
        cmp.shared_leaves.len(),
        cmp.shared_nodes.len() - cmp.shared_leaves.len()
    );

    // Views scope the database to one catalogue (views layer, §6.1.3).
    let view = View::new("subject-books")
        .class("Book")
        .classification(by_subject.oid());
    view.save(db)?;
    println!(
        "View 'subject-books' sees {} objects",
        view.members(db)?.len()
    );
    Ok(())
}
