//! The POOL shell, served over the wire: boots a prometheus-server on an
//! ephemeral port over the Figure 3 + Figure 4 datasets, then talks to it
//! exclusively through [`prometheus_server::PrometheusClient`] — the same
//! path a remote taxonomist's workstation would use.
//!
//! The one capability this adds over `pool_repl` is *session classification
//! context*: `\context <name>` scopes every following query to one
//! classification server-side (§4.6.2 "working inside a classification"),
//! without editing the query text. Contexts are per-session, so several
//! connected taxonomists can work in different classifications at once.
//!
//! ```text
//! cargo run -p prometheus-server --example remote_repl
//! pool> select t from CT t
//! pool> \context taxonomist-1
//! pool> select t from CT t          // now only taxonomist-1's taxa
//! pool> \context                    // clear
//! pool> \stats                      // server + storage counters, over the wire
//! pool> \profile select t from CT t // span tree for one execution
//! pool> \trace 20                   // newest span events from the trace ring
//! pool> \slowlog 10                 // slow-query log with plan fingerprints
//! pool> \quit
//! ```

use prometheus_db::{Prometheus, StoreOptions};
use prometheus_server::{serve, PrometheusClient, ServerConfig, ServerError};
use prometheus_taxonomy::dataset::{figure3, figure4};
use std::io::{BufRead, Write};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::temp_dir().join("prometheus-remote-repl.db");
    let _ = std::fs::remove_file(&path);
    let p = Prometheus::open_with(
        &path,
        StoreOptions {
            sync_on_commit: false,
        },
    )?;
    let tax = p.taxonomy()?;
    figure3(&tax)?;
    figure4(&tax)?;

    let handle = serve(p, ServerConfig::default())?;
    let mut client = PrometheusClient::connect(handle.addr())?;
    println!(
        "Prometheus wire shell — session {} on {} (Figure 3 + Figure 4 data).",
        client.session(),
        handle.addr()
    );
    println!("Classifications: Raguenaud 2000, taxonomist-1..4. Classes: NT, CT, Specimen.");
    println!(
        "Commands: \\context [name], \\stats, \\profile <query>, \\trace [n | hex-id], \
         \\slowlog [n], \\quit. Also: explain <query>, profile <query>."
    );

    let stdin = std::io::stdin();
    loop {
        print!("pool> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "\\quit" || line == "\\q" {
            break;
        }
        if line == "\\context" {
            client.set_context(None)?;
            println!("context cleared");
            continue;
        }
        if let Some(name) = line.strip_prefix("\\context ") {
            match client.set_context(Some(name.trim())) {
                Ok(()) => println!("context: {}", name.trim()),
                Err(ServerError::Remote { message, .. }) => println!("error: {message}"),
                Err(e) => return Err(e.into()),
            }
            continue;
        }
        if let Some(q) = line.strip_prefix("\\profile ") {
            match client.query(&format!("profile {}", q.trim())) {
                Ok(rows) => print_rows(&rows),
                Err(ServerError::Remote { message, .. }) => println!("error: {message}"),
                Err(e) => return Err(e.into()),
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("\\trace") {
            let arg = rest.trim();
            // A small decimal argument dumps the newest ring events (the
            // historic behaviour); anything that parses as a hex trace id
            // assembles that one trace's cross-shard span tree instead.
            if let Ok(n) = arg.parse::<u32>() {
                let events = client.trace(n.max(1))?;
                if events.is_empty() {
                    println!("trace ring is empty (tracing may be disabled)");
                } else {
                    print!("{}", prometheus_trace::render_tree(&events));
                    println!("({} span(s))", events.len());
                }
            } else if arg.is_empty() {
                let events = client.trace(20)?;
                if events.is_empty() {
                    println!("trace ring is empty (tracing may be disabled)");
                } else {
                    print!("{}", prometheus_trace::render_tree(&events));
                    println!("({} span(s))", events.len());
                }
            } else {
                match arg.parse::<prometheus_server::TraceId>() {
                    Ok(id) => match client.trace_get(id) {
                        Ok(spans) if spans.is_empty() => {
                            println!("no spans recorded for trace {id}")
                        }
                        Ok(spans) => {
                            let events: Vec<_> = spans.iter().map(|s| s.event).collect();
                            print!("{}", prometheus_trace::render_tree(&events));
                            println!("({} span(s) for trace {id})", spans.len());
                        }
                        Err(ServerError::Remote { message, .. }) => println!("error: {message}"),
                        Err(e) => return Err(e.into()),
                    },
                    Err(_) => println!("usage: \\trace [n | hex-trace-id]"),
                }
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("\\slowlog") {
            let n: u32 = rest.trim().parse().unwrap_or(10);
            let entries = client.slow_log(n)?;
            if entries.is_empty() {
                println!("slow log is empty (raise traffic or lower the threshold)");
            }
            for e in &entries {
                println!(
                    "{:>8} µs  {} row(s)  fp {:016x}  trace {}  lanes {:#06b}  \
                     lane-wait {} µs  session {}{}  {}",
                    e.dur_us,
                    e.rows,
                    e.fingerprint,
                    e.trace_id,
                    e.lane_mask,
                    e.lane_wait_us,
                    e.session,
                    e.context
                        .as_deref()
                        .map(|c| format!("  [{c}]"))
                        .unwrap_or_default(),
                    e.query,
                );
            }
            continue;
        }
        if line == "\\stats" {
            let (server, storage) = client.stats()?;
            println!(
                "server: {} requests over {} connections, {} units committed, \
                 mean latency {:.1} µs",
                server.requests_total(),
                server.connections_accepted,
                server.units_committed,
                server.latency.mean_us(),
            );
            println!(
                "executor: {} plan-cache hits / {} misses, {} parallel morsels",
                server.plan_cache_hits, server.plan_cache_misses, server.parallel_morsels,
            );
            println!(
                "storage: {} commits, {} puts, {} bytes written, cache hit ratio {:.2}",
                storage.commits,
                storage.puts,
                storage.bytes_written,
                storage.hit_ratio(),
            );
            continue;
        }
        match client.query(line) {
            Ok(rows) => print_rows(&rows),
            Err(ServerError::Remote { message, .. }) => println!("error: {message}"),
            Err(e) => return Err(e.into()),
        }
    }
    client.close()?;
    handle.stop();
    Ok(())
}

fn print_rows(rows: &prometheus_server::WireRows) {
    println!("{}", rows.columns.join(" | "));
    for row in &rows.rows {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("{}", cells.join(" | "));
    }
    println!("({} row(s))", rows.len());
}
