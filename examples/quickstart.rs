//! Quickstart: open a database, define a schema with first-class
//! relationships, build two overlapping classifications over shared
//! objects, and query them with POOL.
//!
//! Run with: `cargo run --example quickstart`

use prometheus_db::{
    AttrDef, ClassDef, Classification, DbResult, Prometheus, RelClassDef, StoreOptions, Type, Value,
};

fn main() -> DbResult<()> {
    let path = std::env::temp_dir().join("prometheus-quickstart.db");
    let _ = std::fs::remove_file(&path);
    let p = Prometheus::open_with(
        &path,
        StoreOptions {
            sync_on_commit: false,
        },
    )?;
    let db = p.db();

    // 1. Schema: a class and a relationship class. Relationships are
    //    first-class: they have their own class, attributes and instances.
    db.define_class(
        ClassDef::new("Topic")
            .attr(AttrDef::required("name", Type::Str).indexed())
            .attr(AttrDef::optional("notes", Type::Str)),
    )?;
    db.define_relationship(
        RelClassDef::aggregation("Narrower", "Topic", "Topic")
            .sharable(true) // a topic may sit under several broader topics…
            .attr(AttrDef::optional("reason", Type::Str)), // …with traceability
    )?;

    // 2. Objects.
    let science = db.create_object("Topic", attrs(&[("name", "Science")]))?;
    let computing = db.create_object("Topic", attrs(&[("name", "Computing")]))?;
    let databases = db.create_object("Topic", attrs(&[("name", "Databases")]))?;
    let botany = db.create_object("Topic", attrs(&[("name", "Botany")]))?;

    // 3. Two overlapping classifications of the *same* topics.
    let acm = Classification::create(db, "ACM-style", Vec::new(), true)?;
    acm.link(
        db,
        "Narrower",
        science,
        computing,
        attrs(&[("reason", "discipline")]),
    )?;
    acm.link(
        db,
        "Narrower",
        computing,
        databases,
        attrs(&[("reason", "subfield")]),
    )?;

    let library = Classification::create(db, "Library", Vec::new(), true)?;
    library.link(
        db,
        "Narrower",
        science,
        botany,
        attrs(&[("reason", "shelf B")]),
    )?;
    library.link(
        db,
        "Narrower",
        science,
        databases,
        attrs(&[("reason", "shelf D")]),
    )?;

    // 4. POOL queries: the `in classification` clause scopes traversals.
    println!("Everything under Science, ACM view:");
    let r = p.query(
        "select t.name from Topic root, Topic t in classification \"ACM-style\" \
         where root.name = \"Science\" and t in root -> Narrower* order by t.name",
    )?;
    for row in &r.rows {
        println!("  {}", row.columns[0]);
    }

    println!("Everything under Science, Library view:");
    let r = p.query(
        "select t.name from Topic root, Topic t in classification \"Library\" \
         where root.name = \"Science\" and t in root -> Narrower* order by t.name",
    )?;
    for row in &r.rows {
        println!("  {}", row.columns[0]);
    }

    // 5. The same object really is shared: Databases has a different parent
    //    in each classification.
    let acm_parents = acm.parents(db, databases)?;
    let lib_parents = library.parents(db, databases)?;
    println!(
        "Databases sits under {:?} in ACM and under {:?} in the library — one object, two overlapping classifications.",
        db.object(acm_parents[0])?.attr("name"),
        db.object(lib_parents[0])?.attr("name"),
    );

    // 6. Constraints via PCL: topic names must not be empty strings. (The
    //    schema itself already rejects a null name — rules add the rest.)
    p.install_pcl("context Topic pre named: self.name != \"\"")?;
    match db.create_object("Topic", vec![("name".to_string(), Value::from(""))]) {
        Err(e) => println!("Rule engine rejected an unnamed topic: {e}"),
        Ok(_) => unreachable!("the rule must fire"),
    }
    Ok(())
}

fn attrs(pairs: &[(&str, &str)]) -> Vec<(String, Value)> {
    pairs
        .iter()
        .map(|(k, v)| (k.to_string(), Value::from(*v)))
        .collect()
}
