//! The thesis' motivating workflow, end to end: a taxonomist revises a
//! plant group. Reproduces Figure 3 — building the nomenclatural history of
//! *Apium* / *Heliosciadium*, classifying specimens, and letting Prometheus
//! derive the names, including publishing the new combination
//! *Heliosciadium repens* (Jacq.)Raguenaud.
//!
//! Run with: `cargo run --example plant_revision`

use prometheus_db::SynonymMode;
use prometheus_db::{DbResult, Prometheus, StoreOptions};
use prometheus_taxonomy::dataset::figure3;
use prometheus_taxonomy::derivation::derive_names;
use prometheus_taxonomy::synonymy::detect_synonyms;

fn main() -> DbResult<()> {
    let path = std::env::temp_dir().join("prometheus-plant-revision.db");
    let _ = std::fs::remove_file(&path);
    let p = Prometheus::open_with(
        &path,
        StoreOptions {
            sync_on_commit: false,
        },
    )?;
    let tax = p.taxonomy()?;

    // Build the published state of the world (Figure 3's left-hand side):
    // names, type specimens, placements — then the classification under
    // revision: Taxon 1 (Genus) containing Taxon 2 (Species), circumscribing
    // the type specimens of Apium repens (1821) and Heliosciadium
    // nodiflorum (1824).
    let fig = figure3(&tax)?;
    println!("Published names:");
    for nt in [
        fig.nt_apium,
        fig.nt_graveolens,
        fig.nt_apium_repens,
        fig.nt_heliosciadium,
        fig.nt_nodiflorum,
    ] {
        println!("  {}", tax.full_name(nt)?);
    }

    // POOL sees the same world (typical taxonomic query, §7.1.3.1).
    let r =
        p.query("select n.name, n.year from NT n where n.rank = \"Species\" order by n.year")?;
    println!("Species names by priority:");
    for row in &r.rows {
        println!("  {} ({})", row.columns[0], row.columns[1]);
    }

    // Derive names for the new classification (§2.1.2's algorithm).
    println!("\nDeriving names for classification 'Raguenaud 2000'…");
    let outcome = derive_names(&tax, &fig.cls, "Raguenaud.", 2000)?;
    for name in &outcome.names {
        let ct = tax.name_of(name.ct)?;
        let flag = if name.new_combination {
            " [new combination published]"
        } else if name.is_new {
            " [new name published]"
        } else {
            ""
        };
        println!("  {ct}  =>  {}{flag}", name.rendered);
    }

    // Specimen-based synonym detection: start a revision, split Taxon 2 so
    // the nodiflorum type specimen moves into a new species-level group,
    // then compare the revision against the original.
    let revision = prometheus_taxonomy::revision::Revision::start(&tax, &fig.cls, "rev-2001")?;
    let new_ct = revision.split_taxon(&tax, fig.taxon2, &[fig.spec_nodiflorum_type], "Taxon 3")?;
    let reports = detect_synonyms(&tax, &fig.cls, &revision.working, SynonymMode::Ignore)?;
    println!(
        "\nAfter splitting Taxon 2 in the revision ({} overlap pair(s) found):",
        reports.len()
    );
    for r in &reports {
        println!(
            "  {} ~ {}  ({:?}, {})",
            tax.name_of(r.taxon_a)?,
            tax.name_of(r.taxon_b)?,
            r.kind,
            if r.homotypic {
                "homotypic"
            } else {
                "heterotypic"
            },
        );
    }
    let _ = new_ct;

    // Finally, the artifact taxonomists actually publish: the checklist.
    println!("\nChecklist of 'Raguenaud 2000':");
    print!(
        "{}",
        prometheus_taxonomy::checklist::render(&tax, &fig.cls)?
    );
    Ok(())
}
