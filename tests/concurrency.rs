//! Concurrency smoke tests: `Database` is `Send + Sync`; concurrent readers
//! observe consistent state while a single writer mutates (the single-writer
//! discipline the thesis prototype also assumed — POET serialised writes).

use prometheus_db::{Prometheus, Rank, Reader, StoreOptions, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn open(name: &str) -> Prometheus {
    let path = std::env::temp_dir().join(format!(
        "conc-{name}-{}-{:?}.log",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&path);
    Prometheus::open_with(
        path,
        StoreOptions {
            sync_on_commit: false,
        },
    )
    .unwrap()
}

#[test]
fn database_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<prometheus_db::Database>();
    assert_send_sync::<prometheus_db::RuleEngine>();
    assert_send_sync::<prometheus_db::Store>();
}

#[test]
fn concurrent_readers_with_single_writer() {
    let p = open("rw");
    let tax = p.taxonomy().unwrap();
    let db = tax.db().clone();
    // Seed data.
    let cls = tax.new_classification("base", "w", "c").unwrap();
    let root = tax.create_ct("Root", Rank::Familia).unwrap();
    let genus = tax.create_ct("G0", Rank::Genus).unwrap();
    tax.circumscribe(&cls, root, genus).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for i in 0..4 {
        let db = db.clone();
        let stop = stop.clone();
        readers.push(std::thread::spawn(move || {
            let mut reads = 0u64;
            while !stop.load(Ordering::Relaxed) {
                // Extent scans, record reads and traversals must never see a
                // torn state (each operation is internally consistent).
                let cts = db.extent("CT", false).unwrap();
                for oid in &cts {
                    let obj = db.object(*oid).unwrap();
                    assert!(!obj.attr("working_name").as_str().unwrap_or("").is_empty());
                }
                reads += 1;
            }
            assert!(reads > 0, "reader {i} never ran");
        }));
    }

    // Single writer: grow the classification.
    for i in 0..200 {
        let species = tax.create_ct(&format!("s{i}"), Rank::Species).unwrap();
        tax.circumscribe(&cls, genus, species).unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }
    // Final state is complete.
    assert_eq!(cls.descendants(&db, root, None).unwrap().len(), 201);
}

#[test]
fn readers_see_whole_units_not_fragments() {
    // A unit creates a pair of objects that must appear together; readers
    // poll for the marker and then assert its partner exists. Units are
    // applied operation-by-operation (logical atomicity via rollback, not
    // isolation), so the partner is created *before* the marker inside the
    // unit — the reader must never see the marker without the partner.
    let p = open("units");
    let tax = p.taxonomy().unwrap();
    let db = tax.db().clone();
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let db = db.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                // Both probes must resolve against ONE pinned snapshot: on the
                // live database a whole delete-unit can commit between the two
                // reads, which would report a torn state that never existed.
                let view = db.read_view();
                let markers = view
                    .find_by_attr("CT", "working_name", &Value::from("marker"))
                    .unwrap();
                if !markers.is_empty() {
                    let partners = view
                        .find_by_attr("CT", "working_name", &Value::from("partner"))
                        .unwrap();
                    assert!(
                        !partners.is_empty(),
                        "marker visible without its partner (unit ordering violated)"
                    );
                }
            }
        })
    };
    for _ in 0..50 {
        let token = db.begin_unit();
        let partner = tax.create_ct("partner", Rank::Genus).unwrap();
        let marker = tax.create_ct("marker", Rank::Genus).unwrap();
        db.commit_unit(token).unwrap();
        let token = db.begin_unit();
        db.delete_object(marker).unwrap();
        db.delete_object(partner).unwrap();
        db.commit_unit(token).unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    reader.join().unwrap();
}
