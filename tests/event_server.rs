//! Integration tests for the event-driven transport (`io_threads > 0`):
//! wire-protocol parity with the blocking path, writer-lane fairness
//! without blocked workers, slow-client isolation, the idle-session
//! reaper, unit deadlines, the HTTP `GET /metrics` scrape endpoint, the
//! connection cap, and graceful shutdown.
//!
//! The event path is Linux-only (epoll), so the whole file is.
#![cfg(target_os = "linux")]

use prometheus_db::{Prometheus, StoreOptions, Value};
use prometheus_server::frame::{read_msg, write_msg};
use prometheus_server::{
    serve, ErrorKind, MutationOp, PrometheusClient, Request, Response, ServerConfig, ServerError,
    ServerHandle, TraceId, PROTOCOL_VERSION,
};
use prometheus_taxonomy::Rank;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn tmp(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "event-server-{name}-{}-{:?}.log",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

fn serve_seeded(path: &PathBuf, seed: usize, config: ServerConfig) -> ServerHandle {
    let p = Prometheus::open_with(
        path,
        StoreOptions {
            sync_on_commit: false,
        },
    )
    .unwrap();
    let tax = p.taxonomy().unwrap();
    for i in 0..seed {
        tax.create_ct(&format!("Seed-{i:03}"), Rank::Genus).unwrap();
    }
    serve(p, config).unwrap()
}

fn event_config(io_threads: usize) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        io_threads,
        ..ServerConfig::default()
    }
}

/// Do the wire handshake on a raw socket, like `PrometheusClient::connect`
/// but leaving us in control of every byte afterwards.
fn raw_handshake(addr: SocketAddr) -> TcpStream {
    let mut s = TcpStream::connect(addr).unwrap();
    write_msg(
        &mut s,
        TraceId::NONE,
        &Request::Hello {
            version: PROTOCOL_VERSION,
            client: "raw-test".into(),
        },
    )
    .unwrap();
    match read_msg::<_, Response>(&mut s).unwrap().1 {
        Response::Welcome { .. } => s,
        other => panic!("expected Welcome, got {other:?}"),
    }
}

/// One blocking HTTP exchange against the scrape listener.
fn http_get(addr: SocketAddr, target: &str, method: &str) -> (String, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(s, "{method} {target} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap(); // server sends Connection: close
    let (head, body) = raw.split_once("\r\n\r\n").expect("complete response");
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

#[test]
fn event_mode_round_trips_the_whole_protocol_under_contention() {
    const SEED: usize = 4;
    const WRITERS: usize = 3;
    const BATCHES: usize = 6;
    let path = tmp("rt");
    let handle = serve_seeded(&path, SEED, event_config(2));
    let addr = handle.addr();

    // Lane-contending batch writers.
    let mut threads = Vec::new();
    for w in 0..WRITERS {
        threads.push(std::thread::spawn(move || {
            let mut c = PrometheusClient::connect(addr)?;
            for i in 0..BATCHES {
                let created = c.unit_batch(vec![MutationOp::CreateObject {
                    class: "CT".into(),
                    attrs: vec![
                        ("working_name".into(), Value::Str(format!("W{w}-{i:02}"))),
                        ("rank".into(), Value::Str("Species".into())),
                    ],
                }])?;
                assert_eq!(created.len(), 1);
            }
            c.close()
        }));
    }
    // A streamed unit (open/op/commit holds the lane across frames).
    threads.push(std::thread::spawn(move || {
        let mut c = PrometheusClient::connect(addr)?;
        let mut unit = c.begin_unit()?;
        let oid = unit.create_object(
            "CT",
            vec![
                ("working_name".into(), Value::Str("Streamed".into())),
                ("rank".into(), Value::Str("Genus".into())),
            ],
        )?;
        unit.set_attr(oid, "working_name", Value::Str("Streamed!".into()))?;
        unit.commit()?;
        c.close()
    }));
    // Concurrent readers on pinned snapshots.
    for r in 0..3 {
        threads.push(std::thread::spawn(move || {
            let mut c = PrometheusClient::connect(addr)?;
            c.ping()?;
            let mut last = 0usize;
            for _ in 0..25 {
                let rows = c.query("select t from CT t")?;
                assert!(rows.len() >= SEED, "reader {r} saw fewer than the seed");
                assert!(rows.len() >= last, "count went backwards for reader {r}");
                last = rows.len();
            }
            c.close()
        }));
    }
    for t in threads {
        t.join().unwrap().unwrap();
    }

    let mut check = PrometheusClient::connect(addr).unwrap();
    check.set_context(None).unwrap();
    assert_eq!(
        check.query("select t from CT t").unwrap().len(),
        SEED + WRITERS * BATCHES + 1
    );
    let (server, _) = check.stats().unwrap();
    assert_eq!(server.protocol_errors, 0, "mixed workload must be clean");
    assert_eq!(server.units_committed, (WRITERS * BATCHES) as u64 + 1);
    assert_eq!(server.units_rolled_back_on_disconnect, 0);
    check.close().unwrap();
    handle.stop();

    // Everything the event transport wrote is durable.
    let reopened = Prometheus::open(&path).unwrap();
    assert_eq!(
        reopened.query("select t from CT t").unwrap().len(),
        SEED + WRITERS * BATCHES + 1
    );
}

#[test]
fn slow_client_never_stalls_other_sessions() {
    // One io thread: if a half-sent frame could park a worker the way it
    // parks a blocking thread, this test would hang.
    let path = tmp("slow");
    let handle = serve_seeded(&path, 2, event_config(1));
    let addr = handle.addr();

    let mut slow = raw_handshake(addr);
    let mut ping_frame: Vec<u8> = Vec::new();
    write_msg(&mut ping_frame, TraceId::NONE, &Request::Ping).unwrap();
    // Trickle out half the frame and stall mid-header.
    slow.write_all(&ping_frame[..3]).unwrap();
    slow.flush().unwrap();

    let mut other = PrometheusClient::connect(addr).unwrap();
    let start = Instant::now();
    for _ in 0..50 {
        assert_eq!(other.query("select t from CT t").unwrap().len(), 2);
    }
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "queries crawled while a slow client held a partial frame"
    );
    other.close().unwrap();

    // The slow client finishes its frame and still gets its answer.
    slow.write_all(&ping_frame[3..]).unwrap();
    slow.flush().unwrap();
    slow.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    assert!(matches!(
        read_msg::<_, Response>(&mut slow).unwrap().1,
        Response::Pong
    ));
    handle.stop();
}

#[test]
fn idle_sessions_are_reaped_and_counted() {
    let path = tmp("reap");
    let config = ServerConfig::builder()
        .io_threads(2)
        .unit_idle_timeout(Duration::from_millis(200))
        .idle_timeout(Duration::from_millis(400))
        .build()
        .unwrap();
    let handle = serve_seeded(&path, 1, config);
    let addr = handle.addr();

    let mut idlers = Vec::new();
    for _ in 0..3 {
        let mut c = PrometheusClient::connect(addr).unwrap();
        c.ping().unwrap();
        idlers.push(c);
    }
    assert_eq!(handle.metrics().connections_active, 3);

    // Go silent past the idle deadline; the reaper closes all three.
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.metrics().sessions_reaped < 3 {
        assert!(Instant::now() < deadline, "reaper never fired");
        std::thread::sleep(Duration::from_millis(25));
    }
    assert_eq!(handle.metrics().connections_active, 0);
    for mut c in idlers {
        assert!(c.ping().is_err(), "reaped session should be gone");
    }

    // The listener is untouched: fresh sessions connect fine.
    let mut fresh = PrometheusClient::connect(addr).unwrap();
    fresh.ping().unwrap();
    fresh.close().unwrap();
    handle.stop();
}

#[test]
fn silent_unit_times_out_and_frees_the_lane() {
    let path = tmp("unit-timeout");
    let handle = serve_seeded(
        &path,
        0,
        ServerConfig {
            unit_idle_timeout: Duration::from_millis(150),
            ..event_config(2)
        },
    );
    let addr = handle.addr();
    let mut stalled = PrometheusClient::connect(addr).unwrap();
    let mut other = PrometheusClient::connect(addr).unwrap();
    {
        let mut unit = stalled.begin_unit().unwrap();
        unit.create_object(
            "CT",
            vec![
                ("working_name".into(), Value::Str("Ghost".into())),
                ("rank".into(), Value::Str("Genus".into())),
            ],
        )
        .unwrap();
        // Silence past the deadline: the scan must roll the unit back and
        // grant the lane to the other session's queued batch.
        std::thread::sleep(Duration::from_millis(400));
        other
            .unit_batch(vec![MutationOp::CreateObject {
                class: "CT".into(),
                attrs: vec![
                    ("working_name".into(), Value::Str("Daucus".into())),
                    ("rank".into(), Value::Str("Genus".into())),
                ],
            }])
            .unwrap();
        match unit.query("select t from CT t") {
            Err(ServerError::Remote { kind, .. }) => assert_eq!(kind, ErrorKind::UnitTimedOut),
            res => panic!("expected unit-timed-out error, got {res:?}"),
        }
    }
    // The timed-out write vanished, the session itself survived.
    let rows = stalled.query("select t.working_name from CT t").unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows.rows[0][0], Value::Str("Daucus".into()));
    assert!(handle.metrics().units_timed_out >= 1);
    stalled.close().unwrap();
    other.close().unwrap();
    handle.stop();
}

#[test]
fn http_scrape_matches_wire_stats() {
    let path = tmp("scrape");
    let handle = serve_seeded(
        &path,
        2,
        ServerConfig {
            metrics_http_addr: Some("127.0.0.1:0".into()),
            ..event_config(2)
        },
    );
    let scrape_addr = handle.metrics_addr().expect("scrape listener");

    let mut c = PrometheusClient::connect(handle.addr()).unwrap();
    c.unit_batch(vec![MutationOp::CreateObject {
        class: "CT".into(),
        attrs: vec![
            ("working_name".into(), Value::Str("Scraped".into())),
            ("rank".into(), Value::Str("Genus".into())),
        ],
    }])
    .unwrap();
    let (server, storage) = c.stats().unwrap();

    let (status, body) = http_get(scrape_addr, "/metrics", "GET");
    assert!(status.contains("200"), "bad status: {status}");
    // The scrape and a wire Stats render through the same code over the
    // same counters — values that nothing moved between the two reads must
    // be byte-equal.
    for line in [
        format!(
            "prometheus_server_units_committed_total {}",
            server.units_committed
        ),
        format!(
            "prometheus_server_connections_accepted_total {}",
            server.connections_accepted
        ),
        format!("prometheus_storage_commits_total {}", storage.commits),
        format!(
            "prometheus_server_connections_active {}",
            server.connections_active
        ),
    ] {
        assert!(body.contains(&line), "scrape missing `{line}`:\n{body}");
    }
    assert!(body.contains("# TYPE prometheus_server_request_latency_us histogram"));
    for line in body.lines().filter(|l| !l.starts_with('#')) {
        assert_eq!(line.split_whitespace().count(), 2, "malformed line: {line}");
    }

    // The endpoint speaks just enough HTTP to say no politely.
    let (status, _) = http_get(scrape_addr, "/other", "GET");
    assert!(status.contains("404"), "bad status: {status}");
    let (status, _) = http_get(scrape_addr, "/metrics", "POST");
    assert!(status.contains("405"), "bad status: {status}");

    c.close().unwrap();
    handle.stop();
}

#[test]
fn blocking_mode_serves_the_scrape_endpoint_too() {
    // io_threads = 0 keeps the thread-per-session transport for the wire
    // protocol; a one-thread readiness loop serves only the HTTP listener.
    let path = tmp("scrape-blocking");
    let handle = serve_seeded(
        &path,
        1,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            metrics_http_addr: Some("127.0.0.1:0".into()),
            ..ServerConfig::default()
        },
    );
    let mut c = PrometheusClient::connect(handle.addr()).unwrap();
    c.ping().unwrap();
    let (status, body) = http_get(handle.metrics_addr().unwrap(), "/metrics", "GET");
    assert!(status.contains("200"), "bad status: {status}");
    assert!(body.contains("prometheus_server_connections_accepted_total 1"));
    assert!(body.contains("prometheus_server_requests_total{kind=\"ping\"} 1"));
    c.close().unwrap();
    handle.stop();
}

#[test]
fn hundreds_of_idle_sessions_on_two_io_threads() {
    const IDLE: usize = 300;
    let path = tmp("many");
    let handle = serve_seeded(&path, 2, event_config(2));
    let addr = handle.addr();

    let mut parked = Vec::with_capacity(IDLE);
    for _ in 0..IDLE {
        parked.push(PrometheusClient::connect(addr).unwrap());
    }
    assert_eq!(handle.metrics().connections_active, IDLE as u64);

    // A busy session stays fast while the other 300 sit idle.
    let mut busy = PrometheusClient::connect(addr).unwrap();
    for _ in 0..50 {
        assert_eq!(busy.query("select t from CT t").unwrap().len(), 2);
    }
    // The idle sessions are all still live, not silently dropped.
    for c in parked.iter_mut().step_by(50) {
        c.ping().unwrap();
    }
    for c in parked {
        c.close().unwrap();
    }
    busy.close().unwrap();
    handle.stop();
}

#[test]
fn connection_cap_pauses_accepts_and_resumes() {
    let path = tmp("cap");
    let handle = serve_seeded(
        &path,
        0,
        ServerConfig {
            max_connections: 2,
            ..event_config(1)
        },
    );
    let addr = handle.addr();
    let mut c1 = PrometheusClient::connect(addr).unwrap();
    c1.ping().unwrap();
    let mut c2 = PrometheusClient::connect(addr).unwrap();
    c2.ping().unwrap();

    // The third connection sits in the TCP backlog: its handshake cannot
    // complete until a slot frees.
    let third = std::thread::spawn(move || {
        let mut c = PrometheusClient::connect(addr)?;
        c.ping()?;
        c.close()
    });
    std::thread::sleep(Duration::from_millis(400));
    assert!(
        !third.is_finished(),
        "third session got in past max_connections = 2"
    );
    c1.close().unwrap();
    // The freed slot wakes the poll thread, which resumes accepting.
    third.join().unwrap().unwrap();
    c2.close().unwrap();
    handle.stop();
}

#[test]
fn event_mode_shuts_down_gracefully() {
    let path = tmp("shutdown");
    let handle = serve_seeded(&path, 1, event_config(2));
    let addr = handle.addr();
    let mut open = PrometheusClient::connect(addr).unwrap();
    open.ping().unwrap();
    handle.stop();
    // Existing sessions are torn down …
    assert!(open.ping().is_err());
    // … and the listener is gone, not just paused.
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener still accepting"
    );
}

#[test]
fn builder_validates_event_configs() {
    assert!(matches!(
        ServerConfig::builder().addr("").build(),
        Err(ServerError::Config(_))
    ));
    assert!(matches!(
        ServerConfig::builder().workers(0).io_threads(0).build(),
        Err(ServerError::Config(_))
    ));
    assert!(matches!(
        ServerConfig::builder().io_threads(5000).build(),
        Err(ServerError::Config(_))
    ));
    assert!(matches!(
        ServerConfig::builder()
            .unit_idle_timeout(Duration::ZERO)
            .build(),
        Err(ServerError::Config(_))
    ));
    assert!(matches!(
        ServerConfig::builder().idle_timeout(Duration::ZERO).build(),
        Err(ServerError::Config(_))
    ));
    // idle_timeout must not undercut the unit deadline.
    assert!(matches!(
        ServerConfig::builder()
            .unit_idle_timeout(Duration::from_secs(30))
            .idle_timeout(Duration::from_secs(5))
            .build(),
        Err(ServerError::Config(_))
    ));
    // A sane event-mode config passes and keeps its settings.
    let cfg = ServerConfig::builder()
        .io_threads(4)
        .max_connections(10_000)
        .metrics_http_addr("127.0.0.1:0")
        .idle_timeout(Duration::from_secs(600))
        .build()
        .unwrap();
    assert_eq!(cfg.io_threads, 4);
    assert_eq!(cfg.max_connections, 10_000);
    assert_eq!(cfg.metrics_http_addr.as_deref(), Some("127.0.0.1:0"));
}
