//! Integration tests for the ICBN constraint set (§7.1.3.2, Figures 35–40)
//! installed through the facade, plus PCL-defined custom rules.

use prometheus_db::{DbError, Prometheus, Rank, StoreOptions, TypeKind};

fn open(name: &str) -> Prometheus {
    let path = std::env::temp_dir().join(format!(
        "icbn-int-{name}-{}-{:?}.log",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&path);
    Prometheus::open_with(
        path,
        StoreOptions {
            sync_on_commit: false,
        },
    )
    .unwrap()
}

#[test]
fn the_full_icbn_set_installs_and_enforces() {
    let p = open("full");
    let tax = p.taxonomy_with_icbn().unwrap();
    let db = tax.db().clone();

    // Figure 35: family names end in -aceae (with the classical exceptions).
    assert!(tax.create_nt("Apium", Rank::Familia, 1753, "L.").is_err());
    // Figure 36: genus names capitalised; species epithets lowercase.
    assert!(tax.create_nt("apium", Rank::Genus, 1753, "L.").is_err());
    assert!(tax
        .create_nt("Graveolens", Rank::Species, 1753, "L.")
        .is_err());

    // Figure 37: the type-existence rule is deferred — a unit that creates
    // and typifies in sequence commits cleanly.
    let token = db.begin_unit();
    let family = tax
        .create_nt("Apiaceae", Rank::Familia, 1789, "Lindl.")
        .unwrap();
    let genus = tax.create_nt("Apium", Rank::Genus, 1753, "L.").unwrap();
    let species = tax
        .create_nt("graveolens", Rank::Species, 1753, "L.")
        .unwrap();
    let spec = tax.create_specimen("Herb.Cliff.107").unwrap();
    tax.typify(species, spec, TypeKind::Lectotype).unwrap();
    tax.typify(genus, species, TypeKind::Holotype).unwrap();
    tax.typify(family, genus, TypeKind::Holotype).unwrap();
    db.commit_unit(token).unwrap();

    // But a unit that forgets typification rolls back entirely.
    let token = db.begin_unit();
    let orphan = tax.create_nt("Sium", Rank::Genus, 1753, "L.").unwrap();
    let err = db.commit_unit(token).unwrap_err();
    assert!(
        matches!(err, DbError::ConstraintViolation { rule, .. } if rule == "icbn-type-existence")
    );
    assert!(!db.exists(orphan));

    // Figures 38/39 (rank order, native rule) and the facade-level check.
    let cls = tax.new_classification("test", "t", "c").unwrap();
    let ct_family = tax.create_ct("Fam", Rank::Familia).unwrap();
    let ct_genus = tax.create_ct("Gen", Rank::Genus).unwrap();
    tax.circumscribe(&cls, ct_family, ct_genus).unwrap();
    assert!(tax.circumscribe(&cls, ct_genus, ct_family).is_err());

    // Figure 40: placements attach epithets to higher names.
    tax.place(genus, species).unwrap();
    assert!(tax.place(species, genus).is_err());
}

#[test]
fn pcl_documents_install_through_the_facade() {
    let p = open("pcl");
    let tax = p.taxonomy().unwrap();
    let n = p
        .install_pcl(
            "-- working names must not be empty\n\
             context CT pre namedWorking: self.working_name != \"\"\n\
             \n\
             context CT inv speciesAreLower when self.rank = \"Species\": \
                 not capitalized(self.working_name) warn",
        )
        .unwrap();
    assert_eq!(n, 2);
    // The pre-condition aborts.
    assert!(tax.create_ct("", Rank::Genus).is_err());
    // The warn-rule lets the operation pass but records the problem.
    tax.create_ct("BadCase", Rank::Species).unwrap();
    assert!(p
        .rules()
        .warnings()
        .iter()
        .any(|w| w.contains("speciesAreLower")));
}

#[test]
fn icbn_rules_coexist_with_user_rules() {
    let p = open("coexist");
    let tax = p.taxonomy_with_icbn().unwrap();
    p.install_pcl("context Specimen pre coded: self.code != \"\"")
        .unwrap();
    assert!(tax.create_specimen("").is_err());
    assert!(tax.create_specimen("E-1").is_ok());
    // ICBN rules still active.
    assert!(tax.create_nt("apium", Rank::Genus, 1753, "L.").is_err());
}

#[test]
fn what_if_scenarios_respect_deferred_rules() {
    // A what-if unit that would leave an NT untypified cannot be kept.
    let p = open("whatif-rules");
    let tax = p.taxonomy_with_icbn().unwrap();
    let db = tax.db().clone();
    let token = db.begin_unit();
    let nt = tax.create_nt("Apium", Rank::Genus, 1753, "L.").unwrap();
    // The taxonomist inspects the speculative state…
    assert!(db.exists(nt));
    // …and decides to keep it — but the deferred ICBN rule vetoes the commit.
    assert!(db.commit_unit(token).is_err());
    assert!(!db.exists(nt));
}
