//! The "typical taxonomic queries" of §7.1.3.1, expressed in POOL against
//! the Figure 3 / Figure 4 worked examples — the queries a taxonomist at the
//! RBGE actually asked of the prototype.

use prometheus_db::{Prometheus, StoreOptions, Value};
use prometheus_taxonomy::dataset::{figure3, figure4};
use prometheus_taxonomy::derivation::derive_names;

fn open(name: &str) -> Prometheus {
    let path = std::env::temp_dir().join(format!(
        "pool-typ-{name}-{}-{:?}.log",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&path);
    Prometheus::open_with(
        path,
        StoreOptions {
            sync_on_commit: false,
        },
    )
    .unwrap()
}

#[test]
fn which_names_has_this_specimen_been_given() {
    // "What are all the names attached to this specimen, in any
    // classification?" — the question the introduction's pharmaceutical
    // company needed answered.
    let p = open("names-of-specimen");
    let tax = p.taxonomy().unwrap();
    let fig = figure3(&tax).unwrap();
    derive_names(&tax, &fig.cls, "Raguenaud.", 2000).unwrap();

    // The repens type specimen typifies the old name and the new
    // combination.
    let r = p
        .query(
            "select n.name, n.author from NT n, Specimen s \
             where s.code = \"Repens-type\" and s in n -> HasType order by n.author",
        )
        .unwrap();
    assert_eq!(r.len(), 2);
    assert_eq!(r.rows[0].columns[0], Value::from("repens"));
    assert_eq!(r.rows[0].columns[1], Value::from("(Jacq.)Lag."));
    assert_eq!(r.rows[1].columns[1], Value::from("(Jacq.)Raguenaud."));
}

#[test]
fn which_taxa_circumscribe_a_specimen_in_each_context() {
    let p = open("taxa-of-specimen");
    let tax = p.taxonomy().unwrap();
    let fig = figure4(&tax).unwrap();
    let _ = &fig;

    // Across all classifications the white square has several containers…
    let r = p
        .query(
            "select distinct t.working_name from Specimen s, CT t \
             where s.code = \"white-square\" and t in s <- Circumscribes* \
             order by t.working_name",
        )
        .unwrap();
    assert!(
        r.len() >= 6,
        "containers across 4 classifications, got {}",
        r.len()
    );
    // …but within taxonomist 3's context exactly two (Bright, Shades).
    let r = p
        .query(
            "select t.working_name from Specimen s, CT t in classification \"taxonomist-3\" \
             where s.code = \"white-square\" and t in s <- Circumscribes* \
             order by t.working_name",
        )
        .unwrap();
    let names: Vec<Value> = r.first_column();
    assert_eq!(names, vec![Value::from("Bright"), Value::from("Shades")]);
}

#[test]
fn circumscription_counts_per_taxon() {
    // "How many specimens does each of my groups contain?"
    let p = open("counts");
    let tax = p.taxonomy().unwrap();
    figure4(&tax).unwrap();
    let r = p
        .query(
            "select t.working_name, count(t -> Circumscribes*) \
             from CT t in classification \"taxonomist-3\" \
             where t.working_name = \"Dark\"",
        )
        .unwrap();
    assert_eq!(r.rows[0].columns[1], Value::Int(3));
}

#[test]
fn priority_queries_over_publication_years() {
    // "Which is the oldest validly published species name?" (priority rule)
    let p = open("priority");
    let tax = p.taxonomy().unwrap();
    figure3(&tax).unwrap();
    let r = p
        .query(
            "select n.name from NT n where n.rank = \"Species\" \
             order by n.year, n.name limit 1",
        )
        .unwrap();
    assert_eq!(r.first_column(), vec![Value::from("graveolens")]);
    // Aggregate form.
    let r = p
        .query(
            "select min(select n.year from NT n where n.rank = \"Species\") \
             from NT x limit 1",
        )
        .unwrap();
    assert_eq!(r.rows[0].columns[0], Value::Int(1753));
}

#[test]
fn type_hierarchy_navigation() {
    // "Walk the type hierarchy from a name down to its specimens" (Figure 2).
    let p = open("typewalk");
    let tax = p.taxonomy().unwrap();
    figure3(&tax).unwrap();
    // Apium's holotype is graveolens (a name), whose lectotype is a specimen:
    // a depth-2 traversal over HasType lands on the specimen.
    let r = p
        .query(
            "select s.code from NT n, Specimen s \
             where n.name = \"Apium\" and s in n -> HasType[2..2]",
        )
        .unwrap();
    assert_eq!(
        r.first_column(),
        vec![Value::from("Herb.Cliff.107 Apium 1 BM")]
    );
}

#[test]
fn relationships_are_queried_uniformly() {
    // §5.1.1.2: relationship extents and attributes are first-class in POOL.
    let p = open("uniform");
    let tax = p.taxonomy().unwrap();
    figure3(&tax).unwrap();
    let r = p
        .query(
            "select e.kind, e.origin.name from edges HasType e \
             where e.kind = \"holotype\" order by e.origin.name",
        )
        .unwrap();
    assert_eq!(r.len(), 3);
    assert_eq!(r.rows[0].columns[1], Value::from("Apium"));
}

#[test]
fn working_names_vs_published_names() {
    // After derivation, CTs expose their calculated names through a join.
    let p = open("working");
    let tax = p.taxonomy().unwrap();
    let fig = figure3(&tax).unwrap();
    derive_names(&tax, &fig.cls, "Raguenaud.", 2000).unwrap();
    let r = p
        .query(
            "select t.working_name, n.name from CT t, NT n \
             where n in t -> CalculatedName order by t.working_name",
        )
        .unwrap();
    assert_eq!(r.len(), 2);
    assert_eq!(
        r.rows[0].columns,
        vec![Value::from("Taxon 1"), Value::from("Heliosciadium")]
    );
    assert_eq!(
        r.rows[1].columns,
        vec![Value::from("Taxon 2"), Value::from("repens")]
    );
}
