//! Integration tests mirroring the thesis' taxonomic evaluation (§7.1):
//! support for multiple classifications (§7.1.1), historical
//! classifications (§7.1.2), and classification comparison.

use prometheus_db::{Prometheus, Rank, StoreOptions, SynonymMode, TypeKind, Value};
use prometheus_taxonomy::dataset::{figure4, overlapping_revisions, random_flora, FloraParams};
use prometheus_taxonomy::synonymy::detect_synonyms;

fn open(name: &str) -> Prometheus {
    let path = std::env::temp_dir().join(format!(
        "taxo-eval-{name}-{}-{:?}.log",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&path);
    Prometheus::open_with(
        path,
        StoreOptions {
            sync_on_commit: false,
        },
    )
    .unwrap()
}

#[test]
fn multiple_overlapping_classifications_coexist() {
    // §7.1.1: four taxonomists' views of the same specimens, simultaneously.
    let p = open("multi");
    let tax = p.taxonomy().unwrap();
    let fig = figure4(&tax).unwrap();
    let db = tax.db();

    assert_eq!(db.classifications().unwrap().len(), 4);
    // Every classification holds the white square somewhere.
    let ws = fig
        .specimens
        .iter()
        .find(|(n, _)| n == "white-square")
        .unwrap()
        .1;
    for cls in [
        &fig.taxonomist1,
        &fig.taxonomist2,
        &fig.taxonomist3,
        &fig.taxonomist4,
    ] {
        assert!(
            cls.nodes(db).unwrap().contains(&ws),
            "{}",
            cls.name(db).unwrap()
        );
    }
    // The mid-grey square was ignored by taxonomist 3 but not 4 (§2.1.3).
    let mg = fig
        .specimens
        .iter()
        .find(|(n, _)| n == "mid-grey-square")
        .unwrap()
        .1;
    assert!(!fig.taxonomist3.nodes(db).unwrap().contains(&mg));
    assert!(fig.taxonomist4.nodes(db).unwrap().contains(&mg));

    // Strict hierarchies hold within each classification even though the
    // shared specimens have several parents globally.
    for cls in [
        &fig.taxonomist1,
        &fig.taxonomist2,
        &fig.taxonomist3,
        &fig.taxonomist4,
    ] {
        assert!(cls.check_integrity(db).unwrap().is_empty());
        assert!(cls.parents(db, ws).unwrap().len() <= 1);
    }
    assert!(
        db.rels_to(ws, None).unwrap().len() >= 4,
        "shared across classifications"
    );
}

#[test]
fn historical_classification_with_ascribed_names() {
    // §7.1.2: historical data arrives with names already published; they are
    // *ascribed*, distinct from what derivation would calculate.
    let p = open("historical");
    let tax = p.taxonomy().unwrap();
    let db = tax.db().clone();
    let token = db.begin_unit();
    let cls = tax
        .new_classification("Linnaeus 1753 (historical)", "L.", "habit")
        .unwrap();
    let genus_ct = tax.create_ct("Apium-1753", Rank::Genus).unwrap();
    let species_ct = tax.create_ct("graveolens-1753", Rank::Species).unwrap();
    let spec = tax.create_specimen("Herb.Cliff.107").unwrap();
    tax.circumscribe(&cls, genus_ct, species_ct).unwrap();
    tax.circumscribe(&cls, species_ct, spec).unwrap();
    let nt_apium = tax.create_nt("Apium", Rank::Genus, 1753, "L.").unwrap();
    let nt_grav = tax
        .create_nt("graveolens", Rank::Species, 1753, "L.")
        .unwrap();
    tax.typify(nt_grav, spec, TypeKind::Lectotype).unwrap();
    tax.typify(nt_apium, nt_grav, TypeKind::Holotype).unwrap();
    tax.ascribe_name(genus_ct, nt_apium).unwrap();
    tax.ascribe_name(species_ct, nt_grav).unwrap();
    db.commit_unit(token).unwrap();

    assert_eq!(tax.ascribed_name(genus_ct).unwrap(), Some(nt_apium));
    // Derivation agrees with history here (no conflicting names exist).
    let outcome = prometheus_taxonomy::derivation::derive_names(&tax, &cls, "X.", 2000).unwrap();
    assert_eq!(outcome.for_ct(genus_ct).unwrap().nt, nt_apium);
    assert_eq!(tax.calculated_name(genus_ct).unwrap(), Some(nt_apium));
    // Ascribed and calculated names are independent attachments (Figure 6).
    assert_eq!(tax.ascribed_name(genus_ct).unwrap(), Some(nt_apium));
}

#[test]
fn revisions_generate_detectable_synonym_structure() {
    let p = open("synonyms");
    let tax = p.taxonomy().unwrap();
    let params = FloraParams {
        families: 1,
        genera_per_family: 3,
        species_per_genus: 3,
        specimens_per_species: 2,
        type_percent: 100,
    };
    let flora = random_flora(&tax, &params, 5).unwrap();
    let revisions = overlapping_revisions(&tax, &flora, 2, 30, 6).unwrap();
    assert_eq!(revisions.len(), 2);
    // Every revision shares all specimens with the base classification.
    let db = tax.db();
    for rev in &revisions {
        let cmp = flora
            .classification
            .compare(db, rev, SynonymMode::Ignore)
            .unwrap();
        assert_eq!(cmp.shared_leaves.len(), flora.specimens.len());
    }
    // Specimen-based synonym detection finds at least the unchanged species
    // as full synonyms of themselves… no — taxa are shared objects across a
    // copy, so compare species of base vs revision: species CTs are the SAME
    // objects (copy shares nodes), so detect_synonyms skips identical pairs.
    // What it finds are cross-rank-equal overlaps between different CTs:
    // genera that exchanged species overlap pro parte.
    let reports = detect_synonyms(
        &tax,
        &flora.classification,
        &revisions[0],
        SynonymMode::Ignore,
    )
    .unwrap();
    assert!(
        reports.iter().any(|r| r.taxon_a != r.taxon_b),
        "moved species must create cross-genus overlaps"
    );
}

#[test]
fn traceability_is_recorded_on_classifications_and_edges() {
    // Requirement 4: the motivation for a classification is data.
    let p = open("trace");
    let tax = p.taxonomy().unwrap();
    let cls = tax
        .new_classification("rev-1", "Newman", "leaf shape")
        .unwrap();
    let db = tax.db();
    let meta = db.classification_meta(cls.oid()).unwrap();
    assert_eq!(meta.attrs.get("author"), Some(&Value::from("Newman")));
    assert_eq!(meta.attrs.get("criteria"), Some(&Value::from("leaf shape")));

    let a = tax.create_ct("A", Rank::Genus).unwrap();
    let b = tax.create_ct("b", Rank::Species).unwrap();
    let edge = cls
        .link(
            db,
            prometheus_taxonomy::CIRCUMSCRIBES,
            a,
            b,
            vec![("remark".to_string(), Value::from("petal form"))],
        )
        .unwrap();
    assert_eq!(
        db.rel(edge).unwrap().attr("remark"),
        Value::from("petal form")
    );
}

#[test]
fn instance_synonyms_unify_duplicate_specimens() {
    // §4.5: the same physical specimen recorded twice by two institutions.
    let p = open("instsyn");
    let tax = p.taxonomy().unwrap();
    let db = tax.db();
    let cls_a = tax.new_classification("A", "a", "x").unwrap();
    let cls_b = tax.new_classification("B", "b", "y").unwrap();
    let ct_a = tax.create_ct("TA", Rank::Species).unwrap();
    let ct_b = tax.create_ct("TB", Rank::Species).unwrap();
    let s_edinburgh = tax.create_specimen("E-001").unwrap();
    let s_kew = tax.create_specimen("K-991").unwrap();
    tax.circumscribe(&cls_a, ct_a, s_edinburgh).unwrap();
    tax.circumscribe(&cls_b, ct_b, s_kew).unwrap();

    // Without synonymy, the circumscriptions are disjoint.
    let r = prometheus_taxonomy::synonymy::compare_taxa(
        &tax,
        &cls_a,
        ct_a,
        &cls_b,
        ct_b,
        SynonymMode::Ignore,
    )
    .unwrap();
    assert!(r.is_none());
    // Declare the two records to be the same physical specimen.
    db.declare_synonym(s_edinburgh, s_kew).unwrap();
    let r = prometheus_taxonomy::synonymy::compare_taxa(
        &tax,
        &cls_a,
        ct_a,
        &cls_b,
        ct_b,
        SynonymMode::Transparent,
    )
    .unwrap()
    .expect("now they overlap");
    assert_eq!(r.shared, 1);
    assert_eq!(r.kind, prometheus_taxonomy::SynonymKind::Full);
}
