//! End-to-end observability over the wire: `EXPLAIN`/`PROFILE` POOL
//! statements, the trace ring (`Request::Trace`) and the slow-query log
//! (`Request::SlowLog`).
//!
//! Acceptance coverage for the tracing subsystem:
//!
//! * `PROFILE <query>` returns a span tree whose stages include the
//!   plan-cache lookup, the per-source scan (with row/index-seek counters),
//!   morsel execution (worker count) and the lane wait;
//! * a query slower than the server's threshold appears in the slow log
//!   with its plan fingerprint;
//! * `Trace { n }` returns well-formed span events.

use prometheus_db::{Prometheus, StoreOptions, Value};
use prometheus_server::{serve, PrometheusClient, ServerConfig, Stage, TraceEvent};
use prometheus_taxonomy::Rank;
use std::time::Duration;

fn tmp(name: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!(
        "prometheus-tracing-{name}-{}-{:?}.log",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// A server over a small taxonomy, logging *every* query as slow
/// (threshold zero) so the slow log is deterministic under test.
fn serve_traced(name: &str) -> prometheus_server::ServerHandle {
    let p = Prometheus::open_with(
        tmp(name),
        StoreOptions {
            sync_on_commit: false,
        },
    )
    .unwrap();
    let tax = p.taxonomy().unwrap();
    tax.create_ct("Apium", Rank::Genus).unwrap();
    tax.create_ct("Heliosciadium", Rank::Genus).unwrap();
    tax.create_ct("Daucus", Rank::Genus).unwrap();
    serve(
        p,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            slow_query_threshold: Duration::ZERO,
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

/// Column index by name in a wire result.
fn col(rows: &prometheus_server::WireRows, name: &str) -> usize {
    rows.columns
        .iter()
        .position(|c| c == name)
        .unwrap_or_else(|| panic!("column {name} in {:?}", rows.columns))
}

fn as_str(v: &Value) -> &str {
    match v {
        Value::Str(s) => s,
        other => panic!("expected string, got {other:?}"),
    }
}

fn as_int(v: &Value) -> i64 {
    match v {
        Value::Int(n) => *n,
        other => panic!("expected int, got {other:?}"),
    }
}

#[test]
fn profile_returns_a_span_tree_with_all_stages() {
    let handle = serve_traced("profile");
    let mut client = PrometheusClient::connect(handle.addr()).unwrap();
    let q = "select t.working_name from CT t order by t.working_name";
    // Warm the plan cache so the profile observes a hit.
    client.query(q).unwrap();
    let profile = client.query(&format!("profile {q}")).unwrap();

    let stage_col = col(&profile, "stage");
    let c0_col = col(&profile, "c0");
    let c1_col = col(&profile, "c1");
    let parent_col = col(&profile, "parent");
    let stages: Vec<String> = profile
        .rows
        .iter()
        .map(|r| as_str(&r[stage_col]).trim().to_string())
        .collect();
    for wanted in [
        "request",
        "lane_wait",
        "plan_cache",
        "scan",
        "filter",
        "emit",
    ] {
        assert!(
            stages.iter().any(|s| s == wanted),
            "profile must include a {wanted} span, got {stages:?}"
        );
    }

    let row_of = |stage: &str| {
        profile
            .rows
            .iter()
            .find(|r| as_str(&r[stage_col]).trim() == stage)
            .unwrap()
    };
    // Plan-cache span: c0 = 1 marks the warm-cache hit, c1 the fingerprint.
    let plan_cache = row_of("plan_cache");
    assert_eq!(as_int(&plan_cache[c0_col]), 1, "warmed plan must hit");
    assert_ne!(as_int(&plan_cache[c1_col]), 0, "fingerprint recorded");
    // Scan span: c0 counts candidate rows (three genera seeded).
    let scan = row_of("scan");
    assert!(as_int(&scan[c0_col]) >= 3, "scan saw the extent: {scan:?}");
    // Filter (morsel execution): c1 is the worker count.
    let filter = row_of("filter");
    assert!(as_int(&filter[c1_col]) >= 1, "workers recorded: {filter:?}");
    // Lane wait is synthetic for a pinned query: c1 = 0 (never drew a
    // ticket), c0 = 0 (no holders ahead of a wait that never happened).
    let lane = row_of("lane_wait");
    assert_eq!(as_int(&lane[c0_col]), 0, "pinned query waits on nobody");
    assert_eq!(as_int(&lane[c1_col]), 0, "pinned query takes no lane");
    // Tree shape: exactly one root (the request span), everything else
    // parented inside the same trace.
    let roots = profile
        .rows
        .iter()
        .filter(|r| as_int(&r[parent_col]) == 0)
        .count();
    assert_eq!(roots, 1, "one request root span");

    client.close().unwrap();
    handle.stop();
}

#[test]
fn explain_renders_the_plan_without_executing() {
    let handle = serve_traced("explain");
    let mut client = PrometheusClient::connect(handle.addr()).unwrap();
    let q = "select t from CT t where t.working_name = \"Apium\"";
    let cold = client.query(&format!("explain {q}")).unwrap();
    assert_eq!(cold.columns, vec!["plan".to_string()]);
    let text: Vec<String> = cold
        .rows
        .iter()
        .map(|r| as_str(&r[0]).to_string())
        .collect();
    assert!(
        text[0].starts_with("plan: planned"),
        "cold explain: {text:?}"
    );
    assert!(
        text.iter().any(|l| l.contains("seed: index probe")),
        "equality on an indexed attr must seed: {text:?}"
    );
    assert!(text.iter().any(|l| l.starts_with("join:")), "{text:?}");
    // EXPLAIN shares the bare query's plan-cache entry: running the query
    // then explaining again reports a cache hit.
    client.query(q).unwrap();
    let warm = client.query(&format!("explain {q}")).unwrap();
    assert!(
        as_str(&warm.rows[0][0]).starts_with("plan: cache hit"),
        "warm explain: {:?}",
        warm.rows[0][0]
    );
    client.close().unwrap();
    handle.stop();
}

#[test]
fn slow_queries_land_in_the_log_with_their_fingerprint() {
    let handle = serve_traced("slowlog");
    let mut client = PrometheusClient::connect(handle.addr()).unwrap();
    let q = "select t.working_name from CT t order by t.working_name";
    client.query(q).unwrap();
    client.query(q).unwrap();

    let entries = client.slow_log(16).unwrap();
    assert!(!entries.is_empty(), "threshold zero must log every query");
    let ours: Vec<_> = entries.iter().filter(|e| e.query == q).collect();
    assert!(ours.len() >= 2, "both runs logged: {entries:?}");
    for e in &ours {
        assert_ne!(e.fingerprint, 0, "pinned query logs its plan fingerprint");
        assert!(e.pinned);
        assert_eq!(e.rows, 3);
        assert!(!e.trace_id.is_none(), "entry links to the trace ring");
    }
    // Same text, same schema: the fingerprint is stable across runs.
    assert_eq!(ours[0].fingerprint, ours[1].fingerprint);
    // The logged trace is still in the ring and carries the query's spans.
    let events = client.trace(u32::MAX).unwrap();
    let traced: Vec<&TraceEvent> = events
        .iter()
        .filter(|ev| ev.trace_id == ours[1].trace_id)
        .collect();
    assert!(
        traced.iter().any(|ev| ev.stage == Stage::PlanCache),
        "slow-log trace id resolves to spans in the ring: {traced:?}"
    );
    client.close().unwrap();
    handle.stop();
}

#[test]
fn trace_request_returns_well_formed_spans() {
    let handle = serve_traced("trace");
    let mut client = PrometheusClient::connect(handle.addr()).unwrap();
    client.ping().unwrap();
    client
        .query("select t from CT t where t.rank = \"Genus\"")
        .unwrap();
    let events = client.trace(256).unwrap();
    assert!(!events.is_empty(), "the ring holds the session's requests");
    assert!(
        events.iter().any(|ev| ev.stage == Stage::Request),
        "request framing is spanned: {events:?}"
    );
    assert!(
        events.iter().any(|ev| ev.stage == Stage::Scan),
        "query execution is spanned: {events:?}"
    );
    for ev in &events {
        assert_ne!(ev.span_id, 0, "span ids are allocated: {ev:?}");
        assert!(!ev.trace_id.is_none(), "spans belong to a trace: {ev:?}");
    }
    // Mutations wait on the writer lane and say so.
    client
        .unit_batch(vec![prometheus_server::MutationOp::CreateObject {
            class: "CT".into(),
            attrs: vec![
                ("working_name".into(), Value::Str("Torilis".into())),
                ("rank".into(), Value::Str("Genus".into())),
            ],
        }])
        .unwrap();
    let events = client.trace(512).unwrap();
    assert!(
        events
            .iter()
            .any(|ev| ev.stage == Stage::LaneWait && ev.c1 == 1),
        "a real lane acquisition is spanned: {events:?}"
    );
    assert!(
        events.iter().any(|ev| ev.stage == Stage::Commit),
        "the storage commit is spanned: {events:?}"
    );
    client.close().unwrap();
    handle.stop();
}

#[test]
fn profile_inside_a_unit_sees_its_own_writes() {
    let handle = serve_traced("unitprofile");
    let mut client = PrometheusClient::connect(handle.addr()).unwrap();
    {
        let mut unit = client.begin_unit().unwrap();
        unit.create_object(
            "CT",
            vec![
                ("working_name".into(), Value::Str("Anethum".into())),
                ("rank".into(), Value::Str("Genus".into())),
            ],
        )
        .unwrap();
        // The profile runs on the live database inside the unit: the scan
        // must count the uncommitted fourth genus.
        let profile = unit.query("profile select t from CT t").unwrap();
        let stage_col = col(&profile, "stage");
        let c0_col = col(&profile, "c0");
        let scan = profile
            .rows
            .iter()
            .find(|r| as_str(&r[stage_col]).trim() == "scan")
            .expect("scan span");
        assert!(
            as_int(&scan[c0_col]) >= 4,
            "in-unit profile sees its own write: {scan:?}"
        );
        unit.abort().unwrap();
    }
    client.close().unwrap();
    handle.stop();
}
