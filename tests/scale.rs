//! Laptop-scale stress test: a flora the size of a real revision (thousands
//! of taxa), multiple overlapping revisions, full derivation, synonym
//! detection and POOL queries — end to end in seconds.

use prometheus_db::{Prometheus, StoreOptions, SynonymMode, Value};
use prometheus_taxonomy::dataset::{overlapping_revisions, random_flora, FloraParams};
use prometheus_taxonomy::derivation::derive_names;
use prometheus_taxonomy::synonymy::detect_synonyms;

#[test]
fn large_flora_end_to_end() {
    let path = std::env::temp_dir().join(format!(
        "scale-{}-{:?}.log",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&path);
    let p = Prometheus::open_with(
        &path,
        StoreOptions {
            sync_on_commit: false,
        },
    )
    .unwrap();
    let tax = p.taxonomy().unwrap();

    // ~2.6k CTs, ~4.8k specimens — the "family with thousands of names"
    // scale the introduction motivates.
    let params = FloraParams {
        families: 4,
        genera_per_family: 10,
        species_per_genus: 15,
        specimens_per_species: 2,
        type_percent: 100,
    };
    let flora = random_flora(&tax, &params, 20260705).unwrap();
    assert_eq!(flora.species.len(), 600);
    assert_eq!(flora.specimens.len(), 1200);

    // Derivation names every ranked CT.
    let outcome = derive_names(&tax, &flora.classification, "Scale.", 2026).unwrap();
    assert_eq!(outcome.names.len(), params.taxon_count());

    // Two overlapping revisions with 20% of species moved.
    let revisions = overlapping_revisions(&tax, &flora, 2, 20, 99).unwrap();
    let db = tax.db();
    for rev in &revisions {
        assert!(rev.check_integrity(db).unwrap().is_empty());
    }

    // Synonym detection between base and revision finds pro-parte overlaps
    // for every genus that lost or gained species.
    let reports = detect_synonyms(
        &tax,
        &flora.classification,
        &revisions[0],
        SynonymMode::Ignore,
    )
    .unwrap();
    assert!(!reports.is_empty());

    // POOL at scale: count species CTs, indexed lookup, contextual closure.
    // Revisions copy *edges*, never CT objects, so there are still exactly
    // 600 species CTs in the database.
    let r = p
        .query("select count(select t from CT t where t.rank = \"Species\") from CT x limit 1")
        .unwrap();
    assert_eq!(r.rows[0].columns[0], Value::Int(600));

    let label = tax.name_of(flora.species[123]).unwrap();
    let r = p
        .query(&format!(
            "select t from CT t where t.working_name = \"{label}\""
        ))
        .unwrap();
    assert_eq!(r.len(), 1);

    // Contextual closure from a family root within the base classification.
    let family_name = tax.name_of(flora.families[0]).unwrap();
    let cls_name = flora.classification.name(db).unwrap();
    let r = p
        .query(&format!(
            "select count(f -> Circumscribes*) from CT f in classification \"{cls_name}\" \
             where f.working_name = \"{family_name}\""
        ))
        .unwrap();
    let reachable = r.rows[0].columns[0].as_int().unwrap();
    // 10 genera + 150 species + 300 specimens below one family.
    assert_eq!(reachable, 10 + 150 + 300);
    let _ = std::fs::remove_file(path);
}
