//! Wire-level concurrency tests for prometheus-server: one writer plus many
//! reader clients against a live server, and the crash-consistency guarantee
//! that a client dropped mid-unit leaves the database exactly as it was —
//! both in memory and after a full reopen from the log.

use prometheus_db::{Prometheus, StoreOptions, Value};
use prometheus_server::{serve, MutationOp, PrometheusClient, ServerConfig, ServerHandle};
use prometheus_taxonomy::Rank;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn tmp(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "server-conc-{name}-{}-{:?}.log",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

fn serve_seeded(path: &PathBuf, seed: usize, workers: usize) -> ServerHandle {
    let p = Prometheus::open_with(
        path,
        StoreOptions {
            sync_on_commit: false,
        },
    )
    .unwrap();
    let tax = p.taxonomy().unwrap();
    for i in 0..seed {
        tax.create_ct(&format!("Seed-{i:03}"), Rank::Genus).unwrap();
    }
    serve(
        p,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers,
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

#[test]
fn one_writer_many_readers_over_the_wire() {
    const SEED: usize = 8;
    const WRITES: usize = 24;
    const READERS: usize = 8;
    let path = tmp("rw");
    let handle = serve_seeded(&path, SEED, READERS + 2);
    let addr = handle.addr();

    let writer = std::thread::spawn(move || {
        let mut client = PrometheusClient::connect(addr)?;
        for i in 0..WRITES {
            let created = client.unit_batch(vec![MutationOp::CreateObject {
                class: "CT".into(),
                attrs: vec![
                    ("working_name".into(), Value::Str(format!("W-{i:03}"))),
                    ("rank".into(), Value::Str("Species".into())),
                ],
            }])?;
            assert_eq!(created.len(), 1);
        }
        client.close()
    });

    let mut readers = Vec::new();
    for r in 0..READERS {
        readers.push(std::thread::spawn(move || {
            let mut client = PrometheusClient::connect(addr)?;
            let mut last = 0usize;
            for _ in 0..30 {
                let rows = client.query("select t from CT t")?;
                // Batches are atomic: the count only ever grows, never
                // exceeds the final total, and no torn row is visible.
                assert!(rows.len() >= SEED, "reader {r} saw fewer than the seed");
                assert!(rows.len() <= SEED + WRITES, "reader {r} saw too many");
                assert!(rows.len() >= last, "count went backwards for reader {r}");
                last = rows.len();
            }
            client.close()
        }));
    }

    writer.join().unwrap().unwrap();
    for reader in readers {
        reader.join().unwrap().unwrap();
    }

    let mut check = PrometheusClient::connect(addr).unwrap();
    assert_eq!(
        check.query("select t from CT t").unwrap().len(),
        SEED + WRITES
    );
    let (server, _) = check.stats().unwrap();
    assert_eq!(server.protocol_errors, 0, "mixed workload must be clean");
    assert_eq!(server.units_committed, WRITES as u64);
    check.close().unwrap();
    handle.stop();
}

#[test]
fn client_killed_mid_unit_rolls_back_and_survives_reopen() {
    const SEED: usize = 3;
    let path = tmp("kill");
    let handle = serve_seeded(&path, SEED, 4);
    let addr = handle.addr();

    // A well-behaved observer connection, open throughout.
    let mut observer = PrometheusClient::connect(addr).unwrap();
    assert_eq!(observer.query("select t from CT t").unwrap().len(), SEED);

    // The doomed client: opens a unit, creates an object inside it, then its
    // process "crashes" — the socket drops with the unit still open.
    let mut doomed = PrometheusClient::connect(addr).unwrap();
    {
        let mut unit = doomed.begin_unit().unwrap();
        let ghost = unit
            .create_object(
                "CT",
                vec![
                    ("working_name".into(), Value::Str("Ghost".into())),
                    ("rank".into(), Value::Str("Genus".into())),
                ],
            )
            .unwrap();
        assert!(!ghost.is_nil());
        // The guard must not send an abort: simulate a crash instead.
        std::mem::forget(unit);
    }
    doomed.kill();

    // The server notices the EOF and rolls the unit back; wait for it.
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.metrics().units_rolled_back_on_disconnect == 0 {
        assert!(
            Instant::now() < deadline,
            "server never rolled back the orphaned unit"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // In-memory state is back to the pre-unit image …
    assert_eq!(observer.query("select t from CT t").unwrap().len(), SEED);
    assert!(observer
        .query("select t from CT t where t.working_name = \"Ghost\"")
        .unwrap()
        .is_empty());

    // … and the writer lane is free again for the next client.
    observer
        .unit_batch(vec![MutationOp::CreateObject {
            class: "CT".into(),
            attrs: vec![
                ("working_name".into(), Value::Str("AfterCrash".into())),
                ("rank".into(), Value::Str("Genus".into())),
            ],
        }])
        .unwrap();
    assert_eq!(
        observer.query("select t from CT t").unwrap().len(),
        SEED + 1
    );
    observer.close().unwrap();
    handle.stop();

    // Reopen from the log: the rollback must also hold durably.
    let reopened = Prometheus::open(&path).unwrap();
    let rows = reopened.query("select t from CT t").unwrap();
    assert_eq!(rows.len(), SEED + 1);
    let ghost = reopened
        .query("select t from CT t where t.working_name = \"Ghost\"")
        .unwrap();
    assert!(ghost.is_empty(), "aborted unit leaked into the log");
    let kept = reopened
        .query("select t from CT t where t.working_name = \"AfterCrash\"")
        .unwrap();
    assert_eq!(kept.len(), 1);
}

#[test]
fn sessions_queue_when_workers_are_busy() {
    // More clients than workers: connections beyond the pool size wait in
    // the channel and are served as workers free up — none are dropped.
    let path = tmp("queue");
    let handle = serve_seeded(&path, 2, 2);
    let addr = handle.addr();
    let mut clients = Vec::new();
    for _ in 0..6 {
        clients.push(std::thread::spawn(move || {
            let mut c = PrometheusClient::connect(addr)?;
            let n = c.query("select t from CT t")?.len();
            c.close()?;
            Ok::<_, prometheus_server::ServerError>(n)
        }));
    }
    for c in clients {
        assert_eq!(c.join().unwrap().unwrap(), 2);
    }
    handle.stop();
}
