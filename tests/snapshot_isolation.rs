//! Snapshot-isolation integration tests for the read path.
//!
//! A [`prometheus_db::ReadView`] pins one committed storage image: whatever
//! a writer does afterwards — including streaming a multi-operation unit of
//! work — is invisible to the view, and a unit becomes visible only as a
//! whole, at commit. These tests drive a writer against concurrent readers
//! and assert that no view ever observes a torn unit, in memory and after a
//! crash-reopen; a property test pins down that a quiescent view answers
//! exactly like the live database.

use prometheus_db::{Prometheus, Rank, Reader, StoreOptions, Value};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn tmp(name: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!(
        "snap-iso-{name}-{}-{:?}.log",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

fn open(name: &str) -> (Prometheus, std::path::PathBuf) {
    let path = tmp(name);
    let p = Prometheus::open_with(
        &path,
        StoreOptions {
            sync_on_commit: false,
        },
    )
    .unwrap();
    (p, path)
}

/// Count the CTs named `name` as seen by one pinned view.
fn count_in_view<R: Reader>(view: &R, name: &str) -> usize {
    view.find_by_attr("CT", "working_name", &Value::from(name))
        .unwrap()
        .len()
}

#[test]
fn read_views_never_observe_torn_units() {
    // Each unit creates (or deletes) a marker/partner pair. The pair count
    // must match in *every* pinned view — unlike the live database, which
    // only promises operation ordering, a snapshot exposes whole units or
    // nothing.
    let (p, path) = open("torn");
    let tax = p.taxonomy().unwrap();
    let db = tax.db().clone();
    let stop = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for _ in 0..3 {
        let db = db.clone();
        let stop = stop.clone();
        readers.push(std::thread::spawn(move || {
            let mut views = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let view = db.read_view();
                let markers = count_in_view(&view, "pair-marker");
                let partners = count_in_view(&view, "pair-partner");
                assert_eq!(
                    markers, partners,
                    "a pinned view saw a torn unit ({markers} markers, {partners} partners)"
                );
                views += 1;
            }
            assert!(views > 0, "reader never pinned a view");
        }));
    }
    for _ in 0..40 {
        let token = db.begin_unit();
        let partner = tax.create_ct("pair-partner", Rank::Genus).unwrap();
        let marker = tax.create_ct("pair-marker", Rank::Genus).unwrap();
        db.commit_unit(token).unwrap();
        let token = db.begin_unit();
        db.delete_object(marker).unwrap();
        db.delete_object(partner).unwrap();
        db.commit_unit(token).unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }
    // The committed end state is whole too.
    let view = db.read_view();
    assert_eq!(
        count_in_view(&view, "pair-marker"),
        count_in_view(&view, "pair-partner")
    );
    drop(p);
    let _ = std::fs::remove_file(path);
}

#[test]
fn view_pinned_before_a_unit_commits_stays_pre_unit() {
    let (p, path) = open("pinned");
    let tax = p.taxonomy().unwrap();
    let db = tax.db().clone();
    tax.create_ct("Stable", Rank::Genus).unwrap();
    let before = db.read_view();
    let token = db.begin_unit();
    tax.create_ct("Streaming", Rank::Genus).unwrap();
    // Mid-unit: the open unit is invisible to old and new views alike.
    let mid = db.read_view();
    assert_eq!(count_in_view(&mid, "Streaming"), 0);
    assert!(
        before.same_version(&mid),
        "an open unit must not publish a snapshot"
    );
    db.commit_unit(token).unwrap();
    // Post-commit: the pinned views still answer from their image; a fresh
    // view sees the whole unit.
    assert_eq!(count_in_view(&before, "Streaming"), 0);
    let after = db.read_view();
    assert_eq!(count_in_view(&after, "Streaming"), 1);
    assert!(!after.same_version(&before));
    drop(p);
    let _ = std::fs::remove_file(path);
}

#[test]
fn crashed_unit_is_invisible_after_reopen() {
    let path = tmp("crash");
    {
        let p = Prometheus::open_with(
            &path,
            StoreOptions {
                sync_on_commit: false,
            },
        )
        .unwrap();
        let tax = p.taxonomy().unwrap();
        // One whole unit, committed.
        let token = tax.db().begin_unit();
        tax.create_ct("pair-partner", Rank::Genus).unwrap();
        tax.create_ct("pair-marker", Rank::Genus).unwrap();
        tax.db().commit_unit(token).unwrap();
        // One unit streamed but never sealed: the database is dropped with
        // the unit open, like a server crashing mid-stream.
        let _token = tax.db().begin_unit();
        tax.create_ct("torn-partner", Rank::Genus).unwrap();
        tax.create_ct("torn-marker", Rank::Genus).unwrap();
    }
    let p = Prometheus::open_with(
        &path,
        StoreOptions {
            sync_on_commit: false,
        },
    )
    .unwrap();
    let view = p.read_view();
    assert_eq!(count_in_view(&view, "pair-partner"), 1);
    assert_eq!(count_in_view(&view, "pair-marker"), 1);
    assert_eq!(
        count_in_view(&view, "torn-partner") + count_in_view(&view, "torn-marker"),
        0,
        "recovery must discard the unsealed unit wholesale"
    );
    drop(p);
    let _ = std::fs::remove_file(path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// On a quiescent store, a pinned view is indistinguishable from the
    /// live database: same extents, same attribute reads, same index seeks.
    #[test]
    fn quiescent_view_agrees_with_database(
        names in prop::collection::vec("[a-z]{1,8}", 1..12)
    ) {
        let (p, path) = open("agree");
        let tax = p.taxonomy().unwrap();
        let db = tax.db().clone();
        for name in &names {
            tax.create_ct(name, Rank::Genus).unwrap();
        }
        let view = db.read_view();
        let live_extent = db.extent("CT", false).unwrap();
        prop_assert_eq!(&view.extent("CT", false).unwrap(), &live_extent);
        for &oid in &live_extent {
            prop_assert_eq!(
                view.attr_of(oid, "working_name").unwrap(),
                db.attr_of(oid, "working_name").unwrap()
            );
            prop_assert_eq!(view.class_of(oid).unwrap(), db.class_of(oid).unwrap());
        }
        for name in &names {
            let needle = Value::from(name.as_str());
            prop_assert_eq!(
                view.find_by_attr("CT", "working_name", &needle).unwrap(),
                db.find_by_attr("CT", "working_name", &needle).unwrap()
            );
        }
        drop(p);
        let _ = std::fs::remove_file(path);
    }
}
