//! Facade-level integration of the remaining chapter-4/6 features: ODL
//! schema export, persisted views queried through POOL, composite deep copy
//! and deferred minimum-cardinality validation.

use prometheus_db::{
    Cardinality, Prometheus, Rank, RelClassDef, StoreOptions, TypeKind, Value, View,
};

fn open(name: &str) -> Prometheus {
    let path = std::env::temp_dir().join(format!(
        "facade-feat-{name}-{}-{:?}.log",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&path);
    Prometheus::open_with(
        path,
        StoreOptions {
            sync_on_commit: false,
        },
    )
    .unwrap()
}

#[test]
fn taxonomic_schema_exports_as_odl() {
    let p = open("odl");
    let _tax = p.taxonomy().unwrap();
    let odl = p.db().with_schema(|s| s.to_odl());
    // The Figure 6 shape is recognisable in the export.
    assert!(odl.contains("class CT {"));
    assert!(odl.contains("class NT {"));
    assert!(odl.contains("class Specimen {"));
    assert!(odl.contains("relationship aggregation Circumscribes (CT -> Object) {"));
    assert!(odl.contains("relationship association HasType (NT -> Object) {"));
    assert!(odl.contains("sharable"));
    assert!(odl.contains("acyclic"));
}

#[test]
fn views_are_queryable_through_pool() {
    let p = open("views");
    let tax = p.taxonomy().unwrap();
    let cls = tax.new_classification("mine", "me", "c").unwrap();
    let g = tax.create_ct("G", Rank::Genus).unwrap();
    let s1 = tax.create_specimen("A-1").unwrap();
    let s2 = tax.create_specimen("B-2").unwrap();
    tax.circumscribe(&cls, g, s1).unwrap();
    let _outside = s2;
    View::new("classified-specimens")
        .class("Specimen")
        .classification(cls.oid())
        .save(p.db())
        .unwrap();
    let r = p
        .query("select s.code from view \"classified-specimens\" s order by s.code")
        .unwrap();
    assert_eq!(r.first_column(), vec![Value::from("A-1")]);
}

#[test]
fn deep_copy_duplicates_a_name_with_its_exclusive_state() {
    let p = open("copy");
    let tax = p.taxonomy().unwrap();
    let db = p.db();
    let nt = tax.create_nt("Apium", Rank::Genus, 1753, "L.").unwrap();
    let s = tax.create_specimen("S").unwrap();
    tax.typify(nt, s, TypeKind::Lectotype).unwrap();
    // HasType is a sharable association: the copy must point at the SAME
    // specimen (types are shared evidence, not parts).
    let copy = db.deep_copy(nt).unwrap();
    assert_ne!(copy, nt);
    let types = tax.types_of(copy).unwrap();
    assert_eq!(types, vec![(TypeKind::Lectotype, s)]);
    assert_eq!(tax.name_of(copy).unwrap(), "Apium");
    // Homonym detection now sees the duplicate — the §2.3 audit workflow.
    let homonyms = prometheus_taxonomy::synonymy::detect_homonyms(&tax).unwrap();
    assert_eq!(homonyms, vec![(nt, copy)]);
}

#[test]
fn min_cardinality_validation_as_a_deferred_audit() {
    let p = open("mincard");
    let tax = p.taxonomy().unwrap();
    let db = p.db();
    // An ICBN-flavoured minimum: every NT must carry at least one HasType.
    // (The rule-engine variant is `icbn-type-existence`; this is the bulk
    // audit form for already-loaded historical data.)
    db.define_relationship(
        RelClassDef::association("AuditHasType", "NT", "Specimen")
            .origin_cardinality(Cardinality::at_least(1)),
    )
    .unwrap();
    let nt = tax.create_nt("Apium", Rank::Genus, 1753, "L.").unwrap();
    let problems = db.validate_min_cardinalities().unwrap();
    assert_eq!(problems.len(), 1, "{problems:?}");
    let s = tax.create_specimen("S").unwrap();
    db.create_relationship("AuditHasType", nt, s, Vec::new())
        .unwrap();
    assert!(db.validate_min_cardinalities().unwrap().is_empty());
}

#[test]
fn history_traces_a_taxons_life() {
    // The HICLAS-style question — "what happened to this taxon?" — answered
    // from recorded structure, not name-based opinion (§2.2's critique).
    let p = open("history");
    p.enable_history().unwrap();
    let tax = p.taxonomy().unwrap();
    let cls = tax.new_classification("rev", "me", "c").unwrap();
    let g1 = tax.create_ct("G1", Rank::Genus).unwrap();
    let g2 = tax.create_ct("G2", Rank::Genus).unwrap();
    let sp = tax.create_ct("s", Rank::Species).unwrap();
    let e1 = tax.circumscribe(&cls, g1, sp).unwrap();
    // Move the species to the other genus.
    cls.remove_edge(p.db(), e1).unwrap();
    tax.circumscribe(&cls, g2, sp).unwrap();

    let history = prometheus_db::history_of(p.db(), sp).unwrap();
    let kinds: Vec<&str> = history.iter().map(|e| e.kind.as_str()).collect();
    assert_eq!(kinds, vec!["object-created"]);
    // The movement shows on the edges' histories.
    let e1_history = prometheus_db::history_of(p.db(), e1).unwrap();
    let e1_kinds: Vec<&str> = e1_history.iter().map(|e| e.kind.as_str()).collect();
    assert_eq!(e1_kinds, vec!["rel-created", "classified", "declassified"]);
}
