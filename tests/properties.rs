//! Property-based tests (proptest) over the core invariants: the binary
//! codec, order-preserving value encoding, the synonym union–find, rank
//! ordering, and classification structure under random edit sequences.

use prometheus_db::{Oid, Prometheus, Rank, StoreOptions, Value};
use prometheus_object::synonym::SynonymTable;
use prometheus_storage::codec;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-zA-Zéü ]{0,12}".prop_map(Value::Str),
        (1800i32..2100, 1u8..13, 1u8..29)
            .prop_map(|(y, m, d)| Value::Date(prometheus_db::Date::new(y, m, d))),
        (1u64..10_000).prop_map(|n| Value::Ref(Oid::from_raw(n))),
    ];
    leaf.prop_recursive(2, 16, 4, |inner| {
        prop::collection::vec(inner, 0..4).prop_map(Value::List)
    })
}

proptest! {
    /// Every Value round-trips through the storage codec.
    #[test]
    fn codec_round_trips_values(v in arb_value()) {
        let bytes = codec::to_bytes(&v).unwrap();
        let back: Value = codec::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, v);
    }

    /// Maps of values round-trip (the shape of object attribute maps).
    #[test]
    fn codec_round_trips_attr_maps(
        entries in prop::collection::btree_map("[a-z]{1,8}", arb_value(), 0..8)
    ) {
        let bytes = codec::to_bytes(&entries).unwrap();
        let back: BTreeMap<String, Value> = codec::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, entries);
    }

    /// The order-preserving encoding agrees with Value's total order for
    /// same-variant values (the property attribute-range scans rely on).
    #[test]
    fn ordered_encoding_is_monotone_ints(a in any::<i64>(), b in any::<i64>()) {
        let (mut ea, mut eb) = (Vec::new(), Vec::new());
        Value::Int(a).encode_ordered(&mut ea);
        Value::Int(b).encode_ordered(&mut eb);
        prop_assert_eq!(a.cmp(&b), ea.cmp(&eb));
    }

    #[test]
    fn ordered_encoding_is_monotone_strings(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
        let (mut ea, mut eb) = (Vec::new(), Vec::new());
        Value::Str(a.clone()).encode_ordered(&mut ea);
        Value::Str(b.clone()).encode_ordered(&mut eb);
        prop_assert_eq!(a.cmp(&b), ea.cmp(&eb));
    }

    /// The union–find synonym table is equivalent to a naive partition
    /// model under any sequence of declarations.
    #[test]
    fn synonym_table_matches_naive_partition(
        pairs in prop::collection::vec((1u64..30, 1u64..30), 0..40)
    ) {
        let mut table = SynonymTable::new();
        let mut naive: Vec<BTreeSet<u64>> = Vec::new();
        for (a, b) in &pairs {
            table.declare(Oid::from_raw(*a), Oid::from_raw(*b));
            let ia = naive.iter().position(|s| s.contains(a));
            let ib = naive.iter().position(|s| s.contains(b));
            match (ia, ib) {
                (None, None) => naive.push([*a, *b].into_iter().collect()),
                (Some(i), None) => { naive[i].insert(*b); }
                (None, Some(j)) => { naive[j].insert(*a); }
                (Some(i), Some(j)) if i != j => {
                    let merged: BTreeSet<u64> = naive[i].union(&naive[j]).copied().collect();
                    let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                    naive.remove(hi);
                    naive[lo] = merged;
                }
                _ => {}
            }
        }
        for x in 1u64..30 {
            for y in 1u64..30 {
                let same_naive = naive.iter().any(|s| s.contains(&x) && s.contains(&y)) || x == y;
                prop_assert_eq!(
                    table.same(Oid::from_raw(x), Oid::from_raw(y)),
                    same_naive,
                    "x={} y={}", x, y
                );
            }
        }
    }

    /// Rank placement is a strict order: irreflexive, antisymmetric, and
    /// consistent with the Figure 1 ladder.
    #[test]
    fn rank_placement_is_strict_order(a in 0usize..24, b in 0usize..24) {
        let (ra, rb) = (Rank::ALL[a], Rank::ALL[b]);
        prop_assert!(!ra.may_be_placed_below(ra));
        if ra.may_be_placed_below(rb) {
            prop_assert!(!rb.may_be_placed_below(ra));
            prop_assert!(rb < ra);
        }
    }
}

/// Random interleavings of create/link/unlink operations keep a strict
/// classification single-parented and acyclic.
#[test]
fn classification_invariants_under_random_edits() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let path = std::env::temp_dir().join(format!(
        "prop-cls-{}-{:?}.log",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&path);
    let p = Prometheus::open_with(
        &path,
        StoreOptions {
            sync_on_commit: false,
        },
    )
    .unwrap();
    let tax = p.taxonomy().unwrap();
    let db = tax.db();
    let cls = tax.new_classification("fuzz", "f", "f").unwrap();
    let mut rng = StdRng::seed_from_u64(1234);
    let nodes: Vec<_> = (0..20)
        .map(|i| tax.create_ct(&format!("N{i}"), Rank::ALL[i % 24]).unwrap())
        .collect();
    let mut edges: Vec<Oid> = Vec::new();
    for _ in 0..300 {
        let op = rng.gen_range(0..3);
        match op {
            0 => {
                let a = nodes[rng.gen_range(0..nodes.len())];
                let b = nodes[rng.gen_range(0..nodes.len())];
                // Any violation (rank, cycle, strictness) must be rejected,
                // never applied partially.
                if let Ok(edge) = tax.circumscribe(&cls, a, b) {
                    edges.push(edge);
                }
            }
            1 => {
                if !edges.is_empty() {
                    let i = rng.gen_range(0..edges.len());
                    let edge = edges.swap_remove(i);
                    if db.exists(edge) {
                        cls.remove_edge(db, edge).unwrap();
                    }
                }
            }
            _ => {
                // Speculative what-if that is always rolled back must leave
                // the structure unchanged.
                let before = db.classification_edges(cls.oid()).unwrap();
                let token = db.begin_unit();
                let a = nodes[rng.gen_range(0..nodes.len())];
                let b = nodes[rng.gen_range(0..nodes.len())];
                let _ = tax.circumscribe(&cls, a, b);
                db.abort_unit(token);
                assert_eq!(db.classification_edges(cls.oid()).unwrap(), before);
            }
        }
        // Invariants hold after every step.
        let problems = cls.check_integrity(db).unwrap();
        assert!(problems.is_empty(), "integrity violated: {problems:?}");
    }
    let _ = std::fs::remove_file(path);
}
