//! End-to-end replication: follower catch-up from the compacted checkpoint,
//! byte-aligned replay, read-only enforcement, compaction-forced resync,
//! primary failover and reconnect, and lag-aware client routing.
//!
//! Every test runs a real primary server plus real [`Follower`] processes
//! (threads) speaking the wire protocol over loopback — nothing is mocked.

use prometheus_db::{Prometheus, StoreOptions, Value};
use prometheus_replica::{Consistency, Follower, FollowerConfig, Route, RoutedClient};
use prometheus_server::frame::{read_msg, write_msg};
use prometheus_server::protocol::{Request, Response};
use prometheus_server::{
    serve, ErrorKind, MutationOp, PrometheusClient, ServerConfig, ServerError, ServerHandle,
    TraceId, PROTOCOL_VERSION,
};
use prometheus_taxonomy::Rank;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn tmp(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!(
        "prometheus-replication-{name}-{}-{:?}.log",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// Open a primary at `path`, seed `genera`, and serve it.
fn boot_primary(path: &PathBuf, genera: &[&str]) -> ServerHandle {
    let p = Prometheus::open_with(
        path,
        StoreOptions {
            sync_on_commit: false,
        },
    )
    .unwrap();
    let tax = p.taxonomy().unwrap();
    for g in genera {
        tax.create_ct(g, Rank::Genus).unwrap();
    }
    serve(
        p,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

/// Re-serve an existing store on a fixed address (failover restart). The
/// old listener's port can linger briefly after a stop, so retry the bind.
fn reserve_primary(path: &PathBuf, addr: SocketAddr) -> ServerHandle {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let p = Prometheus::open_with(
            path,
            StoreOptions {
                sync_on_commit: false,
            },
        )
        .unwrap();
        match serve(
            p,
            ServerConfig {
                addr: addr.to_string(),
                workers: 4,
                ..ServerConfig::default()
            },
        ) {
            Ok(handle) => return handle,
            Err(e) => {
                assert!(Instant::now() < deadline, "could not rebind {addr}: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

fn follower_of(primary: SocketAddr, name: &str) -> prometheus_replica::FollowerHandle {
    let mut config = FollowerConfig::new(primary.to_string(), tmp(name));
    config.name = name.into();
    Follower::start(config).unwrap()
}

fn add_genus(client: &mut PrometheusClient, name: &str) {
    client
        .unit_batch(vec![MutationOp::CreateObject {
            class: "CT".into(),
            attrs: vec![
                ("working_name".into(), Value::Str(name.into())),
                ("rank".into(), Value::Str("Genus".into())),
            ],
        }])
        .unwrap();
}

/// The pool-typical read suite: results must be identical on primary and
/// follower once the follower reports the same applied position.
const SUITE: [&str; 4] = [
    "select t.working_name from CT t order by t.working_name",
    "select t from CT t",
    "select t.working_name from CT t where t.rank = 'Genus' order by t.working_name",
    "select t.rank from CT t order by t.working_name",
];

#[test]
fn follower_catches_up_from_checkpoint_and_matches_primary() {
    let path = tmp("catchup-primary");
    let handle = boot_primary(&path, &["Apium", "Daucus"]);
    let mut client = PrometheusClient::connect(handle.addr()).unwrap();
    // Compact so a fresh follower must bootstrap from the checkpoint prefix,
    // then write a live tail on top of it.
    client.compact().unwrap();
    add_genus(&mut client, "Heliosciadium");
    add_genus(&mut client, "Sium");

    let follower = follower_of(handle.addr(), "catchup");
    assert!(
        follower.wait_caught_up(Duration::from_secs(10)),
        "follower never caught up: {:?} bytes behind",
        follower.status().lag_bytes()
    );

    let mut replica_client = PrometheusClient::connect(follower.addr()).unwrap();
    let status = replica_client.replica_status().unwrap();
    assert_eq!(status.role, "replica");
    assert_eq!(status.primary, Some(handle.addr().to_string()));
    assert_eq!(
        status.applied_offset, status.log_len,
        "caught up means the cursor sits at the primary's horizon"
    );
    assert!(status.log_len > 0);

    let primary_status = client.replica_status().unwrap();
    assert_eq!(primary_status.role, "primary");
    assert_eq!(primary_status.epoch, status.epoch);
    assert_eq!(primary_status.log_len, status.applied_offset);

    for q in SUITE {
        let on_primary = client.query(q).unwrap();
        let on_replica = replica_client.query(q).unwrap();
        assert_eq!(on_primary, on_replica, "results diverged for {q}");
    }

    // The primary saw the follower: per-follower lag is in its stats, and
    // the replication request class has a populated latency histogram.
    let (stats, _) = client.stats().unwrap();
    let lag = stats
        .replication
        .iter()
        .find(|f| f.follower == "catchup")
        .expect("primary must track the follower");
    assert_eq!(lag.log_len, status.log_len);
    let (_, replication_latency) = stats
        .latency_by_class
        .iter()
        .find(|(class, _)| class == "replication")
        .expect("per-class histograms must include replication");
    assert!(replication_latency.count > 0);

    replica_client.close().unwrap();
    client.close().unwrap();
    follower.stop();
    handle.stop();
}

#[test]
fn replica_rejects_writes_with_typed_error_naming_primary() {
    let path = tmp("readonly-primary");
    let handle = boot_primary(&path, &["Apium"]);
    let follower = follower_of(handle.addr(), "readonly");
    assert!(follower.wait_caught_up(Duration::from_secs(10)));

    let mut client = PrometheusClient::connect(follower.addr()).unwrap();
    // Reads work.
    assert_eq!(client.query("select t from CT t").unwrap().len(), 1);
    // Every mutating verb is refused with the typed error, message naming
    // the primary; the session survives.
    let primary_addr = handle.addr().to_string();
    let assert_read_only = |err: ServerError| match err {
        ServerError::Remote { kind, message } => {
            assert_eq!(kind, ErrorKind::ReadOnlyReplica);
            assert!(
                message.contains(&primary_addr),
                "error must name the primary: {message}"
            );
        }
        other => panic!("expected read-only-replica error, got {other:?}"),
    };
    assert_read_only(
        client
            .unit_batch(vec![MutationOp::CreateObject {
                class: "CT".into(),
                attrs: vec![],
            }])
            .unwrap_err(),
    );
    assert_read_only(client.compact().unwrap_err());
    assert_read_only(
        client
            .install_pcl("rule r: before create CT {}")
            .unwrap_err(),
    );
    assert_read_only(client.begin_unit().err().expect("unit must be refused"));
    client.ping().unwrap();
    client.close().unwrap();
    follower.stop();
    handle.stop();
}

#[test]
fn primary_compaction_mid_stream_forces_clean_resync() {
    let path = tmp("compact-primary");
    let handle = boot_primary(&path, &["Apium", "Daucus"]);
    let follower = follower_of(handle.addr(), "compact");
    assert!(follower.wait_caught_up(Duration::from_secs(10)));
    let resyncs_before = follower.status().resyncs();

    // Grow the log, then compact: the epoch bump must invalidate the
    // follower's cursor and force a full, clean resync — not a silent replay
    // of mismatched offsets.
    let mut client = PrometheusClient::connect(handle.addr()).unwrap();
    for name in ["Heliosciadium", "Sium", "Berula"] {
        add_genus(&mut client, name);
    }
    client.compact().unwrap();
    add_genus(&mut client, "Cicuta");

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let s = follower.status();
        if s.resyncs() > resyncs_before && s.polls() > 0 && s.lag_bytes() == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "follower never resynced after compaction (resyncs {})",
            s.resyncs()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // Post-resync state matches the primary exactly.
    let mut replica_client = PrometheusClient::connect(follower.addr()).unwrap();
    for q in SUITE {
        assert_eq!(client.query(q).unwrap(), replica_client.query(q).unwrap());
    }
    assert_eq!(replica_client.query("select t from CT t").unwrap().len(), 6);
    replica_client.close().unwrap();
    client.close().unwrap();
    follower.stop();
    handle.stop();
}

#[test]
fn failover_replica_serves_reads_then_resumes_from_cursor() {
    let path = tmp("failover-primary");
    let handle = boot_primary(&path, &["Apium", "Daucus"]);
    let addr = handle.addr();
    let follower = follower_of(addr, "failover");
    assert!(follower.wait_caught_up(Duration::from_secs(10)));
    let resyncs_before = follower.status().resyncs();

    // Kill the primary mid-stream.
    handle.stop();

    // The follower keeps serving a consistent pinned view…
    let mut replica_client = PrometheusClient::connect(follower.addr()).unwrap();
    let rows = replica_client
        .query("select t.working_name from CT t order by t.working_name")
        .unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows.rows[0][0], Value::Str("Apium".into()));
    // …while its staleness age grows and writes stay refused.
    std::thread::sleep(Duration::from_millis(50));
    let status = replica_client.replica_status().unwrap();
    assert!(status.caught_up_age_us >= 50_000);
    assert!(matches!(
        replica_client.compact(),
        Err(ServerError::Remote {
            kind: ErrorKind::ReadOnlyReplica,
            ..
        })
    ));

    // Restart the primary on the same address with the same store, and
    // write something new. The follower must reconnect and resume from its
    // cursor — same epoch, same byte offsets — without a resync.
    let handle = reserve_primary(&path, addr);
    let mut client = PrometheusClient::connect(handle.addr()).unwrap();
    add_genus(&mut client, "Heliosciadium");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let rows = replica_client.query("select t from CT t").unwrap();
        if rows.len() == 3 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "follower never caught up after failover"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        follower.status().resyncs(),
        resyncs_before,
        "reconnect after failover must resume from the cursor, not resync"
    );
    replica_client.close().unwrap();
    client.close().unwrap();
    follower.stop();
    handle.stop();
}

#[test]
fn primary_restart_preserves_epoch_and_avoids_blanket_resync() {
    let path = tmp("epoch-primary");
    let handle = boot_primary(&path, &["Apium", "Daucus"]);
    let addr = handle.addr();
    let mut client = PrometheusClient::connect(addr).unwrap();
    // Compact so the primary sits on a non-zero epoch — exactly the state a
    // restart used to lose (the epoch lived only in memory, so reopening the
    // store regressed it to zero and every follower's cursor stopped
    // matching).
    client.compact().unwrap();
    add_genus(&mut client, "Heliosciadium");

    let follower = follower_of(addr, "epoch");
    assert!(follower.wait_caught_up(Duration::from_secs(10)));
    // The fresh follower resynced onto the compacted epoch once; that count
    // must not move again for the rest of the test.
    let resyncs_before = follower.status().resyncs();
    let epoch_before = client.replica_status().unwrap().epoch;
    assert_eq!(epoch_before, 1, "compaction must bump the log epoch");

    // Restart the primary: same store, same address.
    client.close().unwrap();
    handle.stop();
    let handle = reserve_primary(&path, addr);
    let mut client = PrometheusClient::connect(handle.addr()).unwrap();
    assert_eq!(
        client.replica_status().unwrap().epoch,
        epoch_before,
        "the log epoch must survive a primary restart"
    );

    // New writes must reach the follower through its existing cursor.
    add_genus(&mut client, "Sium");
    let mut replica_client = PrometheusClient::connect(follower.addr()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let rows = replica_client.query("select t from CT t").unwrap();
        if rows.len() == 4 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "follower never saw the post-restart write"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        follower.status().resyncs(),
        resyncs_before,
        "a restarted primary must not force a blanket resync"
    );
    for q in SUITE {
        assert_eq!(client.query(q).unwrap(), replica_client.query(q).unwrap());
    }
    replica_client.close().unwrap();
    client.close().unwrap();
    follower.stop();
    handle.stop();
}

#[test]
fn protocol_version_mismatch_is_typed_on_the_client() {
    // Server side: a wrong Hello version earns the typed error with both
    // versions named.
    let path = tmp("version-primary");
    let handle = boot_primary(&path, &["Apium"]);
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut writer = BufWriter::new(stream.try_clone().unwrap());
    let mut reader = BufReader::new(stream);
    write_msg(
        &mut writer,
        TraceId::NONE,
        &Request::Hello {
            version: 1,
            client: "time-traveller".into(),
        },
    )
    .unwrap();
    match read_msg::<_, Response>(&mut reader).unwrap().1 {
        Response::Error { kind, message } => {
            assert_eq!(kind, ErrorKind::ProtocolMismatch);
            assert!(
                message.contains('1') && message.contains(&PROTOCOL_VERSION.to_string()),
                "{message}"
            );
        }
        other => panic!("expected typed mismatch, got {other:?}"),
    }
    handle.stop();

    // Client side: a server speaking another version answers the handshake
    // with the typed error, and connect surfaces it as ErrorKind, not a
    // string the caller must parse.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        let _: (TraceId, Request) = read_msg(&mut reader).unwrap();
        write_msg(
            &mut writer,
            TraceId::NONE,
            &Response::Error {
                kind: ErrorKind::ProtocolMismatch,
                message: "protocol version 5 unsupported (server speaks 99)".into(),
            },
        )
        .unwrap();
    });
    match PrometheusClient::connect(addr) {
        Err(ServerError::Remote { kind, message }) => {
            assert_eq!(kind, ErrorKind::ProtocolMismatch);
            assert!(message.contains("99"));
        }
        Err(other) => panic!("expected typed mismatch from connect, got {other:?}"),
        Ok(_) => panic!("connect must fail against a mismatched server"),
    }
    fake.join().unwrap();
}

#[test]
fn routed_client_scales_stale_reads_and_keeps_read_your_writes() {
    let path = tmp("routing-primary");
    let handle = boot_primary(&path, &["Apium", "Daucus"]);
    let f1 = follower_of(handle.addr(), "route-a");
    let f2 = follower_of(handle.addr(), "route-b");
    assert!(f1.wait_caught_up(Duration::from_secs(10)));
    assert!(f2.wait_caught_up(Duration::from_secs(10)));

    let mut routed = RoutedClient::connect(handle.addr(), &[f1.addr(), f2.addr()]).unwrap();
    // Strong reads pin to the primary.
    routed
        .query("select t from CT t", Consistency::Strong)
        .unwrap();
    assert_eq!(routed.last_route(), Route::Primary);
    // Stale reads with a generous budget go to a caught-up follower, and
    // round-robin across them.
    let mut follower_routes = std::collections::HashSet::new();
    for _ in 0..4 {
        routed
            .query(
                "select t from CT t",
                Consistency::Stale(Duration::from_secs(10)),
            )
            .unwrap();
        match routed.last_route() {
            Route::Follower(i) => {
                follower_routes.insert(i);
            }
            Route::Primary => panic!("caught-up followers must serve stale reads"),
        }
    }
    assert_eq!(
        follower_routes.len(),
        2,
        "reads must fan out across replicas"
    );
    // An impossible budget falls back to the primary.
    routed
        .query("select t from CT t", Consistency::Stale(Duration::ZERO))
        .unwrap();
    assert_eq!(routed.last_route(), Route::Primary);

    // Read-your-writes: immediately after a write through this client, a
    // stale read still sees the write — either the primary served it, or a
    // follower that provably caught up after the write did.
    routed
        .unit_batch(vec![MutationOp::CreateObject {
            class: "CT".into(),
            attrs: vec![
                ("working_name".into(), Value::Str("Sium".into())),
                ("rank".into(), Value::Str("Genus".into())),
            ],
        }])
        .unwrap();
    let rows = routed
        .query(
            "select t.working_name from CT t order by t.working_name",
            Consistency::Stale(Duration::from_secs(10)),
        )
        .unwrap();
    assert!(
        rows.rows.iter().any(|r| r[0] == Value::Str("Sium".into())),
        "stale read after own write lost the write (routed to {:?})",
        routed.last_route()
    );

    routed.close().unwrap();
    f1.stop();
    f2.stop();
    handle.stop();
}
