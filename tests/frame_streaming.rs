//! Property tests for the incremental frame codecs.
//!
//! The event-driven transport decodes the wire through
//! [`FrameDecoder`]/[`FrameEncoder`] while the blocking transport uses
//! `read_msg`/`write_msg`. The protocol stays byte-identical only if the
//! two pairs agree on every stream, however the kernel happens to slice it
//! — so these tests feed the incremental decoder arbitrary chunkings
//! (including one byte at a time) of streams produced by the blocking
//! writer, and drain the incremental encoder in arbitrary nibbles,
//! asserting exact equivalence with the blocking pair. Since protocol v8
//! every frame envelope carries a 128-bit trace id, so the properties
//! round-trip arbitrary `(TraceId, Request)` pairs, not bare requests.

use prometheus_server::frame::{read_msg, write_msg};
use prometheus_server::{FrameDecoder, FrameEncoder, Request, ServerError, TraceId};
use proptest::prelude::*;

/// A few representative request shapes: unit variants, strings of varying
/// length (so payload sizes differ), and an option.
fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Ping),
        Just(Request::Stats),
        Just(Request::UnitBegin),
        Just(Request::UnitCommit),
        Just(Request::Bye),
        ".{0,64}".prop_map(|pool| Request::Query { pool }),
        ".{0,16}".prop_map(|source| Request::InstallPcl { source }),
        proptest::option::of(".{0,24}")
            .prop_map(|classification| Request::SetContext { classification }),
        (0u32..100).prop_map(|n| Request::Trace { n }),
        (1u16..10, ".{0,12}".prop_map(String::from))
            .prop_map(|(version, client)| Request::Hello { version, client }),
    ]
}

/// An arbitrary envelope trace id, biased to include the blank id — the
/// wire must carry `NONE` (an unstamped client) as faithfully as a full
/// 128-bit id.
fn arb_trace() -> impl Strategy<Value = TraceId> {
    prop_oneof![
        Just(TraceId::NONE),
        (any::<u64>(), any::<u64>()).prop_map(|(hi, lo)| TraceId::from_words(hi, lo)),
    ]
}

fn arb_framed() -> impl Strategy<Value = (TraceId, Request)> {
    (arb_trace(), arb_request())
}

/// Encode every message with the *blocking* writer into one contiguous
/// byte stream — the reference the incremental decoder must match.
fn blocking_stream(msgs: &[(TraceId, Request)]) -> Vec<u8> {
    let mut wire = Vec::new();
    for (trace, m) in msgs {
        write_msg(&mut wire, *trace, m).unwrap();
    }
    wire
}

/// Decode the whole stream with the blocking reader.
fn blocking_decode(wire: &[u8]) -> Vec<(TraceId, Request)> {
    let mut cursor = wire;
    let mut out = Vec::new();
    loop {
        match read_msg::<_, Request>(&mut cursor) {
            Ok(msg) => out.push(msg),
            Err(ServerError::Disconnected) => break,
            Err(e) => panic!("blocking reader failed on its own stream: {e}"),
        }
    }
    out
}

/// Slice `wire` into chunks whose sizes cycle through `sizes` (1-minimum),
/// feeding each chunk to the decoder and draining all decodable frames.
fn incremental_decode(wire: &[u8], sizes: &[usize]) -> Vec<(TraceId, Request)> {
    let mut dec = FrameDecoder::new();
    let mut out = Vec::new();
    let mut pos = 0;
    let mut i = 0;
    while pos < wire.len() {
        let take = sizes
            .get(i % sizes.len().max(1))
            .copied()
            .unwrap_or(1)
            .clamp(1, wire.len() - pos);
        i += 1;
        dec.extend(&wire[pos..pos + take]);
        pos += take;
        while let Some(msg) = dec.next_msg::<Request>().unwrap() {
            out.push(msg);
        }
    }
    assert!(
        dec.at_boundary(),
        "decoder left {} bytes mid-frame on a complete stream",
        dec.buffered()
    );
    out
}

proptest! {
    /// Arbitrary chunkings of a multi-message stream decode to exactly the
    /// (trace, message) pairs the blocking reader sees, in order, ending at
    /// a boundary.
    #[test]
    fn decoder_matches_blocking_reader_under_any_split(
        msgs in prop::collection::vec(arb_framed(), 0..12),
        sizes in prop::collection::vec(1usize..64, 1..8),
    ) {
        let wire = blocking_stream(&msgs);
        let reference = blocking_decode(&wire);
        prop_assert_eq!(&reference, &msgs);
        prop_assert_eq!(incremental_decode(&wire, &sizes), reference);
    }

    /// The degenerate chunking — one byte per `extend` — still matches.
    #[test]
    fn decoder_survives_byte_at_a_time(msgs in prop::collection::vec(arb_framed(), 1..6)) {
        let wire = blocking_stream(&msgs);
        prop_assert_eq!(incremental_decode(&wire, &[1]), msgs);
    }

    /// The incremental encoder's byte stream equals the blocking writer's
    /// for the same messages, no matter how raggedly the transport drains
    /// it — and interleaving pushes with partial drains changes nothing.
    #[test]
    fn encoder_matches_blocking_writer_under_any_drain(
        msgs in prop::collection::vec(arb_framed(), 0..12),
        sizes in prop::collection::vec(1usize..32, 1..8),
    ) {
        let reference = blocking_stream(&msgs);
        let mut enc = FrameEncoder::new();
        let mut drained = Vec::new();
        for (i, (trace, m)) in msgs.iter().enumerate() {
            enc.push(*trace, m).unwrap();
            // Drain a ragged chunk between pushes, like a half-writable socket.
            let take = sizes[i % sizes.len()].min(enc.pending().len());
            drained.extend_from_slice(&enc.pending()[..take]);
            enc.consume(take);
        }
        drained.extend_from_slice(enc.pending());
        let n = enc.pending().len();
        enc.consume(n);
        prop_assert!(enc.is_empty());
        prop_assert_eq!(drained, reference);
    }

    /// A flipped byte anywhere in the body — trace words included — fails
    /// CRC in both readers; the incremental decoder is exactly as strict
    /// as the blocking one.
    #[test]
    fn corrupt_payload_rejected_by_both_readers(
        (trace, msg) in arb_framed(),
        flip in any::<usize>(),
    ) {
        let mut wire = Vec::new();
        write_msg(&mut wire, trace, &msg).unwrap();
        // The v8 body always holds at least the 16 trace bytes, so there is
        // always something past the 8-byte header to corrupt.
        let at = 8 + flip % (wire.len() - 8);
        wire[at] ^= 0xFF;
        prop_assert!(matches!(
            read_msg::<_, Request>(&mut &wire[..]),
            Err(ServerError::Frame(_))
        ));
        let mut dec = FrameDecoder::new();
        dec.extend(&wire);
        prop_assert!(matches!(dec.next_msg::<Request>(), Err(ServerError::Frame(_))));
    }
}
