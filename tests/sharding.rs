//! Sharded-store integration: cross-shard two-phase commit atomicity under
//! crash injection at every 2PC boundary, equivalence of sharded and
//! single-store query output over the same logical workload, per-shard
//! writer-lane isolation over the wire, and follower convergence against a
//! sharded primary.
//!
//! Crash injection drives the member stores' public 2PC API
//! ([`Store::prepare_active_unit`] / [`Store::append_decision`] /
//! [`Store::end_unit_scope`]) by hand and then *drops* the store without
//! sealing — every append is flushed when written, so a drop leaves exactly
//! the bytes a power cut at that boundary would.

use prometheus_db::{Prometheus, StoreOptions, Value};
use prometheus_replica::{Follower, FollowerConfig};
use prometheus_server::{serve, MutationOp, PrometheusClient, ServerConfig, ServerHandle};
use prometheus_storage::{Oid, ShardRouting, ShardedStore};
use prometheus_taxonomy::Rank;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

/// Fresh scratch directory (shard logs and sidecars all live under it).
fn tmp_dir(name: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "prometheus-sharding-{name}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

// ---------------------------------------------------------------------
// Cross-shard 2PC: crash injection at every boundary
// ---------------------------------------------------------------------

/// Where the "power cut" lands inside `end_unit_scope_on`'s commit protocol
/// (coordinator = shard 0, the lowest participant).
#[derive(Debug, Clone, Copy, PartialEq)]
enum CrashPoint {
    /// Unit wrote on both shards, nothing prepared.
    BeforePrepare,
    /// Coordinator prepared, the other participant was not reached.
    AfterFirstPrepare,
    /// Both participants prepared, no decision recorded.
    AfterAllPrepares,
    /// Prepared everywhere and the coordinator decided *commit*.
    AfterCommitDecision,
    /// Prepared everywhere and the coordinator decided *abort*.
    AfterAbortDecision,
    /// Decided commit and sealed the coordinator; the other shard's seal
    /// never made it out.
    AfterPartialSeal,
}

impl CrashPoint {
    fn expect_committed(self) -> bool {
        matches!(
            self,
            CrashPoint::AfterCommitDecision | CrashPoint::AfterPartialSeal
        )
    }
}

/// Open a 2-shard store, run a cross-shard unit up to `crash`, and drop the
/// store mid-protocol. Returns the two OIDs the unit wrote.
fn crash_mid_unit(dir: &Path, crash: CrashPoint) -> (Oid, Oid) {
    let path = dir.join("store.log");
    let store = ShardedStore::open_with(
        &path,
        StoreOptions {
            sync_on_commit: false,
        },
        2,
        ShardRouting::default(),
    )
    .unwrap();
    let a = store.allocate_oid_on(0);
    let b = store.allocate_oid_on(1);

    store.begin_unit_scope_on(0b11);
    let claim = store.bind_claim(0b11);
    store
        .with_txn(|t| {
            t.put(a, b"alpha".to_vec());
            t.put(b, b"beta".to_vec());
            Ok(())
        })
        .unwrap();
    let gid = store.shard(0).active_unit_id().expect("unit wrote shard 0");
    assert!(
        store.shard(1).active_unit_id().is_some(),
        "unit wrote shard 1"
    );

    // Drive end_unit_scope_on's protocol by hand, stopping at the boundary.
    let prepare_both = |s: &ShardedStore| {
        s.shard(0).prepare_active_unit(gid, 0).unwrap();
        s.shard(1).prepare_active_unit(gid, 0).unwrap();
    };
    match crash {
        CrashPoint::BeforePrepare => {}
        CrashPoint::AfterFirstPrepare => {
            store.shard(0).prepare_active_unit(gid, 0).unwrap();
        }
        CrashPoint::AfterAllPrepares => prepare_both(&store),
        CrashPoint::AfterCommitDecision => {
            prepare_both(&store);
            store.shard(0).append_decision(gid, true).unwrap();
        }
        CrashPoint::AfterAbortDecision => {
            prepare_both(&store);
            store.shard(0).append_decision(gid, false).unwrap();
        }
        CrashPoint::AfterPartialSeal => {
            prepare_both(&store);
            store.shard(0).append_decision(gid, true).unwrap();
            store.shard(0).end_unit_scope(true).unwrap();
        }
    }
    drop(claim);
    drop(store); // crash: the scope is never settled on at least one shard
    (a, b)
}

fn reopen(dir: &Path) -> ShardedStore {
    ShardedStore::open_with(
        dir.join("store.log"),
        StoreOptions {
            sync_on_commit: false,
        },
        2,
        ShardRouting::default(),
    )
    .unwrap()
}

#[test]
fn cross_shard_unit_converges_after_crash_at_every_2pc_boundary() {
    for crash in [
        CrashPoint::BeforePrepare,
        CrashPoint::AfterFirstPrepare,
        CrashPoint::AfterAllPrepares,
        CrashPoint::AfterCommitDecision,
        CrashPoint::AfterAbortDecision,
        CrashPoint::AfterPartialSeal,
    ] {
        let dir = tmp_dir("crash");
        let (a, b) = crash_mid_unit(&dir, crash);

        // Recovery must settle the in-doubt unit from the coordinator's
        // decision record: presumed abort unless a commit decision is on
        // disk. Either way, never half of the unit.
        let store = reopen(&dir);
        let expect: Option<&[u8]> = if crash.expect_committed() {
            Some(b"alpha")
        } else {
            None
        };
        assert_eq!(
            store.get(a).as_deref(),
            expect,
            "{crash:?}: shard-0 record after recovery"
        );
        assert_eq!(
            store.get(b).as_deref(),
            expect.map(|_| &b"beta"[..]),
            "{crash:?}: shard-1 record after recovery"
        );

        // The recovered store accepts new cross-shard work.
        let c = store.allocate_oid_on(0);
        let d = store.allocate_oid_on(1);
        store
            .with_txn(|t| {
                t.put(c, b"gamma".to_vec());
                t.put(d, b"delta".to_vec());
                Ok(())
            })
            .unwrap();
        drop(store);

        // And the resolution is durable: a second recovery sees the same
        // answer (the first reopen sealed the unit, so nothing is in doubt).
        let store = reopen(&dir);
        assert_eq!(
            store.get(a).as_deref(),
            expect,
            "{crash:?}: shard-0 record after second recovery"
        );
        assert_eq!(store.get(c).as_deref(), Some(&b"gamma"[..]));
        assert_eq!(store.get(d).as_deref(), Some(&b"delta"[..]));
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn fully_sealed_cross_shard_unit_is_idempotent_across_reopens() {
    let dir = tmp_dir("sealed");
    let path = dir.join("store.log");
    let a;
    let b;
    {
        let store = ShardedStore::open_with(
            &path,
            StoreOptions {
                sync_on_commit: false,
            },
            2,
            ShardRouting::default(),
        )
        .unwrap();
        a = store.allocate_oid_on(0);
        b = store.allocate_oid_on(1);
        store.begin_unit_scope_on(0b11);
        let _claim = store.bind_claim(0b11);
        store
            .with_txn(|t| {
                t.put(a, b"alpha".to_vec());
                t.put(b, b"beta".to_vec());
                Ok(())
            })
            .unwrap();
        store.end_unit_scope_on(0b11, true).unwrap();
        assert_eq!(store.stats_aggregate().units_2pc, 1);
    }
    for _ in 0..2 {
        let store = reopen(&dir);
        assert_eq!(store.get(a).as_deref(), Some(&b"alpha"[..]));
        assert_eq!(store.get(b).as_deref(), Some(&b"beta"[..]));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Sharded output equals single-store output
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum WorkloadOp {
    Create,
    Rename(usize),
    Delete(usize),
}

fn workload_strategy() -> impl Strategy<Value = Vec<WorkloadOp>> {
    // Bias toward creation (the vendored prop_oneof! has no weight arms):
    // draw a selector and map it, two thirds creates, renames over deletes.
    let op = (0u8..6, 0usize..64).prop_map(|(sel, k)| match sel {
        0..=3 => WorkloadOp::Create,
        4 => WorkloadOp::Rename(k),
        _ => WorkloadOp::Delete(k),
    });
    prop::collection::vec(op, 1..24)
}

/// Apply the workload and project it back out through POOL. Raw OIDs differ
/// between shard counts (shard `k` stripes identifiers ≡ k mod n), so
/// equivalence is judged on attribute-projected, deterministically ordered
/// query output — the observable surface — not on identifiers.
fn run_workload(p: &Prometheus, ops: &[WorkloadOp]) -> (usize, Vec<String>) {
    let tax = p.taxonomy().unwrap();
    let mut live: Vec<Oid> = Vec::new();
    let mut counter = 0u32;
    for op in ops {
        match op {
            WorkloadOp::Create => {
                let oid = tax
                    .create_ct(&format!("Tax-{counter:04}"), Rank::Genus)
                    .unwrap();
                counter += 1;
                live.push(oid);
            }
            WorkloadOp::Rename(k) => {
                if !live.is_empty() {
                    let oid = live[k % live.len()];
                    p.db()
                        .set_attr(oid, "working_name", format!("Ren-{counter:04}"))
                        .unwrap();
                    counter += 1;
                }
            }
            WorkloadOp::Delete(k) => {
                if !live.is_empty() {
                    let oid = live.remove(k % live.len());
                    p.db().delete_object(oid).unwrap();
                }
            }
        }
    }
    let r = p
        .query("select t.working_name, t.rank from CT t order by t.working_name")
        .unwrap();
    let names = r
        .rows
        .iter()
        .map(|row| format!("{:?}", row.columns))
        .collect();
    (r.len(), names)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]

    /// The same logical workload through a 1-shard and a 3-shard database
    /// produces identical query output.
    #[test]
    fn sharded_query_output_matches_single_store(ops in workload_strategy()) {
        let single_dir = tmp_dir("prop-single");
        let sharded_dir = tmp_dir("prop-sharded");
        let opts = || StoreOptions { sync_on_commit: false };
        let single = Prometheus::open_with(single_dir.join("store.log"), opts()).unwrap();
        let sharded =
            Prometheus::open_sharded(sharded_dir.join("store.log"), opts(), 3).unwrap();

        let base = run_workload(&single, &ops);
        let split = run_workload(&sharded, &ops);
        prop_assert_eq!(&base, &split, "live query output diverged");

        // And after a restart of the sharded store the answer holds.
        drop(sharded);
        let sharded =
            Prometheus::open_sharded(sharded_dir.join("store.log"), opts(), 3).unwrap();
        let r = sharded
            .query("select t.working_name, t.rank from CT t order by t.working_name")
            .unwrap();
        prop_assert_eq!(r.len(), base.0, "row count changed across reopen");

        drop(single);
        drop(sharded);
        let _ = std::fs::remove_dir_all(&single_dir);
        let _ = std::fs::remove_dir_all(&sharded_dir);
    }
}

// ---------------------------------------------------------------------
// Wire-level: per-shard lanes, 2PC units, follower convergence
// ---------------------------------------------------------------------

fn serve_sharded(dir: &Path, shards: usize, io_threads: usize) -> ServerHandle {
    let p = Prometheus::open_sharded(
        dir.join("store.log"),
        StoreOptions {
            sync_on_commit: false,
        },
        shards,
    )
    .unwrap();
    // Install the taxonomy schema but no ICBN rules: rule-free mutation
    // batches keep their single-shard lane masks.
    p.taxonomy().unwrap();
    serve(
        p,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            io_threads,
            shards,
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

/// Create CTs one batch at a time (each singleton creation batch claims one
/// round-robin home lane) until we hold an OID on each of the two shards.
/// `shard_of_oid` is `raw % shards`, so parity identifies the home.
fn one_oid_per_shard(c: &mut PrometheusClient) -> (Oid, Oid) {
    let mut by_shard: [Option<Oid>; 2] = [None, None];
    for i in 0..8 {
        let created = c
            .unit_batch(vec![MutationOp::CreateObject {
                class: "CT".into(),
                attrs: vec![
                    ("working_name".into(), Value::from(format!("Wire-{i:02}"))),
                    ("rank".into(), Value::from("Genus")),
                ],
            }])
            .unwrap();
        let oid = created[0];
        assert!(!oid.is_nil());
        by_shard[(oid.raw() % 2) as usize].get_or_insert(oid);
        if by_shard.iter().all(Option::is_some) {
            break;
        }
    }
    (
        by_shard[0].expect("a creation homed on shard 0"),
        by_shard[1].expect("a creation homed on shard 1"),
    )
}

/// Satellite guarantee: a lane grant on shard A never rouses (or gates) a
/// session parked on shard B. A long batch pinned to shard 0's lane must
/// not delay a one-op batch on shard 1's lane — on the event transport,
/// where lane pumps are strictly per-lane.
#[cfg(target_os = "linux")]
#[test]
fn lane_grant_on_one_shard_does_not_gate_the_other() {
    let dir = tmp_dir("lanes");
    let handle = serve_sharded(&dir, 2, 2);
    let addr = handle.addr();

    let mut c = PrometheusClient::connect(addr).unwrap();
    let (slow, fast) = one_oid_per_shard(&mut c);

    let long_done = std::sync::Arc::new(AtomicBool::new(false));
    let long_writer = {
        let long_done = long_done.clone();
        std::thread::spawn(move || {
            let mut c = PrometheusClient::connect(addr).unwrap();
            let ops: Vec<MutationOp> = (0..5000)
                .map(|i| MutationOp::SetAttr {
                    oid: slow,
                    attr: "working_name".into(),
                    value: Value::from(format!("Slow-{i:05}")),
                })
                .collect();
            c.unit_batch(ops).unwrap();
            long_done.store(true, Ordering::SeqCst);
        })
    };

    // Give the long batch a head start into shard 0's lane, then run a
    // single op on shard 1. If the lanes shared a queue (or a grant on one
    // roused the other), this would wait ~the whole long batch out.
    std::thread::sleep(Duration::from_millis(5));
    c.unit_batch(vec![MutationOp::SetAttr {
        oid: fast,
        attr: "working_name".into(),
        value: Value::from("Fast-00"),
    }])
    .unwrap();
    assert!(
        !long_done.load(Ordering::SeqCst),
        "shard-1 batch should complete while the shard-0 batch is still running"
    );
    long_writer.join().unwrap();

    let (m, _) = c.stats().unwrap();
    assert_eq!(m.shards, 2);
    assert_eq!(m.per_shard.len(), 2);
    assert!(
        m.per_shard.iter().all(|s| s.lane_depth == 0),
        "lanes drain once the batches settle: {:?}",
        m.per_shard
    );
    // Both shards published snapshots — the work really spread.
    assert!(m.per_shard.iter().all(|s| s.snapshot_swaps > 0));
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A wire batch whose relationship spans shards becomes a 2PC unit, shows
/// up in the per-shard counters, and survives a server restart.
#[test]
fn cross_shard_wire_unit_runs_2pc_and_survives_restart() {
    let dir = tmp_dir("wire2pc");
    let handle = serve_sharded(&dir, 2, 0);
    let mut c = PrometheusClient::connect(handle.addr()).unwrap();
    let (a, b) = one_oid_per_shard(&mut c);

    let (_, storage_before) = c.stats().unwrap();
    let created = c
        .unit_batch(vec![MutationOp::CreateRelationship {
            class: "Circumscribes".into(),
            origin: a,
            destination: b,
            attrs: Vec::new(),
        }])
        .unwrap();
    assert!(
        !created[0].is_nil(),
        "relationship creation returns its OID"
    );

    let (m, storage_after) = c.stats().unwrap();
    assert!(
        storage_after.units_2pc > storage_before.units_2pc,
        "a relationship across shards must commit through 2PC \
         ({} -> {})",
        storage_before.units_2pc,
        storage_after.units_2pc
    );
    assert_eq!(
        m.per_shard.iter().map(|s| s.units_2pc).sum::<u64>(),
        storage_after.units_2pc,
        "per-shard 2PC counters sum to the aggregate"
    );
    let rows = c
        .query(
            "select u.working_name from CT t, CT u \
             where u in t -> Circumscribes order by u.working_name",
        )
        .unwrap();
    assert_eq!(rows.rows.len(), 1);
    handle.stop();

    // The decision record replays: the relationship is still there after a
    // cold reopen of the sharded store.
    let p = Prometheus::open_sharded(
        dir.join("store.log"),
        StoreOptions {
            sync_on_commit: false,
        },
        2,
    )
    .unwrap();
    let rels = p.db().rels_from(a, Some("Circumscribes")).unwrap();
    assert_eq!(rels.len(), 1);
    assert_eq!(rels[0].destination, b);
    drop(p);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A follower configured for the primary's shard count replays every
/// shard's log — including a cross-shard 2PC unit — and serves the same
/// answers.
#[test]
fn follower_converges_on_a_sharded_primary() {
    let dir = tmp_dir("follow");
    let handle = serve_sharded(&dir, 2, 0);
    let mut c = PrometheusClient::connect(handle.addr()).unwrap();
    let (a, b) = one_oid_per_shard(&mut c);
    c.unit_batch(vec![MutationOp::CreateRelationship {
        class: "Circumscribes".into(),
        origin: a,
        destination: b,
        attrs: Vec::new(),
    }])
    .unwrap();

    let fdir = tmp_dir("follow-replica");
    let mut config = FollowerConfig::new(handle.addr().to_string(), fdir.join("replica.log"));
    config.name = "sharded-follower".into();
    config.shards = 2;
    let follower = Follower::start(config).unwrap();
    assert!(
        follower.wait_caught_up(Duration::from_secs(30)),
        "follower catches up on both shard logs"
    );

    let pool = "select t.working_name from CT t order by t.working_name";
    let mut fc = PrometheusClient::connect(follower.addr()).unwrap();
    let on_follower = fc.query(pool).unwrap();
    let on_primary = c.query(pool).unwrap();
    assert_eq!(on_follower, on_primary, "replica answers match the primary");
    let via_rel = fc
        .query(
            "select u.working_name from CT t, CT u \
             where u in t -> Circumscribes order by u.working_name",
        )
        .unwrap();
    assert_eq!(via_rel.rows.len(), 1, "cross-shard unit replicated whole");

    follower.stop();
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&fdir);
}
