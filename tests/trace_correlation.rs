//! End-to-end distributed trace correlation (protocol v8).
//!
//! The tentpole contract: a unit written through the wire across multiple
//! shards is reconstructable — by trace id alone — into one span tree
//! containing the lane waits, the 2PC prepare votes and decision, and the
//! snapshot publishes from every participating shard; and when a follower
//! replays that unit, its replay spans carry the *same* 128-bit trace id
//! the primary's commit spans do, stitching one tree across processes.

use prometheus_db::{Prometheus, StoreOptions, Value};
use prometheus_replica::{Follower, FollowerConfig};
use prometheus_server::{
    serve, MutationOp, PrometheusClient, ServerConfig, ServerHandle, Stage, TraceId, TraceSpan,
};
use prometheus_storage::Oid;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "trace-corr-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn serve_sharded(dir: &Path, shards: usize) -> ServerHandle {
    let p = Prometheus::open_sharded(
        dir.join("store.log"),
        StoreOptions {
            sync_on_commit: false,
        },
        shards,
    )
    .unwrap();
    // Taxonomy schema but no ICBN rules: rule-free mutation batches keep
    // their narrow single-shard lane masks, so the unit below claims
    // exactly the shards its objects live on.
    p.taxonomy().unwrap();
    serve(
        p,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            shards,
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

/// Create CTs one singleton batch at a time (round-robin home placement)
/// until every one of `shards` shards holds at least one OID.
fn one_oid_per_shard(c: &mut PrometheusClient, shards: usize) -> Vec<Oid> {
    let mut by_shard: Vec<Option<Oid>> = vec![None; shards];
    for i in 0..(shards * 8) {
        let created = c
            .unit_batch(vec![MutationOp::CreateObject {
                class: "CT".into(),
                attrs: vec![
                    ("working_name".into(), Value::from(format!("Home-{i:02}"))),
                    ("rank".into(), Value::from("Genus")),
                ],
            }])
            .unwrap();
        let oid = created[0];
        by_shard[(oid.raw() % shards as u64) as usize].get_or_insert(oid);
        if by_shard.iter().all(Option::is_some) {
            break;
        }
    }
    by_shard
        .into_iter()
        .enumerate()
        .map(|(k, o)| o.unwrap_or_else(|| panic!("no creation homed on shard {k}")))
        .collect()
}

fn events_of(spans: &[TraceSpan], stage: Stage) -> Vec<&TraceSpan> {
    spans.iter().filter(|s| s.event.stage == stage).collect()
}

/// The acceptance-criteria test: one wire unit across all three shards of
/// a 3-shard server, reconstructed via `TraceGet` into a single tree with
/// lane-wait, per-participant 2PC prepare, the coordinator decision, and
/// publish spans — all under the id the client learned from the response
/// envelope.
#[test]
fn cross_shard_unit_reconstructs_one_span_tree() {
    const SHARDS: usize = 3;
    let dir = tmp_dir("2pc");
    let handle = serve_sharded(&dir, SHARDS);
    let mut c = PrometheusClient::connect(handle.addr()).unwrap();
    let homes = one_oid_per_shard(&mut c, SHARDS);

    // One unit touching an object on every shard: the claim mask covers
    // all three lanes and settlement goes through the 2PC prepare/decide
    // round. The server mints the trace id and echoes it on the envelope.
    let ops: Vec<MutationOp> = homes
        .iter()
        .enumerate()
        .map(|(k, &oid)| MutationOp::SetAttr {
            oid,
            attr: "working_name".into(),
            value: Value::from(format!("Spanning-{k}")),
        })
        .collect();
    c.unit_batch(ops).unwrap();
    let trace = c.last_trace_id();
    assert!(
        !trace.is_none(),
        "the response envelope carries the trace id"
    );

    let spans = c.trace_get(trace).unwrap();
    assert!(!spans.is_empty(), "TraceGet assembles the recorded tree");
    for s in &spans {
        assert_eq!(s.event.trace_id, trace, "one trace id across the tree");
        assert_eq!(s.origin, "primary");
    }
    // Spans arrive sorted by start time — a readable flame-graph order.
    for pair in spans.windows(2) {
        assert!(pair[0].event.start_us <= pair[1].event.start_us);
    }

    // The root request span and a real lane acquisition.
    assert!(!events_of(&spans, Stage::Request).is_empty());
    assert!(
        events_of(&spans, Stage::LaneWait)
            .iter()
            .any(|s| s.event.c1 == 1),
        "a real lane acquisition is spanned: {spans:?}"
    );
    // Every participating shard votes in the prepare round (c0 = shard
    // index), exactly one of them as coordinator (c1 = 1).
    let prepares = events_of(&spans, Stage::UnitPrepare);
    let mut voters: Vec<u64> = prepares.iter().map(|s| s.event.c0).collect();
    voters.sort_unstable();
    assert_eq!(voters, vec![0, 1, 2], "every shard voted: {prepares:?}");
    assert_eq!(
        prepares.iter().filter(|s| s.event.c1 == 1).count(),
        1,
        "exactly one coordinator"
    );
    // One committed decision naming all participants.
    let decisions = events_of(&spans, Stage::UnitDecide);
    assert_eq!(decisions.len(), 1, "one decision record: {decisions:?}");
    assert_eq!(decisions[0].event.c0, SHARDS as u64);
    assert_eq!(decisions[0].event.c1, 1, "the unit committed");
    // Publication of the settled unit is spanned under the same trace.
    assert!(
        !events_of(&spans, Stage::Publish).is_empty(),
        "snapshot publish is part of the tree: {spans:?}"
    );

    // A second, read-only request gets its own fresh trace.
    c.query("select t from CT t").unwrap();
    let read_trace = c.last_trace_id();
    assert!(!read_trace.is_none());
    assert_ne!(read_trace, trace, "each request gets its own trace id");

    c.close().unwrap();
    handle.stop();
}

/// A client-stamped trace id wins over minting: the server adopts it,
/// records the whole execution under it, and echoes it back.
#[test]
fn client_stamped_trace_id_is_adopted() {
    let dir = tmp_dir("stamp");
    let handle = serve_sharded(&dir, 1);
    let mut c = PrometheusClient::connect(handle.addr()).unwrap();

    let stamped = TraceId::from_words(0xDEAD_BEEF_0000_0001, 0xCAFE_F00D_0000_0002);
    c.set_trace(stamped);
    c.query("select t from CT t").unwrap();
    assert_eq!(c.last_trace_id(), stamped, "the envelope echoes our id");

    let spans = c.trace_get(stamped).unwrap();
    assert!(
        !events_of(&spans, Stage::Request).is_empty(),
        "the request ran under the stamped id: {spans:?}"
    );
    // Clearing the stamp returns to server-minted ids.
    c.set_trace(TraceId::NONE);
    c.query("select t from CT t").unwrap();
    let minted = c.last_trace_id();
    assert!(!minted.is_none());
    assert_ne!(minted, stamped);

    c.close().unwrap();
    handle.stop();
}

/// Round-trip of the trace id through the redo log: a follower replaying a
/// unit records its `replica_apply` span under the primary's trace id, so
/// `TraceGet` against the follower merges local replay spans with the
/// primary's commit spans into one distributed tree.
#[test]
fn follower_replay_spans_carry_the_primary_trace() {
    let dir = tmp_dir("replay");
    let handle = serve_sharded(&dir, 1);
    let mut c = PrometheusClient::connect(handle.addr()).unwrap();

    let mut config = FollowerConfig::new(handle.addr().to_string(), tmp_dir("replay-f").join("f"));
    config.name = "trace-follower".into();
    let follower = Follower::start(config).unwrap();
    assert!(follower.wait_caught_up(Duration::from_secs(10)));

    c.unit_batch(vec![MutationOp::CreateObject {
        class: "CT".into(),
        attrs: vec![
            ("working_name".into(), Value::from("Replayed")),
            ("rank".into(), Value::from("Genus")),
        ],
    }])
    .unwrap();
    let trace = c.last_trace_id();
    assert!(!trace.is_none());
    assert!(
        follower.wait_caught_up(Duration::from_secs(10)),
        "follower never replayed the unit"
    );

    // Ask the *follower* for the tree: it merges its own replay spans with
    // the primary's, fetched over the replica connection.
    let mut fc = PrometheusClient::connect(follower.addr()).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let spans = loop {
        let spans = fc.trace_get(trace).unwrap();
        let has_replay = spans
            .iter()
            .any(|s| s.origin == "replica" && s.event.stage == Stage::ReplicaApply);
        if has_replay || std::time::Instant::now() > deadline {
            break spans;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    let replays: Vec<_> = spans
        .iter()
        .filter(|s| s.origin == "replica" && s.event.stage == Stage::ReplicaApply)
        .collect();
    assert!(
        !replays.is_empty(),
        "follower replay is spanned under the primary's trace id: {spans:?}"
    );
    for r in &replays {
        assert_eq!(r.event.trace_id, trace);
    }
    // The merged tree also contains the primary's side of the story.
    assert!(
        spans
            .iter()
            .any(|s| s.origin == "primary" && s.event.stage == Stage::Commit),
        "primary commit spans merged into the follower's answer: {spans:?}"
    );

    fc.close().unwrap();
    c.close().unwrap();
    follower.stop();
    handle.stop();
}
