//! Durability integration tests: a taxonomic database survives close/reopen
//! and torn-log crashes with schema, data, indexes, classifications, rules
//! and synonyms intact.

use prometheus_db::{Prometheus, Rank, Rule, StoreOptions, TypeKind, Value};
use prometheus_taxonomy::dataset::{random_flora, FloraParams};
use std::io::Write;

fn tmp(name: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!(
        "crash-{name}-{}-{:?}.log",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn full_state_survives_reopen() {
    let path = tmp("reopen");
    let flora_species;
    let cls_name;
    {
        let p = Prometheus::open_with(
            &path,
            StoreOptions {
                sync_on_commit: false,
            },
        )
        .unwrap();
        let tax = p.taxonomy().unwrap();
        let flora = random_flora(&tax, &FloraParams::default(), 99).unwrap();
        flora_species = flora.species.len();
        cls_name = flora.classification.name(tax.db()).unwrap();
        // A rule, a synonym, a view.
        p.rules()
            .add_rule(Rule::invariant(
                "keep",
                "CT",
                "self.working_name != null",
                "m",
            ))
            .unwrap();
        p.rules().save_to(tax.db()).unwrap();
        tax.db()
            .declare_synonym(flora.specimens[0], flora.specimens[1])
            .unwrap();
        // Ensure everything is flushed: reopen relies on commit-time flush
        // (sync_on_commit=false still writes; only fsync is skipped).
    }
    let p = Prometheus::open_with(
        &path,
        StoreOptions {
            sync_on_commit: false,
        },
    )
    .unwrap();
    let tax = p.taxonomy().unwrap();
    let db = tax.db();
    // Schema survived (install is idempotent and found it).
    assert!(db.with_schema(|s| s.class("CT").is_some()));
    // Data and indexes.
    assert_eq!(
        db.extent("CT", false).unwrap().len(),
        FloraParams::default().taxon_count()
    );
    let cls = db
        .classification_by_name(&cls_name)
        .unwrap()
        .expect("classification");
    let handle = prometheus_db::Classification::from_oid(cls);
    assert_eq!(
        handle.leaves(db).unwrap().len(),
        FloraParams::default().specimen_count(),
        "classification membership survived"
    );
    let _ = flora_species;
    // Rules reloaded on engine install.
    assert!(p.rules().rules().iter().any(|r| r.name == "keep"));
    // Synonyms.
    let specimens = db.extent("Specimen", false).unwrap();
    assert!(
        db.same_instance(specimens[0], specimens[1]) || {
            // extent order is not creation order; check any synonym pair exists
            specimens.iter().any(|&a| db.synonym_set(a).len() > 1)
        }
    );
}

#[test]
fn torn_tail_is_discarded_but_committed_state_survives() {
    let path = tmp("torn");
    let ct;
    {
        let p = Prometheus::open_with(
            &path,
            StoreOptions {
                sync_on_commit: true,
            },
        )
        .unwrap();
        let tax = p.taxonomy().unwrap();
        ct = tax.create_ct("Survivor", Rank::Genus).unwrap();
    }
    // Simulate a crash mid-append: garbage at the end of the log.
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(&[0x13, 0x00, 0x00]).unwrap();
    }
    let p = Prometheus::open_with(
        &path,
        StoreOptions {
            sync_on_commit: true,
        },
    )
    .unwrap();
    let tax = p.taxonomy().unwrap();
    assert_eq!(tax.name_of(ct).unwrap(), "Survivor");
    // The database remains writable after recovery truncated the tail.
    let ct2 = tax.create_ct("PostCrash", Rank::Genus).unwrap();
    assert!(tax.db().exists(ct2));
}

#[test]
fn compaction_preserves_taxonomic_state() {
    let path = tmp("compact");
    let p = Prometheus::open_with(
        &path,
        StoreOptions {
            sync_on_commit: false,
        },
    )
    .unwrap();
    let tax = p.taxonomy().unwrap();
    let db = tax.db().clone();
    // Churn: repeatedly rename a CT so the log accumulates garbage.
    let ct = tax.create_ct("Churn", Rank::Genus).unwrap();
    for i in 0..100 {
        db.set_attr(ct, "working_name", format!("Churn-{i}"))
            .unwrap();
    }
    let before = std::fs::metadata(&path).unwrap().len();
    db.store().compact().unwrap();
    let after = std::fs::metadata(&path).unwrap().len();
    assert!(after < before);
    assert_eq!(tax.name_of(ct).unwrap(), "Churn-99");
    // Index still works after compaction.
    assert_eq!(
        db.find_by_attr("CT", "working_name", &Value::from("Churn-99"))
            .unwrap(),
        vec![ct]
    );
    drop(p);
    // And after reopen.
    let p = Prometheus::open_with(
        &path,
        StoreOptions {
            sync_on_commit: false,
        },
    )
    .unwrap();
    let tax = p.taxonomy().unwrap();
    assert_eq!(tax.name_of(ct).unwrap(), "Churn-99");
}

#[test]
fn aborted_units_leave_no_trace_after_reopen() {
    let path = tmp("aborted");
    {
        let p = Prometheus::open_with(
            &path,
            StoreOptions {
                sync_on_commit: false,
            },
        )
        .unwrap();
        let tax = p.taxonomy().unwrap();
        let db = tax.db().clone();
        let committed = tax.create_ct("Committed", Rank::Genus).unwrap();
        let token = db.begin_unit();
        let _doomed = tax.create_ct("Doomed", Rank::Genus).unwrap();
        let s = tax.create_specimen("doomed-spec").unwrap();
        let nt = tax.create_nt("Doomed", Rank::Genus, 1999, "X.").unwrap();
        tax.typify(nt, s, TypeKind::Holotype).unwrap();
        db.abort_unit(token);
        assert!(db.exists(committed));
    }
    let p = Prometheus::open_with(
        &path,
        StoreOptions {
            sync_on_commit: false,
        },
    )
    .unwrap();
    let r = p.query("select t.working_name from CT t").unwrap();
    assert_eq!(r.first_column(), vec![Value::from("Committed")]);
    assert!(p.query("select n from NT n").unwrap().is_empty());
    assert!(p.query("select s from Specimen s").unwrap().is_empty());
}

#[test]
fn every_log_truncation_point_recovers_cleanly() {
    // Crash-anywhere robustness: whatever prefix of the log survives a
    // crash, opening the store must succeed and yield a consistent state
    // (some prefix of the committed history).
    let path = tmp("truncate-sweep");
    {
        let p = Prometheus::open_with(
            &path,
            StoreOptions {
                sync_on_commit: false,
            },
        )
        .unwrap();
        let tax = p.taxonomy().unwrap();
        for i in 0..10 {
            let ct = tax.create_ct(&format!("T{i}"), Rank::Genus).unwrap();
            let s = tax.create_specimen(&format!("S{i}")).unwrap();
            let _ = (ct, s);
        }
    }
    let full = std::fs::read(&path).unwrap();
    let step = (full.len() / 23).max(1);
    let scratch = tmp("truncate-scratch");
    let mut last_ct_count = 0usize;
    for cut in (0..=full.len()).step_by(step) {
        std::fs::write(&scratch, &full[..cut]).unwrap();
        let p = Prometheus::open_with(
            &scratch,
            StoreOptions {
                sync_on_commit: false,
            },
        )
        .unwrap_or_else(|e| panic!("open failed at truncation {cut}: {e}"));
        // Consistency: every surviving CT is intact and indexed.
        let schema_ready = p.db().with_schema(|s| s.class("CT").is_some());
        if !schema_ready {
            continue; // truncated before the schema write — empty database
        }
        let cts = p.db().extent("CT", false).unwrap();
        for oid in &cts {
            let obj = p.db().object(*oid).unwrap();
            let name = obj.attr("working_name");
            assert!(
                p.db()
                    .find_by_attr("CT", "working_name", &name)
                    .unwrap()
                    .contains(oid),
                "index out of sync at truncation {cut}"
            );
        }
        // Monotonicity: longer prefixes never lose earlier commits.
        assert!(
            cts.len() >= last_ct_count,
            "history regressed at truncation {cut}"
        );
        last_ct_count = cts.len();
    }
    assert_eq!(last_ct_count, 10, "the full log must recover everything");
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(scratch);
}
