//! # prometheus-replica — log-shipping read replicas for Prometheus
//!
//! The thesis (§2.4) frames Prometheus as a multi-user taxonomic database;
//! the wire layer (`prometheus-server`) already lets many taxonomists share
//! one primary. This crate adds the missing scale-out half: **read
//! replicas** that replay the primary's redo log and serve the same POOL
//! query surface, so browse-heavy workloads (the common case for a published
//! flora) fan out across machines while every write still funnels through
//! the primary's single writer lane.
//!
//! ## How replication works
//!
//! The redo log *is* the replication stream — there is no second format.
//! A [`Follower`] runs a puller thread that cursors over the primary's
//! committed log with `Request::ReplicaPoll { epoch, offset, … }`:
//!
//! * The first poll from offset 0 streams the compacted prefix — the
//!   checkpoint — and then the live tail; there is no separate snapshot
//!   transfer.
//! * Frames are appended to the follower's own log verbatim (the codec is
//!   deterministic, so the two logs stay **byte-identical** and the
//!   follower's local log length is the cursor), then replayed through the
//!   same group-buffering state machine crash recovery uses: a unit's
//!   frames are buffered and only published when its `UnitEnd` seals it, so
//!   readers on the follower never observe half a unit.
//! * The primary stamps every answer with its **log epoch**, bumped by
//!   compaction. An epoch change (or a cursor that no longer falls on a
//!   frame boundary, e.g. after a crash un-wrote unsynced bytes) makes the
//!   primary answer `ReplicaReset`: the follower discards its state and
//!   resyncs from offset 0 — conservative, simple, and always correct.
//!
//! The follower serves queries through the ordinary server with
//! [`ServerConfig::replica`] set: mutating verbs get a typed
//! `read-only-replica` error naming the primary, and `ReplicaStatus`
//! reports the puller's live progress (applied offset, primary horizon,
//! staleness age, resync count).
//!
//! ## Routing
//!
//! [`RoutedClient`] gives applications one endpoint view over a primary
//! plus followers. Reads declare their staleness budget via
//! [`Consistency`]: `Strong` pins to the primary; `Stale(max)` may be
//! served by any follower that was observed fully caught up within `max`
//! — and, after this client has written, only by a follower that caught up
//! *after* that write (read-your-writes).

use prometheus_db::{Database, Prometheus, StoreOptions};
use prometheus_server::client::PollOutcome;
use prometheus_server::protocol::ReplicaStatusInfo;
use prometheus_server::{
    serve, ClientConfig, ErrorKind, MutationOp, PrometheusClient, ReplicaInfo, ReplicaStatusCell,
    ServerConfig, ServerError, ServerHandle, ServerResult, WireRows,
};
use prometheus_storage::{Oid, ShardedStore};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Everything needed to run one read replica.
#[derive(Debug, Clone)]
pub struct FollowerConfig {
    /// Address of the primary, as dialled by the puller (and named in the
    /// `read-only-replica` error clients get for writes).
    pub primary: String,
    /// Path of the follower's own redo log (a byte-wise replica of the
    /// primary's; safe to delete — the follower resyncs from scratch).
    pub path: PathBuf,
    /// Bind address for the follower's read-only server (port 0 for
    /// ephemeral).
    pub addr: String,
    /// Follower name reported in polls; keys the primary's per-follower
    /// lag gauges, so give each follower a distinct one.
    pub name: String,
    /// How long to sleep when fully caught up before polling again. Bounds
    /// the follower's idle staleness; while behind, the puller polls
    /// continuously.
    pub poll_interval: Duration,
    /// Soft cap on redo bytes per poll answer (one oversized frame still
    /// comes through whole).
    pub max_batch_bytes: u64,
    /// Worker threads for the read-only server.
    pub workers: usize,
    /// Whether the follower fsyncs applied batches. Defaults off: the
    /// primary's log is the durable copy, and a crashed follower rebuilds
    /// from it.
    pub sync_on_commit: bool,
    /// Shard count — **must match the primary's**. The puller cursors each
    /// shard's log independently (the wire poll names a shard since
    /// protocol v7), keeping every local shard log byte-identical to its
    /// primary counterpart.
    pub shards: usize,
}

impl FollowerConfig {
    /// Sensible defaults for a follower of `primary` storing at `path`.
    pub fn new(primary: impl Into<String>, path: impl Into<PathBuf>) -> FollowerConfig {
        FollowerConfig {
            primary: primary.into(),
            path: path.into(),
            addr: "127.0.0.1:0".into(),
            name: "follower".into(),
            poll_interval: Duration::from_millis(20),
            max_batch_bytes: 1 << 20,
            workers: 4,
            sync_on_commit: false,
            shards: 1,
        }
    }
}

/// A running read replica: a replay puller plus a read-only server.
pub struct Follower;

impl Follower {
    /// Open (or create) the local replica store, start the read-only server
    /// and the puller thread. Returns once the server is bound — the
    /// replica serves (possibly stale) reads immediately while catching up.
    pub fn start(config: FollowerConfig) -> ServerResult<FollowerHandle> {
        // Follower-mode open: a crash-left prepared 2PC tail stays in-doubt
        // locally — the primary's own resolution frames arrive through the
        // replicated stream, keeping the shard logs byte-identical.
        let db = Prometheus::open_follower(
            &config.path,
            StoreOptions {
                sync_on_commit: config.sync_on_commit,
            },
            config.shards.max(1),
        )
        .map_err(|e| ServerError::Connect(format!("open replica store: {e}")))?;
        let store = Arc::clone(db.db().store());
        let database = Arc::clone(db.db());
        let status = Arc::new(ReplicaStatusCell::default());
        let server = serve(
            db,
            ServerConfig {
                addr: config.addr.clone(),
                workers: config.workers,
                shards: config.shards.max(1),
                replica: Some(ReplicaInfo {
                    primary: config.primary.clone(),
                    status: Arc::clone(&status),
                }),
                ..ServerConfig::default()
            },
        )?;
        let stop = Arc::new(AtomicBool::new(false));
        let puller = {
            let stop = Arc::clone(&stop);
            let status = Arc::clone(&status);
            thread::Builder::new()
                .name(format!("prometheus-puller-{}", config.name))
                .spawn(move || pull_loop(config, store, database, status, stop))?
        };
        Ok(FollowerHandle {
            addr: server.addr(),
            status,
            stop,
            puller: Some(puller),
            server: Some(server),
        })
    }
}

/// Handle to a running [`Follower`]; stops both threads on drop.
pub struct FollowerHandle {
    addr: SocketAddr,
    status: Arc<ReplicaStatusCell>,
    stop: Arc<AtomicBool>,
    puller: Option<thread::JoinHandle<()>>,
    server: Option<ServerHandle>,
}

impl FollowerHandle {
    /// Bound address of the read-only server.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live replication progress (shared with the server's `ReplicaStatus`).
    pub fn status(&self) -> &Arc<ReplicaStatusCell> {
        &self.status
    }

    /// Block until the follower has polled the primary at least once and
    /// observed itself fully caught up; `false` on timeout. Catch-up is a
    /// moving target under live writes — this is a test/benchmark aid, not
    /// a consistency barrier.
    pub fn wait_caught_up(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.status.polls() > 0 && self.status.lag_bytes() == 0 {
                return true;
            }
            thread::sleep(Duration::from_millis(2));
        }
        false
    }

    /// Stop the puller and the server, and join both.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(puller) = self.puller.take() {
            let _ = puller.join();
        }
        if let Some(server) = self.server.take() {
            server.stop();
        }
    }
}

impl Drop for FollowerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The puller: connect to the primary (forever, with backoff), cursor over
/// each shard's committed log, apply frames locally, repeat. A shard's
/// cursor is the follower's own shard-log length — no separate progress
/// file to keep honest. The status cell aggregates across shards (applied
/// and horizon bytes summed), so lag and catch-up read exactly like the
/// single-shard case.
fn pull_loop(
    config: FollowerConfig,
    store: Arc<ShardedStore>,
    db: Arc<Database>,
    status: Arc<ReplicaStatusCell>,
    stop: Arc<AtomicBool>,
) {
    let nshards = store.shard_count();
    // Per-shard epochs under which the local log bytes were pulled. Not
    // persisted: a restarted follower starts at 0 and the primary's first
    // answer either matches (that shard never compacted) or forces one
    // clean resync.
    let mut epochs = vec![0u64; nshards];
    // The primary's committed length per shard, as of the last poll that
    // answered for it — the aggregate horizon for lag accounting.
    let mut horizons = vec![0u64; nshards];
    while !stop.load(Ordering::SeqCst) {
        let client = PrometheusClient::connect_with(
            parse_addr(&config.primary),
            ClientConfig {
                connect_retries: 0,
                client_name: format!("replica:{}", config.name),
                ..ClientConfig::default()
            },
        );
        let Ok(mut client) = client else {
            // Primary unreachable: keep the replica serving its last state,
            // retry after a beat. Staleness age keeps growing meanwhile,
            // which is what routing needs to see.
            sleep_unless_stopped(&stop, config.poll_interval);
            continue;
        };
        'connected: while !stop.load(Ordering::SeqCst) {
            // One sweep: poll every shard once, then report aggregate
            // progress. While any shard has a backlog the sweep repeats
            // immediately; fully drained, the puller eases off.
            let mut caught_up = true;
            for shard in 0..nshards {
                let member = store.shard(shard);
                let offset = member.committed_log_len();
                match client.replica_poll(
                    &config.name,
                    shard as u32,
                    epochs[shard],
                    offset,
                    config.max_batch_bytes,
                ) {
                    Ok(PollOutcome::Frames {
                        epoch: e,
                        frames,
                        next_offset,
                        log_len,
                    }) => {
                        epochs[shard] = e;
                        horizons[shard] = log_len;
                        if !frames.is_empty() {
                            caught_up = false;
                            match member.apply_replicated(&frames) {
                                Ok(summary) => {
                                    if db.refresh_replicated(&summary).is_err() {
                                        // Cache refresh failing means local
                                        // meta no longer decodes — resync
                                        // from zero.
                                        resync(&store, &db, &status, &mut horizons);
                                        continue 'connected;
                                    }
                                }
                                Err(_) => {
                                    resync(&store, &db, &status, &mut horizons);
                                    continue 'connected;
                                }
                            }
                        }
                        let applied = member.committed_log_len();
                        if applied < log_len {
                            caught_up = false;
                        }
                        debug_assert!(
                            frames.is_empty() || applied == next_offset,
                            "replayed shard log must stay byte-aligned with the primary"
                        );
                    }
                    Ok(PollOutcome::Reset {
                        epoch: e,
                        log_len: _,
                    }) => {
                        // Any shard diverging discards *all* local state:
                        // cross-shard units settle with records on several
                        // shard logs, so per-shard partial resync could
                        // tear a committed unit apart.
                        epochs[shard] = e;
                        resync(&store, &db, &status, &mut horizons);
                        continue 'connected;
                    }
                    Err(e) if e.is_fatal() => break 'connected, // reconnect
                    Err(ServerError::Remote {
                        kind: ErrorKind::ShuttingDown,
                        ..
                    }) => break 'connected,
                    Err(_) => {
                        // Non-fatal remote hiccup: back off and re-poll on
                        // the same connection.
                        sleep_unless_stopped(&stop, config.poll_interval);
                        continue 'connected;
                    }
                }
            }
            let applied: u64 = (0..nshards)
                .map(|k| store.shard(k).committed_log_len())
                .sum();
            status.record_progress(epochs[0], applied, horizons.iter().sum());
            if caught_up {
                // Caught up on every shard: ease off the primary.
                sleep_unless_stopped(&stop, config.poll_interval);
            }
        }
    }
}

/// Discard all local replica state — every shard — and count the resync;
/// the next sweep starts every cursor over from offset 0.
fn resync(store: &ShardedStore, db: &Database, status: &ReplicaStatusCell, horizons: &mut [u64]) {
    for k in 0..store.shard_count() {
        if store.shard(k).reset_to_empty().is_err() {
            return;
        }
    }
    horizons.fill(0);
    let _ = db.refresh_all();
    status.record_resync();
}

fn sleep_unless_stopped(stop: &AtomicBool, d: Duration) {
    let deadline = Instant::now() + d;
    while !stop.load(Ordering::SeqCst) && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(2).min(d));
    }
}

fn parse_addr(addr: &str) -> SocketAddr {
    addr.parse()
        .unwrap_or_else(|_| SocketAddr::from(([127, 0, 0, 1], 0)))
}

/// How fresh a routed read must be; see [`RoutedClient::query`].
#[derive(Debug, Clone, Copy)]
pub enum Consistency {
    /// Serve from the primary: always current, never scales out.
    Strong,
    /// May be served by a follower observed fully caught up within the
    /// given budget (and after this client's last write). Falls back to the
    /// primary when no follower qualifies.
    Stale(Duration),
}

/// Which endpoint served the last routed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    Primary,
    Follower(usize),
}

/// One logical connection over a primary plus its read replicas.
///
/// Writes always go to the primary. Reads carry a [`Consistency`]: strong
/// reads pin to the primary; staleness-tolerant reads round-robin across
/// followers whose catch-up age fits the budget, falling back to the
/// primary when none does. After any write through this client, followers
/// are only eligible once observed caught up *after* the write instant, so
/// a session never fails to read its own writes.
pub struct RoutedClient {
    primary: PrometheusClient,
    followers: Vec<PrometheusClient>,
    rr: usize,
    last_write: Option<Instant>,
    last_route: Route,
}

impl RoutedClient {
    /// Connect to the primary and every follower.
    pub fn connect(primary: SocketAddr, followers: &[SocketAddr]) -> ServerResult<RoutedClient> {
        let primary = PrometheusClient::connect(primary)?;
        let followers = followers
            .iter()
            .map(|addr| PrometheusClient::connect(*addr))
            .collect::<ServerResult<Vec<_>>>()?;
        Ok(RoutedClient {
            primary,
            followers,
            rr: 0,
            last_write: None,
            last_route: Route::Primary,
        })
    }

    /// Run a POOL query under the given consistency.
    pub fn query(&mut self, pool: &str, consistency: Consistency) -> ServerResult<WireRows> {
        let route = match consistency {
            Consistency::Strong => Route::Primary,
            Consistency::Stale(budget) => match self.pick_follower(budget) {
                Some(i) => Route::Follower(i),
                None => Route::Primary,
            },
        };
        self.last_route = route;
        match route {
            Route::Primary => self.primary.query(pool),
            Route::Follower(i) => self.followers[i].query(pool),
        }
    }

    /// Which endpoint the last [`RoutedClient::query`] used.
    pub fn last_route(&self) -> Route {
        self.last_route
    }

    /// Run one atomic unit of work on the primary; counts as a write for
    /// read-your-writes routing.
    pub fn unit_batch(&mut self, ops: Vec<MutationOp>) -> ServerResult<Vec<Oid>> {
        let created = self.primary.unit_batch(ops)?;
        self.note_write();
        Ok(created)
    }

    /// Install PCL rules on the primary; counts as a write.
    pub fn install_pcl(&mut self, source: &str) -> ServerResult<usize> {
        let rules = self.primary.install_pcl(source)?;
        self.note_write();
        Ok(rules)
    }

    /// Set (or clear) the classification context on every endpoint, so a
    /// later query reads the same scope wherever it routes.
    pub fn set_context(&mut self, classification: Option<&str>) -> ServerResult<()> {
        self.primary.set_context(classification)?;
        for follower in &mut self.followers {
            follower.set_context(classification)?;
        }
        Ok(())
    }

    /// Direct access to the primary connection (streamed units, stats,
    /// compaction…). After writing through it, call
    /// [`RoutedClient::note_write`] to keep read-your-writes routing honest.
    pub fn primary(&mut self) -> &mut PrometheusClient {
        &mut self.primary
    }

    /// Replication status of follower `i`.
    pub fn follower_status(&mut self, i: usize) -> ServerResult<ReplicaStatusInfo> {
        self.followers[i].replica_status()
    }

    /// Record that this client just wrote: stale reads stay pinned to the
    /// primary until a follower is observed caught up after this instant.
    pub fn note_write(&mut self) {
        self.last_write = Some(Instant::now());
    }

    /// Close every connection politely.
    pub fn close(mut self) -> ServerResult<()> {
        for follower in self.followers.drain(..) {
            follower.close()?;
        }
        self.primary.close()
    }

    /// Round-robin scan for a follower whose last observed full catch-up is
    /// within `budget` — and newer than this client's last write.
    fn pick_follower(&mut self, budget: Duration) -> Option<usize> {
        let n = self.followers.len();
        for step in 0..n {
            let i = (self.rr + step) % n;
            let Ok(status) = self.followers[i].replica_status() else {
                continue;
            };
            let age = Duration::from_micros(status.caught_up_age_us);
            if age > budget {
                continue;
            }
            if let Some(write) = self.last_write {
                match Instant::now().checked_sub(age) {
                    Some(caught_up_at) if caught_up_at > write => {}
                    _ => continue, // caught up before (or unknown): not RYW-safe
                }
            }
            self.rr = (i + 1) % n;
            return Some(i);
        }
        None
    }
}
