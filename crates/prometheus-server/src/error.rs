//! Typed errors for the wire layer, shared by server and client.

use std::fmt;

/// Result alias used throughout the server crate.
pub type ServerResult<T> = Result<T, ServerError>;

/// Machine-readable classification of an error reported *over the wire*
/// (inside [`crate::protocol::Response::Error`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ErrorKind {
    /// Malformed or out-of-order request (bad handshake, unit misuse, …).
    Protocol,
    /// The database rejected the operation (schema, rule, not-found, …).
    Db,
    /// The server is draining connections and no longer accepts work.
    ShuttingDown,
    /// A streamed unit of work sat silent past the server's idle deadline
    /// and was rolled back so the writer lane could serve other sessions.
    UnitTimedOut,
    /// The handshake carried a protocol version the server does not speak;
    /// the message names both versions.
    ProtocolMismatch,
    /// The server is a read-only replication follower; the message names the
    /// primary that accepts writes.
    ReadOnlyReplica,
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorKind::Protocol => write!(f, "protocol"),
            ErrorKind::Db => write!(f, "db"),
            ErrorKind::ShuttingDown => write!(f, "shutting-down"),
            ErrorKind::UnitTimedOut => write!(f, "unit-timed-out"),
            ErrorKind::ProtocolMismatch => write!(f, "protocol-mismatch"),
            ErrorKind::ReadOnlyReplica => write!(f, "read-only-replica"),
        }
    }
}

/// Errors raised by the framed transport, the client, or the server runtime.
#[derive(Debug)]
pub enum ServerError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// A frame failed its CRC, exceeded the size guard, or was torn.
    Frame(String),
    /// A payload did not decode as the expected message type.
    Codec(String),
    /// The peer closed the connection cleanly between frames.
    Disconnected,
    /// The peer violated the request/response protocol locally (e.g. the
    /// server answered with an unexpected variant).
    Protocol(String),
    /// The server reported an error for a request.
    Remote { kind: ErrorKind, message: String },
    /// Connecting (with retries) did not succeed in time.
    Connect(String),
    /// A [`crate::ServerConfig`] failed validation (builder `build()` or
    /// `serve` rejecting a combination the platform cannot run).
    Config(String),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "wire I/O error: {e}"),
            ServerError::Frame(m) => write!(f, "frame error: {m}"),
            ServerError::Codec(m) => write!(f, "wire codec error: {m}"),
            ServerError::Disconnected => write!(f, "peer disconnected"),
            ServerError::Protocol(m) => write!(f, "protocol violation: {m}"),
            ServerError::Remote { kind, message } => {
                write!(f, "server error ({kind}): {message}")
            }
            ServerError::Connect(m) => write!(f, "connect failed: {m}"),
            ServerError::Config(m) => write!(f, "invalid server config: {m}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<prometheus_storage::StorageError> for ServerError {
    fn from(e: prometheus_storage::StorageError) -> Self {
        ServerError::Codec(e.to_string())
    }
}

impl ServerError {
    /// Whether this error means the session is over (socket gone) rather
    /// than a per-request failure.
    pub fn is_fatal(&self) -> bool {
        matches!(
            self,
            ServerError::Io(_) | ServerError::Frame(_) | ServerError::Disconnected
        )
    }
}
