//! The server's slow-query log.
//!
//! Every wire query slower than [`crate::ServerConfig::slow_query_threshold`]
//! is appended here: the query text, the session's classification context,
//! the plan fingerprint (correlate with `EXPLAIN`/`PROFILE` output and other
//! log entries), the trace id of the request's span tree in the trace ring,
//! and the measured wall-clock. The log is a bounded ring: the newest
//! [`SlowLog::capacity`] entries win, so a misbehaving workload cannot grow
//! server memory. Clients fetch entries with `Request::SlowLog`.

use prometheus_trace::TraceId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Mutex;

/// Default bound on retained slow-query entries.
pub const DEFAULT_SLOW_LOG_CAPACITY: usize = 128;

/// One slow query, as captured server-side and shipped over the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlowLogEntry {
    /// Session that ran the query.
    pub session: u64,
    /// The query text as received (including an `explain`/`profile` verb).
    pub query: String,
    /// The session's classification context at execution time.
    pub context: Option<String>,
    /// Trace id of the request's span tree — feed it to
    /// `Request::TraceGet` (or look it up in the trace ring via
    /// `Request::Trace`) while the ring still holds those spans.
    pub trace_id: TraceId,
    /// Fingerprint of the plan that ran (0 when the query bypassed the plan
    /// cache, i.e. ran unpinned inside a unit of work).
    pub fingerprint: u64,
    /// Wall-clock from request dispatch to result, µs.
    pub dur_us: u64,
    /// Rows returned.
    pub rows: u64,
    /// Whether the query ran against a pinned snapshot (out-of-unit) or the
    /// live database (inside a unit of work).
    pub pinned: bool,
    /// Writer-lane shard mask the request claimed before executing (bit k =
    /// shard k's lane; 0 = lock-free snapshot read). Distinguishes lane
    /// contention from execution cost.
    pub lane_mask: u64,
    /// Total µs the request spent queued on writer lanes before running.
    pub lane_wait_us: u64,
}

/// Bounded, newest-wins log of [`SlowLogEntry`]. A plain mutex is fine: the
/// log is touched only by queries that already burned more than the slow
/// threshold, never on the general hot path.
#[derive(Debug)]
pub struct SlowLog {
    entries: Mutex<VecDeque<SlowLogEntry>>,
    capacity: usize,
}

impl SlowLog {
    /// A log retaining at most `capacity` entries (clamped to at least 1).
    pub fn new(capacity: usize) -> SlowLog {
        SlowLog {
            entries: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// Maximum retained entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append one entry, evicting the oldest when full.
    pub fn push(&self, entry: SlowLogEntry) {
        let mut entries = self.lock();
        if entries.len() == self.capacity {
            entries.pop_front();
        }
        entries.push_back(entry);
    }

    /// The newest `n` entries, oldest first.
    pub fn recent(&self, n: usize) -> Vec<SlowLogEntry> {
        let entries = self.lock();
        let skip = entries.len().saturating_sub(n);
        entries.iter().skip(skip).cloned().collect()
    }

    /// Entries currently retained.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<SlowLogEntry>> {
        // Entries are plain data; a panicking pusher cannot corrupt them.
        self.entries.lock().unwrap_or_else(|p| p.into_inner())
    }
}

impl Default for SlowLog {
    fn default() -> Self {
        SlowLog::new(DEFAULT_SLOW_LOG_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(n: u64) -> SlowLogEntry {
        SlowLogEntry {
            session: n,
            query: format!("select t from CT t -- {n}"),
            context: None,
            trace_id: TraceId::from_words(1, n),
            fingerprint: 0xfeed,
            dur_us: 1_000 + n,
            rows: 2,
            pinned: true,
            lane_mask: 0b11,
            lane_wait_us: 40 + n,
        }
    }

    #[test]
    fn bounded_and_newest_wins() {
        let log = SlowLog::new(3);
        for n in 0..5 {
            log.push(entry(n));
        }
        assert_eq!(log.len(), 3);
        let recent = log.recent(10);
        let sessions: Vec<u64> = recent.iter().map(|e| e.session).collect();
        assert_eq!(sessions, vec![2, 3, 4]);
        // recent(n) trims to the newest n, oldest first.
        let last_two: Vec<u64> = log.recent(2).iter().map(|e| e.session).collect();
        assert_eq!(last_two, vec![3, 4]);
    }

    #[test]
    fn entries_round_trip_through_the_codec() {
        let e = entry(7);
        let bytes = prometheus_storage::codec::to_bytes(&e).unwrap();
        let back: SlowLogEntry = prometheus_storage::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, e);
    }
}
