//! A minimal epoll shim for the event-driven server.
//!
//! The workspace vendors no I/O-reactor crate (no `mio`, no `libc`), but the
//! event loop only needs four syscalls — `epoll_create1`, `epoll_ctl`,
//! `epoll_wait` and `eventfd` — all exported by the C library every Linux
//! Rust binary already links. This module declares them directly and wraps
//! the file descriptors in `OwnedFd` so nothing leaks.
//!
//! The shim is deliberately small and **level-triggered + one-shot**: every
//! registration uses `EPOLLONESHOT`, so after a readiness event fires the
//! descriptor stays registered but silent until some thread re-arms it with
//! [`Poller::rearm`]. That is the concurrency discipline the server builds
//! on — at most one worker processes a connection at a time, with no
//! edge-trigger starvation corner cases to reason about.
//!
//! Only compiled on Linux (`cfg(target_os = "linux")` in `lib.rs`); on other
//! platforms [`crate::ServerConfig::io_threads`] is rejected at
//! serve time and the blocking path remains available.

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::os::raw::{c_int, c_uint};

/// Readiness: data to read (or a peer hang-up, which also wakes readers).
pub const EV_READ: u32 = EPOLLIN | EPOLLRDHUP;
/// Readiness: socket writable again after a short write.
pub const EV_WRITE: u32 = EPOLLOUT;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLLONESHOT: u32 = 1 << 30;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// Mirror of the kernel's `struct epoll_event`. Packed on x86-64 (the one
/// ABI where the kernel declares it packed); natural layout elsewhere.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct RawEpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut RawEpollEvent) -> c_int;
    fn epoll_wait(
        epfd: c_int,
        events: *mut RawEpollEvent,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
    fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// One readiness event: the registration token plus what happened. `error`
/// folds in `EPOLLERR`/`EPOLLHUP`/`EPOLLRDHUP` — all of them mean "read
/// until EOF/error and tear down", which is what a reader does anyway.
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    pub error: bool,
}

/// A one-shot, level-triggered epoll instance.
#[derive(Debug)]
pub struct Poller {
    epfd: OwnedFd,
}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poller {
            epfd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = RawEpollEvent {
            events,
            data: token,
        };
        cvt(unsafe { epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) })?;
        Ok(())
    }

    /// Register `fd` one-shot for `interest` ([`EV_READ`] and/or
    /// [`EV_WRITE`]); the token comes back in the matching [`PollEvent`].
    pub fn register(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest | EPOLLONESHOT, token)
    }

    /// Re-arm an already-registered `fd` after its one-shot event fired (or
    /// to change its interest set). Safe to call from any thread — this is
    /// how workers hand a connection back to the loop.
    pub fn rearm(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest | EPOLLONESHOT, token)
    }

    /// Remove `fd` from the poller (idempotent at teardown: a missing fd is
    /// not an error worth surfacing).
    pub fn deregister(&self, fd: RawFd) {
        let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Block up to `timeout_ms` (`-1` = forever) for readiness events,
    /// appending them to `out`. Returns the number of events delivered.
    pub fn wait(&self, out: &mut Vec<PollEvent>, timeout_ms: i32) -> io::Result<usize> {
        const CAPACITY: usize = 256;
        let mut raw = [RawEpollEvent { events: 0, data: 0 }; CAPACITY];
        let n = loop {
            let ret = unsafe {
                epoll_wait(
                    self.epfd.as_raw_fd(),
                    raw.as_mut_ptr(),
                    CAPACITY as c_int,
                    timeout_ms,
                )
            };
            if ret >= 0 {
                break ret as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for ev in &raw[..n] {
            let bits = ev.events;
            out.push(PollEvent {
                token: ev.data,
                readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                writable: bits & EPOLLOUT != 0,
                error: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
            });
        }
        Ok(n)
    }
}

/// A cross-thread wake-up for the event loop, built on `eventfd`. Cloneable
/// and cheap: [`Waker::wake`] writes one counter increment, the loop drains
/// it and rechecks its control state.
#[derive(Debug, Clone)]
pub struct Waker {
    fd: std::sync::Arc<OwnedFd>,
}

impl Waker {
    pub fn new() -> io::Result<Waker> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(Waker {
            fd: std::sync::Arc::new(unsafe { OwnedFd::from_raw_fd(fd) }),
        })
    }

    /// The fd to register with the [`Poller`] (readable when woken).
    pub fn as_raw_fd(&self) -> RawFd {
        self.fd.as_raw_fd()
    }

    /// Wake the loop. Never blocks: the eventfd is a saturating counter.
    pub fn wake(&self) {
        let one: u64 = 1;
        let _ = unsafe { write(self.fd.as_raw_fd(), one.to_ne_bytes().as_ptr(), 8) };
    }

    /// Consume pending wake-ups so the (level-triggered) fd goes quiet.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        let _ = unsafe { read(self.fd.as_raw_fd(), buf.as_mut_ptr(), 8) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn waker_wakes_and_drains() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.register(waker.as_raw_fd(), 7, EV_READ).unwrap();
        let mut events = Vec::new();
        // Nothing yet: a zero timeout returns empty.
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);
        waker.wake();
        assert_eq!(poller.wait(&mut events, 1000).unwrap(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        waker.drain();
        // One-shot: silent until re-armed, even though it was drained.
        events.clear();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);
        waker.wake();
        poller.rearm(waker.as_raw_fd(), 7, EV_READ).unwrap();
        assert_eq!(poller.wait(&mut events, 1000).unwrap(), 1);
    }

    #[test]
    fn socket_readiness_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.register(rx.as_raw_fd(), 42, EV_READ).unwrap();
        let mut events = Vec::new();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0, "no data yet");
        tx.write_all(b"hi").unwrap();
        assert_eq!(poller.wait(&mut events, 2000).unwrap(), 1);
        assert_eq!(events[0].token, 42);
        assert!(events[0].readable && !events[0].error);
        // Peer close after re-arm surfaces as readable+error (RDHUP).
        drop(tx);
        poller.rearm(rx.as_raw_fd(), 42, EV_READ).unwrap();
        events.clear();
        assert_eq!(poller.wait(&mut events, 2000).unwrap(), 1);
        assert!(events[0].readable && events[0].error);
        poller.deregister(rx.as_raw_fd());
    }
}
