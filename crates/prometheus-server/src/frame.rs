//! Framed transport: length-prefixed, CRC-protected binary frames.
//!
//! The wire frame deliberately mirrors the redo-log frame of
//! `prometheus_storage::log` so the whole system speaks one envelope format:
//!
//! ```text
//! +----------------+----------------+------------------+
//! | len: u32 LE    | crc32: u32 LE  | payload (len B)  |
//! +----------------+----------------+------------------+
//! ```
//!
//! The payload is a [`crate::protocol`] message encoded with
//! `prometheus_storage::codec`. As in the log reader, a maximum frame length
//! guards against a corrupted (or hostile) length word committing us to a
//! gigabyte-sized read.

use crate::error::{ServerError, ServerResult};
use prometheus_storage::codec;
use prometheus_storage::crc::crc32;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::io::{Read, Write};

/// Maximum payload the reader accepts — same guard idea as the redo log's
/// `MAX_FRAME_LEN`, sized for query results rather than log records.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Encode `msg` and write it as one frame.
pub fn write_msg<W: Write, T: Serialize>(w: &mut W, msg: &T) -> ServerResult<()> {
    let payload = codec::to_bytes(msg)?;
    if payload.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(ServerError::Frame(format!(
            "message of {} bytes exceeds maximum frame size",
            payload.len()
        )));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&crc32(&payload).to_le_bytes())?;
    w.write_all(&payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame and decode it as a `T`.
///
/// A clean EOF *between* frames maps to [`ServerError::Disconnected`]; EOF
/// inside a frame (a torn header or payload) is a [`ServerError::Frame`].
pub fn read_msg<R: Read, T: DeserializeOwned>(r: &mut R) -> ServerResult<T> {
    let mut header = [0u8; 8];
    read_exact_or_disconnect(r, &mut header, true)?;
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
    let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if len > MAX_FRAME_LEN {
        return Err(ServerError::Frame(format!(
            "declared frame length {len} exceeds maximum {MAX_FRAME_LEN}"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_or_disconnect(r, &mut payload, false)?;
    if crc32(&payload) != crc {
        return Err(ServerError::Frame("frame failed CRC check".into()));
    }
    codec::from_bytes(&payload).map_err(|e| ServerError::Codec(e.to_string()))
}

/// Incremental, sans-io frame decoder: feed it bytes in whatever chunks the
/// transport produces and pull complete messages out.
///
/// The blocking [`read_msg`] owns its socket and can simply block for the
/// rest of a frame; an event-driven server cannot — a readiness loop hands
/// it arbitrary slices (often one syscall's worth, sometimes a single byte)
/// and needs to know whether a whole frame has arrived yet. `FrameDecoder`
/// buffers input across calls and applies exactly the same validation as
/// `read_msg`: the [`MAX_FRAME_LEN`] guard against hostile length words and
/// the CRC check over the payload. Decode results are therefore identical to
/// the blocking reader's for any split of the byte stream (property-tested
/// in `tests/frame_streaming.rs`).
///
/// ```
/// use prometheus_server::{FrameDecoder, Request};
/// use prometheus_server::frame::write_msg;
///
/// let mut wire: Vec<u8> = Vec::new();
/// write_msg(&mut wire, &Request::Ping).unwrap();
/// write_msg(&mut wire, &Request::Stats).unwrap();
///
/// let mut dec = FrameDecoder::new();
/// let (head, tail) = wire.split_at(3); // arbitrary split mid-header
/// dec.extend(head);
/// assert!(dec.next_msg::<Request>().unwrap().is_none()); // incomplete
/// dec.extend(tail);
/// assert_eq!(dec.next_msg::<Request>().unwrap(), Some(Request::Ping));
/// assert_eq!(dec.next_msg::<Request>().unwrap(), Some(Request::Stats));
/// assert!(dec.at_boundary()); // clean EOF here would be a polite close
/// ```
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted lazily so `next` is O(frame), not
    /// O(buffer), even when many frames arrive in one read.
    start: usize,
}

impl FrameDecoder {
    /// An empty decoder, positioned at a frame boundary.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Append transport bytes to the internal buffer.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Reclaim the consumed prefix before growing: the buffer never holds
        // more than one partial frame plus whatever arrived with it.
        if self.start > 0 && (self.start == self.buf.len() || self.start >= 4096) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Decode the next complete frame, if one is buffered.
    ///
    /// `Ok(None)` means more bytes are needed. Errors mirror [`read_msg`]:
    /// an oversized length word or CRC mismatch is a fatal
    /// [`ServerError::Frame`] / [`ServerError::Codec`] — the stream is
    /// desynchronised and the connection must close.
    pub fn next_msg<T: DeserializeOwned>(&mut self) -> ServerResult<Option<T>> {
        let avail = &self.buf[self.start..];
        if avail.len() < 8 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[0..4].try_into().unwrap());
        let crc = u32::from_le_bytes(avail[4..8].try_into().unwrap());
        if len > MAX_FRAME_LEN {
            return Err(ServerError::Frame(format!(
                "declared frame length {len} exceeds maximum {MAX_FRAME_LEN}"
            )));
        }
        let total = 8 + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let payload = &avail[8..total];
        if crc32(payload) != crc {
            return Err(ServerError::Frame("frame failed CRC check".into()));
        }
        let msg = codec::from_bytes(payload).map_err(|e| ServerError::Codec(e.to_string()))?;
        self.start += total;
        Ok(Some(msg))
    }

    /// Whether the buffer sits exactly at a frame boundary — an EOF here is
    /// a polite close ([`ServerError::Disconnected`] in the blocking
    /// reader's taxonomy), while an EOF mid-frame is a torn frame.
    pub fn at_boundary(&self) -> bool {
        self.start == self.buf.len()
    }

    /// Bytes buffered but not yet consumed by a decoded frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }
}

/// Incremental, sans-io frame encoder: queue messages, then drain the byte
/// buffer as fast as the transport accepts it.
///
/// The blocking [`write_msg`] writes and flushes in one call; an
/// event-driven writer may manage only a partial write before the socket
/// reports `WouldBlock`, and must keep the rest for the next writability
/// event. `FrameEncoder` is that carry-over buffer: [`FrameEncoder::push`]
/// frames a message exactly as `write_msg` does (same envelope, same
/// [`MAX_FRAME_LEN`] refusal), [`FrameEncoder::pending`] exposes what still
/// has to go out, and [`FrameEncoder::consume`] records transport progress.
///
/// ```
/// use prometheus_server::{FrameEncoder, Response};
///
/// let mut enc = FrameEncoder::new();
/// enc.push(&Response::Pong).unwrap();
/// let n = enc.pending().len(); // pretend the socket took every byte
/// enc.consume(n);
/// assert!(enc.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct FrameEncoder {
    buf: Vec<u8>,
    start: usize,
}

impl FrameEncoder {
    /// An empty encoder.
    pub fn new() -> FrameEncoder {
        FrameEncoder::default()
    }

    /// Frame `msg` and queue its bytes for the transport.
    pub fn push<T: Serialize>(&mut self, msg: &T) -> ServerResult<()> {
        let payload = codec::to_bytes(msg)?;
        if payload.len() as u64 > MAX_FRAME_LEN as u64 {
            return Err(ServerError::Frame(format!(
                "message of {} bytes exceeds maximum frame size",
                payload.len()
            )));
        }
        if self.start > 0 && self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&crc32(&payload).to_le_bytes());
        self.buf.extend_from_slice(&payload);
        Ok(())
    }

    /// Bytes queued but not yet taken by the transport.
    pub fn pending(&self) -> &[u8] {
        &self.buf[self.start..]
    }

    /// Record that the transport accepted the first `n` pending bytes.
    pub fn consume(&mut self, n: usize) {
        self.start += n.min(self.buf.len() - self.start);
        if self.start == self.buf.len() && self.start >= 4096 {
            self.buf.clear();
            self.start = 0;
        }
    }

    /// Whether everything queued has been handed to the transport.
    pub fn is_empty(&self) -> bool {
        self.start == self.buf.len()
    }
}

/// `read_exact` that distinguishes a clean close (no bytes read, and we are
/// at a frame boundary) from a torn frame.
fn read_exact_or_disconnect<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    at_boundary: bool,
) -> ServerResult<()> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if at_boundary && filled == 0 {
                    ServerError::Disconnected
                } else {
                    ServerError::Frame("connection closed mid-frame".into())
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ServerError::Io(e)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Request, Response};

    #[test]
    fn frames_round_trip_through_a_buffer() {
        let mut buf: Vec<u8> = Vec::new();
        let req = Request::Query {
            pool: "select t from CT t".into(),
        };
        write_msg(&mut buf, &req).unwrap();
        let back: Request = read_msg(&mut &buf[..]).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn several_frames_stream_in_order() {
        let mut buf: Vec<u8> = Vec::new();
        write_msg(&mut buf, &Request::Ping).unwrap();
        write_msg(&mut buf, &Request::Stats).unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_msg::<_, Request>(&mut cursor).unwrap(), Request::Ping);
        assert_eq!(read_msg::<_, Request>(&mut cursor).unwrap(), Request::Stats);
        assert!(matches!(
            read_msg::<_, Request>(&mut cursor),
            Err(ServerError::Disconnected)
        ));
    }

    #[test]
    fn corrupt_payload_fails_crc() {
        let mut buf: Vec<u8> = Vec::new();
        write_msg(&mut buf, &Response::Pong).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        assert!(matches!(
            read_msg::<_, Response>(&mut &buf[..]),
            Err(ServerError::Frame(_))
        ));
    }

    #[test]
    fn oversized_length_word_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            read_msg::<_, Request>(&mut &buf[..]),
            Err(ServerError::Frame(_))
        ));
    }

    #[test]
    fn decoder_assembles_frames_from_single_bytes() {
        let mut wire: Vec<u8> = Vec::new();
        let req = Request::Query {
            pool: "select t from CT t".into(),
        };
        write_msg(&mut wire, &req).unwrap();
        write_msg(&mut wire, &Request::Ping).unwrap();
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for b in &wire {
            dec.extend(std::slice::from_ref(b));
            while let Some(msg) = dec.next_msg::<Request>().unwrap() {
                out.push(msg);
            }
        }
        assert_eq!(out, vec![req, Request::Ping]);
        assert!(dec.at_boundary());
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn decoder_rejects_oversized_and_corrupt_frames() {
        let mut dec = FrameDecoder::new();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        dec.extend(&bytes);
        assert!(matches!(
            dec.next_msg::<Request>(),
            Err(ServerError::Frame(_))
        ));

        let mut wire: Vec<u8> = Vec::new();
        write_msg(&mut wire, &Response::Pong).unwrap();
        let last = wire.len() - 1;
        wire[last] ^= 0xFF;
        let mut dec = FrameDecoder::new();
        dec.extend(&wire);
        assert!(matches!(
            dec.next_msg::<Response>(),
            Err(ServerError::Frame(_))
        ));
    }

    #[test]
    fn encoder_output_matches_write_msg_and_survives_partial_drains() {
        let msgs = vec![Request::Ping, Request::Stats, Request::UnitBegin];
        let mut blocking: Vec<u8> = Vec::new();
        let mut enc = FrameEncoder::new();
        for m in &msgs {
            write_msg(&mut blocking, m).unwrap();
            enc.push(m).unwrap();
        }
        // Drain in awkward chunk sizes; the byte stream must be identical.
        let mut drained = Vec::new();
        while !enc.is_empty() {
            let take = enc.pending().len().min(5);
            drained.extend_from_slice(&enc.pending()[..take]);
            enc.consume(take);
        }
        assert_eq!(drained, blocking);
    }

    #[test]
    fn torn_frame_is_not_a_clean_disconnect() {
        let mut buf: Vec<u8> = Vec::new();
        write_msg(&mut buf, &Request::Ping).unwrap();
        let torn = &buf[..buf.len() - 1];
        assert!(matches!(
            read_msg::<_, Request>(&mut &torn[..]),
            Err(ServerError::Frame(_))
        ));
    }
}
