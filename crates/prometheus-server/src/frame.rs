//! Framed transport: length-prefixed, CRC-protected binary frames.
//!
//! The wire frame deliberately mirrors the redo-log frame of
//! `prometheus_storage::log` so the whole system speaks one envelope format:
//!
//! ```text
//! +----------------+----------------+------------------+
//! | len: u32 LE    | crc32: u32 LE  | payload (len B)  |
//! +----------------+----------------+------------------+
//! ```
//!
//! The payload is a [`crate::protocol`] message encoded with
//! `prometheus_storage::codec`. As in the log reader, a maximum frame length
//! guards against a corrupted (or hostile) length word committing us to a
//! gigabyte-sized read.

use crate::error::{ServerError, ServerResult};
use prometheus_storage::codec;
use prometheus_storage::crc::crc32;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::io::{Read, Write};

/// Maximum payload the reader accepts — same guard idea as the redo log's
/// `MAX_FRAME_LEN`, sized for query results rather than log records.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Encode `msg` and write it as one frame.
pub fn write_msg<W: Write, T: Serialize>(w: &mut W, msg: &T) -> ServerResult<()> {
    let payload = codec::to_bytes(msg)?;
    if payload.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(ServerError::Frame(format!(
            "message of {} bytes exceeds maximum frame size",
            payload.len()
        )));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&crc32(&payload).to_le_bytes())?;
    w.write_all(&payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame and decode it as a `T`.
///
/// A clean EOF *between* frames maps to [`ServerError::Disconnected`]; EOF
/// inside a frame (a torn header or payload) is a [`ServerError::Frame`].
pub fn read_msg<R: Read, T: DeserializeOwned>(r: &mut R) -> ServerResult<T> {
    let mut header = [0u8; 8];
    read_exact_or_disconnect(r, &mut header, true)?;
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
    let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if len > MAX_FRAME_LEN {
        return Err(ServerError::Frame(format!(
            "declared frame length {len} exceeds maximum {MAX_FRAME_LEN}"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_or_disconnect(r, &mut payload, false)?;
    if crc32(&payload) != crc {
        return Err(ServerError::Frame("frame failed CRC check".into()));
    }
    codec::from_bytes(&payload).map_err(|e| ServerError::Codec(e.to_string()))
}

/// `read_exact` that distinguishes a clean close (no bytes read, and we are
/// at a frame boundary) from a torn frame.
fn read_exact_or_disconnect<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    at_boundary: bool,
) -> ServerResult<()> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if at_boundary && filled == 0 {
                    ServerError::Disconnected
                } else {
                    ServerError::Frame("connection closed mid-frame".into())
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ServerError::Io(e)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Request, Response};

    #[test]
    fn frames_round_trip_through_a_buffer() {
        let mut buf: Vec<u8> = Vec::new();
        let req = Request::Query {
            pool: "select t from CT t".into(),
        };
        write_msg(&mut buf, &req).unwrap();
        let back: Request = read_msg(&mut &buf[..]).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn several_frames_stream_in_order() {
        let mut buf: Vec<u8> = Vec::new();
        write_msg(&mut buf, &Request::Ping).unwrap();
        write_msg(&mut buf, &Request::Stats).unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_msg::<_, Request>(&mut cursor).unwrap(), Request::Ping);
        assert_eq!(read_msg::<_, Request>(&mut cursor).unwrap(), Request::Stats);
        assert!(matches!(
            read_msg::<_, Request>(&mut cursor),
            Err(ServerError::Disconnected)
        ));
    }

    #[test]
    fn corrupt_payload_fails_crc() {
        let mut buf: Vec<u8> = Vec::new();
        write_msg(&mut buf, &Response::Pong).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        assert!(matches!(
            read_msg::<_, Response>(&mut &buf[..]),
            Err(ServerError::Frame(_))
        ));
    }

    #[test]
    fn oversized_length_word_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            read_msg::<_, Request>(&mut &buf[..]),
            Err(ServerError::Frame(_))
        ));
    }

    #[test]
    fn torn_frame_is_not_a_clean_disconnect() {
        let mut buf: Vec<u8> = Vec::new();
        write_msg(&mut buf, &Request::Ping).unwrap();
        let torn = &buf[..buf.len() - 1];
        assert!(matches!(
            read_msg::<_, Request>(&mut &torn[..]),
            Err(ServerError::Frame(_))
        ));
    }
}
