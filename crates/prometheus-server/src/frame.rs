//! Framed transport: length-prefixed, CRC-protected binary frames.
//!
//! The wire frame deliberately mirrors the redo-log frame of
//! `prometheus_storage::log` so the whole system speaks one envelope format;
//! since protocol v8 the body opens with a fixed 128-bit trace id so every
//! request and response carries its distributed trace context without
//! touching the message payloads:
//!
//! ```text
//! +-------------+---------------+----------------+----------------+------------------+
//! | len: u32 LE | crc32: u32 LE | trace_hi: u64  | trace_lo: u64  | payload          |
//! +-------------+---------------+----------------+----------------+------------------+
//! |             |               |<------------- len bytes, CRC-protected ----------->|
//! ```
//!
//! `len` counts the trace words plus the payload (so it is always ≥ 16) and
//! the CRC covers both — a flipped trace bit is caught exactly like a
//! flipped payload bit. An all-zero trace id is [`TraceId::NONE`]: "no
//! trace context" (a client that doesn't care, or tracing disabled).
//!
//! The payload is a [`crate::protocol`] message encoded with
//! `prometheus_storage::codec`. As in the log reader, a maximum frame length
//! guards against a corrupted (or hostile) length word committing us to a
//! gigabyte-sized read.

use crate::error::{ServerError, ServerResult};
use prometheus_storage::codec;
use prometheus_storage::crc::crc32;
use prometheus_trace::TraceId;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::io::{Read, Write};

/// Maximum body (trace words + payload) the reader accepts — same guard
/// idea as the redo log's `MAX_FRAME_LEN`, sized for query results rather
/// than log records.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Bytes of trace context at the head of every frame body.
const TRACE_BYTES: usize = 16;

/// Frame `msg` under `trace` into `out` (shared by the blocking writer and
/// the sans-io encoder so the two transports cannot drift).
fn frame_into<T: Serialize>(out: &mut Vec<u8>, trace: TraceId, msg: &T) -> ServerResult<()> {
    let payload = codec::to_bytes(msg)?;
    let body_len = TRACE_BYTES as u64 + payload.len() as u64;
    if body_len > MAX_FRAME_LEN as u64 {
        return Err(ServerError::Frame(format!(
            "message of {} bytes exceeds maximum frame size",
            payload.len()
        )));
    }
    let mut body = Vec::with_capacity(body_len as usize);
    body.extend_from_slice(&trace.hi.to_le_bytes());
    body.extend_from_slice(&trace.lo.to_le_bytes());
    body.extend_from_slice(&payload);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    Ok(())
}

/// Split a CRC-verified frame body into its trace id and payload.
fn split_body(body: &[u8]) -> ServerResult<(TraceId, &[u8])> {
    if body.len() < TRACE_BYTES {
        return Err(ServerError::Frame(format!(
            "frame body of {} bytes is shorter than the trace envelope",
            body.len()
        )));
    }
    let hi = u64::from_le_bytes(body[0..8].try_into().unwrap());
    let lo = u64::from_le_bytes(body[8..16].try_into().unwrap());
    Ok((TraceId::from_words(hi, lo), &body[TRACE_BYTES..]))
}

/// Encode `msg` and write it as one frame stamped with `trace`
/// ([`TraceId::NONE`] for "no trace context").
pub fn write_msg<W: Write, T: Serialize>(w: &mut W, trace: TraceId, msg: &T) -> ServerResult<()> {
    let mut frame = Vec::new();
    frame_into(&mut frame, trace, msg)?;
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Read one frame and decode it as its trace id plus a `T`.
///
/// A clean EOF *between* frames maps to [`ServerError::Disconnected`]; EOF
/// inside a frame (a torn header or payload) is a [`ServerError::Frame`].
pub fn read_msg<R: Read, T: DeserializeOwned>(r: &mut R) -> ServerResult<(TraceId, T)> {
    let mut header = [0u8; 8];
    read_exact_or_disconnect(r, &mut header, true)?;
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
    let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if len > MAX_FRAME_LEN {
        return Err(ServerError::Frame(format!(
            "declared frame length {len} exceeds maximum {MAX_FRAME_LEN}"
        )));
    }
    let mut body = vec![0u8; len as usize];
    read_exact_or_disconnect(r, &mut body, false)?;
    if crc32(&body) != crc {
        return Err(ServerError::Frame("frame failed CRC check".into()));
    }
    let (trace, payload) = split_body(&body)?;
    let msg = codec::from_bytes(payload).map_err(|e| ServerError::Codec(e.to_string()))?;
    Ok((trace, msg))
}

/// Incremental, sans-io frame decoder: feed it bytes in whatever chunks the
/// transport produces and pull complete messages out.
///
/// The blocking [`read_msg`] owns its socket and can simply block for the
/// rest of a frame; an event-driven server cannot — a readiness loop hands
/// it arbitrary slices (often one syscall's worth, sometimes a single byte)
/// and needs to know whether a whole frame has arrived yet. `FrameDecoder`
/// buffers input across calls and applies exactly the same validation as
/// `read_msg`: the [`MAX_FRAME_LEN`] guard against hostile length words and
/// the CRC check over the body. Decode results are therefore identical to
/// the blocking reader's for any split of the byte stream (property-tested
/// in `tests/frame_streaming.rs`).
///
/// ```
/// use prometheus_server::{FrameDecoder, Request};
/// use prometheus_server::frame::write_msg;
/// use prometheus_trace::TraceId;
///
/// let mut wire: Vec<u8> = Vec::new();
/// write_msg(&mut wire, TraceId::NONE, &Request::Ping).unwrap();
/// write_msg(&mut wire, TraceId::from_words(0, 7), &Request::Stats).unwrap();
///
/// let mut dec = FrameDecoder::new();
/// let (head, tail) = wire.split_at(3); // arbitrary split mid-header
/// dec.extend(head);
/// assert!(dec.next_msg::<Request>().unwrap().is_none()); // incomplete
/// dec.extend(tail);
/// assert_eq!(
///     dec.next_msg::<Request>().unwrap(),
///     Some((TraceId::NONE, Request::Ping))
/// );
/// assert_eq!(
///     dec.next_msg::<Request>().unwrap(),
///     Some((TraceId::from_words(0, 7), Request::Stats))
/// );
/// assert!(dec.at_boundary()); // clean EOF here would be a polite close
/// ```
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted lazily so `next` is O(frame), not
    /// O(buffer), even when many frames arrive in one read.
    start: usize,
}

impl FrameDecoder {
    /// An empty decoder, positioned at a frame boundary.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Append transport bytes to the internal buffer.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Reclaim the consumed prefix before growing: the buffer never holds
        // more than one partial frame plus whatever arrived with it.
        if self.start > 0 && (self.start == self.buf.len() || self.start >= 4096) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Decode the next complete frame, if one is buffered, as its trace id
    /// plus the message.
    ///
    /// `Ok(None)` means more bytes are needed. Errors mirror [`read_msg`]:
    /// an oversized length word or CRC mismatch is a fatal
    /// [`ServerError::Frame`] / [`ServerError::Codec`] — the stream is
    /// desynchronised and the connection must close.
    pub fn next_msg<T: DeserializeOwned>(&mut self) -> ServerResult<Option<(TraceId, T)>> {
        let avail = &self.buf[self.start..];
        if avail.len() < 8 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[0..4].try_into().unwrap());
        let crc = u32::from_le_bytes(avail[4..8].try_into().unwrap());
        if len > MAX_FRAME_LEN {
            return Err(ServerError::Frame(format!(
                "declared frame length {len} exceeds maximum {MAX_FRAME_LEN}"
            )));
        }
        let total = 8 + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let body = &avail[8..total];
        if crc32(body) != crc {
            return Err(ServerError::Frame("frame failed CRC check".into()));
        }
        let (trace, payload) = split_body(body)?;
        let msg = codec::from_bytes(payload).map_err(|e| ServerError::Codec(e.to_string()))?;
        self.start += total;
        Ok(Some((trace, msg)))
    }

    /// Whether the buffer sits exactly at a frame boundary — an EOF here is
    /// a polite close ([`ServerError::Disconnected`] in the blocking
    /// reader's taxonomy), while an EOF mid-frame is a torn frame.
    pub fn at_boundary(&self) -> bool {
        self.start == self.buf.len()
    }

    /// Bytes buffered but not yet consumed by a decoded frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }
}

/// Incremental, sans-io frame encoder: queue messages, then drain the byte
/// buffer as fast as the transport accepts it.
///
/// The blocking [`write_msg`] writes and flushes in one call; an
/// event-driven writer may manage only a partial write before the socket
/// reports `WouldBlock`, and must keep the rest for the next writability
/// event. `FrameEncoder` is that carry-over buffer: [`FrameEncoder::push`]
/// frames a message exactly as `write_msg` does (same envelope, same
/// [`MAX_FRAME_LEN`] refusal), [`FrameEncoder::pending`] exposes what still
/// has to go out, and [`FrameEncoder::consume`] records transport progress.
///
/// ```
/// use prometheus_server::{FrameEncoder, Response};
/// use prometheus_trace::TraceId;
///
/// let mut enc = FrameEncoder::new();
/// enc.push(TraceId::NONE, &Response::Pong).unwrap();
/// let n = enc.pending().len(); // pretend the socket took every byte
/// enc.consume(n);
/// assert!(enc.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct FrameEncoder {
    buf: Vec<u8>,
    start: usize,
}

impl FrameEncoder {
    /// An empty encoder.
    pub fn new() -> FrameEncoder {
        FrameEncoder::default()
    }

    /// Frame `msg` under `trace` and queue its bytes for the transport.
    pub fn push<T: Serialize>(&mut self, trace: TraceId, msg: &T) -> ServerResult<()> {
        if self.start > 0 && self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        frame_into(&mut self.buf, trace, msg)
    }

    /// Bytes queued but not yet taken by the transport.
    pub fn pending(&self) -> &[u8] {
        &self.buf[self.start..]
    }

    /// Record that the transport accepted the first `n` pending bytes.
    pub fn consume(&mut self, n: usize) {
        self.start += n.min(self.buf.len() - self.start);
        if self.start == self.buf.len() && self.start >= 4096 {
            self.buf.clear();
            self.start = 0;
        }
    }

    /// Whether everything queued has been handed to the transport.
    pub fn is_empty(&self) -> bool {
        self.start == self.buf.len()
    }
}

/// `read_exact` that distinguishes a clean close (no bytes read, and we are
/// at a frame boundary) from a torn frame.
fn read_exact_or_disconnect<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    at_boundary: bool,
) -> ServerResult<()> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if at_boundary && filled == 0 {
                    ServerError::Disconnected
                } else {
                    ServerError::Frame("connection closed mid-frame".into())
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ServerError::Io(e)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Request, Response};

    const T7: TraceId = TraceId::from_words(3, 7);

    #[test]
    fn frames_round_trip_through_a_buffer() {
        let mut buf: Vec<u8> = Vec::new();
        let req = Request::Query {
            pool: "select t from CT t".into(),
        };
        write_msg(&mut buf, T7, &req).unwrap();
        let (trace, back): (TraceId, Request) = read_msg(&mut &buf[..]).unwrap();
        assert_eq!(back, req);
        assert_eq!(trace, T7);
    }

    #[test]
    fn several_frames_stream_in_order() {
        let mut buf: Vec<u8> = Vec::new();
        write_msg(&mut buf, TraceId::NONE, &Request::Ping).unwrap();
        write_msg(&mut buf, T7, &Request::Stats).unwrap();
        let mut cursor = &buf[..];
        assert_eq!(
            read_msg::<_, Request>(&mut cursor).unwrap(),
            (TraceId::NONE, Request::Ping)
        );
        assert_eq!(
            read_msg::<_, Request>(&mut cursor).unwrap(),
            (T7, Request::Stats)
        );
        assert!(matches!(
            read_msg::<_, Request>(&mut cursor),
            Err(ServerError::Disconnected)
        ));
    }

    #[test]
    fn corrupt_payload_fails_crc() {
        let mut buf: Vec<u8> = Vec::new();
        write_msg(&mut buf, T7, &Response::Pong).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        assert!(matches!(
            read_msg::<_, Response>(&mut &buf[..]),
            Err(ServerError::Frame(_))
        ));
    }

    #[test]
    fn corrupt_trace_word_fails_crc() {
        let mut buf: Vec<u8> = Vec::new();
        write_msg(&mut buf, T7, &Response::Pong).unwrap();
        buf[9] ^= 0xFF; // second byte of trace_hi
        assert!(matches!(
            read_msg::<_, Response>(&mut &buf[..]),
            Err(ServerError::Frame(_))
        ));
    }

    #[test]
    fn body_shorter_than_the_trace_envelope_is_rejected() {
        // A well-formed pre-v8 frame (no trace words) now fails cleanly.
        let payload = prometheus_storage::codec::to_bytes(&Request::Ping).unwrap();
        let mut buf = Vec::new();
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
        assert!(matches!(
            read_msg::<_, Request>(&mut &buf[..]),
            Err(ServerError::Frame(_))
        ));
    }

    #[test]
    fn oversized_length_word_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            read_msg::<_, Request>(&mut &buf[..]),
            Err(ServerError::Frame(_))
        ));
    }

    #[test]
    fn decoder_assembles_frames_from_single_bytes() {
        let mut wire: Vec<u8> = Vec::new();
        let req = Request::Query {
            pool: "select t from CT t".into(),
        };
        write_msg(&mut wire, T7, &req).unwrap();
        write_msg(&mut wire, TraceId::NONE, &Request::Ping).unwrap();
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for b in &wire {
            dec.extend(std::slice::from_ref(b));
            while let Some(msg) = dec.next_msg::<Request>().unwrap() {
                out.push(msg);
            }
        }
        assert_eq!(out, vec![(T7, req), (TraceId::NONE, Request::Ping)]);
        assert!(dec.at_boundary());
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn decoder_rejects_oversized_and_corrupt_frames() {
        let mut dec = FrameDecoder::new();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        dec.extend(&bytes);
        assert!(matches!(
            dec.next_msg::<Request>(),
            Err(ServerError::Frame(_))
        ));

        let mut wire: Vec<u8> = Vec::new();
        write_msg(&mut wire, T7, &Response::Pong).unwrap();
        let last = wire.len() - 1;
        wire[last] ^= 0xFF;
        let mut dec = FrameDecoder::new();
        dec.extend(&wire);
        assert!(matches!(
            dec.next_msg::<Response>(),
            Err(ServerError::Frame(_))
        ));
    }

    #[test]
    fn encoder_output_matches_write_msg_and_survives_partial_drains() {
        let msgs = vec![
            (TraceId::NONE, Request::Ping),
            (T7, Request::Stats),
            (TraceId::from_words(u64::MAX, 1), Request::UnitBegin),
        ];
        let mut blocking: Vec<u8> = Vec::new();
        let mut enc = FrameEncoder::new();
        for (trace, m) in &msgs {
            write_msg(&mut blocking, *trace, m).unwrap();
            enc.push(*trace, m).unwrap();
        }
        // Drain in awkward chunk sizes; the byte stream must be identical.
        let mut drained = Vec::new();
        while !enc.is_empty() {
            let take = enc.pending().len().min(5);
            drained.extend_from_slice(&enc.pending()[..take]);
            enc.consume(take);
        }
        assert_eq!(drained, blocking);
    }

    #[test]
    fn torn_frame_is_not_a_clean_disconnect() {
        let mut buf: Vec<u8> = Vec::new();
        write_msg(&mut buf, T7, &Request::Ping).unwrap();
        let torn = &buf[..buf.len() - 1];
        assert!(matches!(
            read_msg::<_, Request>(&mut &torn[..]),
            Err(ServerError::Frame(_))
        ));
    }
}
