//! A fair FIFO writer lane.
//!
//! `std::sync::Mutex` makes no fairness guarantee: under contention a thread
//! that just released the lock can immediately re-acquire it (barging),
//! starving a session that has been queued for a long streamed unit. The
//! writer lane is the server's single point of mutual exclusion for
//! mutations, so barging there translates directly into unbounded tail
//! latency for whichever client drew the short straw.
//!
//! [`TicketLane`] is a classic ticket lock built from a `Mutex` + `Condvar`:
//! every acquirer draws a monotonically increasing ticket, and the lane
//! serves tickets strictly in draw order. Whoever asked first writes first,
//! regardless of scheduler whims.

use std::sync::{Condvar, Mutex, MutexGuard};

/// FIFO mutual exclusion: tickets are granted strictly in draw order.
#[derive(Debug, Default)]
pub struct TicketLane {
    state: Mutex<LaneState>,
    served: Condvar,
}

#[derive(Debug, Default)]
struct LaneState {
    /// Next ticket to hand out.
    next: u64,
    /// Ticket currently allowed to hold the lane.
    serving: u64,
}

/// Holds the lane; dropping it serves the next ticket in line.
#[derive(Debug)]
pub struct LaneGuard<'a> {
    lane: &'a TicketLane,
}

impl TicketLane {
    /// A free lane: the first ticket drawn is served immediately.
    pub fn new() -> TicketLane {
        TicketLane::default()
    }

    /// Draw a ticket — a position in the FIFO queue. Never blocks; pair
    /// with [`TicketLane::wait`]. Split from acquisition so callers (and
    /// tests) can fix the grant order before anyone starts waiting.
    pub fn ticket(&self) -> u64 {
        self.ticket_with_distance().0
    }

    /// Draw a ticket and also report its distance from the head of the
    /// queue at draw time — how many earlier holders must release before
    /// this ticket is served (0 = the lane is free right now).
    pub fn ticket_with_distance(&self) -> (u64, u64) {
        let mut state = lock(&self.state);
        let t = state.next;
        state.next += 1;
        (t, t - state.serving)
    }

    /// Block until `ticket` is at the head of the queue, then hold the lane.
    pub fn wait(&self, ticket: u64) -> LaneGuard<'_> {
        let mut state = lock(&self.state);
        while state.serving != ticket {
            state = self
                .served
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        LaneGuard { lane: self }
    }

    /// Draw a ticket and wait for it: FIFO `lock()`.
    pub fn acquire(&self) -> LaneGuard<'_> {
        let ticket = self.ticket();
        self.wait(ticket)
    }
}

impl Drop for LaneGuard<'_> {
    fn drop(&mut self) {
        let mut state = lock(&self.lane.state);
        state.serving += 1;
        // Waiters for different tickets share one condvar; wake them all and
        // let each re-check whether it is now being served.
        self.lane.served.notify_all();
    }
}

/// The guarded state is two counters, always consistent; recover from a
/// poisoned mutex rather than propagating a panic into every writer.
fn lock(m: &Mutex<LaneState>) -> MutexGuard<'_, LaneState> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn uncontended_acquire_is_immediate() {
        let lane = TicketLane::new();
        drop(lane.acquire());
        drop(lane.acquire());
    }

    #[test]
    fn grants_follow_ticket_order() {
        let lane = Arc::new(TicketLane::new());
        // Park the lane so every contender queues behind ticket 0.
        let head = lane.ticket();
        let gate = lane.wait(head);
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut workers = Vec::new();
        // Draw tickets sequentially *here*, so the FIFO order is known even
        // though the waiting threads start in arbitrary order.
        for i in 0..8u64 {
            let ticket = lane.ticket();
            let lane = Arc::clone(&lane);
            let order = Arc::clone(&order);
            workers.push(std::thread::spawn(move || {
                let _guard = lane.wait(ticket);
                order.lock().unwrap().push(i);
                // Hold briefly so a barging acquirer would have a window.
                std::thread::sleep(Duration::from_millis(1));
            }));
        }
        // Let the workers reach their wait before opening the lane.
        std::thread::sleep(Duration::from_millis(20));
        drop(gate);
        for w in workers {
            w.join().unwrap();
        }
        let order = order.lock().unwrap();
        assert_eq!(
            *order,
            (0..8).collect::<Vec<u64>>(),
            "lane granted out of draw order"
        );
    }

    #[test]
    fn guard_drop_serves_next_even_after_holder_panics() {
        let lane = Arc::new(TicketLane::new());
        let panicking = {
            let lane = Arc::clone(&lane);
            std::thread::spawn(move || {
                let _guard = lane.acquire();
                panic!("holder dies with the lane");
            })
        };
        assert!(panicking.join().is_err());
        // The guard's Drop ran during unwind; the lane must still grant.
        drop(lane.acquire());
    }
}
