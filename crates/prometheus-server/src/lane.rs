//! A fair FIFO writer lane.
//!
//! `std::sync::Mutex` makes no fairness guarantee: under contention a thread
//! that just released the lock can immediately re-acquire it (barging),
//! starving a session that has been queued for a long streamed unit. The
//! writer lane is the server's single point of mutual exclusion for
//! mutations, so barging there translates directly into unbounded tail
//! latency for whichever client drew the short straw.
//!
//! [`TicketLane`] is a classic ticket lock built from a `Mutex` + `Condvar`:
//! every acquirer draws a monotonically increasing ticket, and the lane
//! serves tickets strictly in draw order. Whoever asked first writes first,
//! regardless of scheduler whims.

use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// FIFO mutual exclusion: tickets are granted strictly in draw order.
#[derive(Debug, Default)]
pub struct TicketLane {
    state: Mutex<LaneState>,
    served: Condvar,
}

#[derive(Debug, Default)]
struct LaneState {
    /// Next ticket to hand out.
    next: u64,
    /// Ticket currently allowed to hold the lane.
    serving: u64,
}

/// Holds the lane; dropping it serves the next ticket in line.
#[derive(Debug)]
pub struct LaneGuard<'a> {
    lane: &'a TicketLane,
}

impl TicketLane {
    /// A free lane: the first ticket drawn is served immediately.
    pub fn new() -> TicketLane {
        TicketLane::default()
    }

    /// Draw a ticket — a position in the FIFO queue. Never blocks; pair
    /// with [`TicketLane::wait`]. Split from acquisition so callers (and
    /// tests) can fix the grant order before anyone starts waiting.
    pub fn ticket(&self) -> u64 {
        self.ticket_with_distance().0
    }

    /// Draw a ticket and also report its distance from the head of the
    /// queue at draw time — how many earlier holders must release before
    /// this ticket is served (0 = the lane is free right now).
    pub fn ticket_with_distance(&self) -> (u64, u64) {
        let mut state = lock(&self.state);
        let t = state.next;
        state.next += 1;
        (t, t - state.serving)
    }

    /// Block until `ticket` is at the head of the queue, then hold the lane.
    pub fn wait(&self, ticket: u64) -> LaneGuard<'_> {
        let mut state = lock(&self.state);
        while state.serving != ticket {
            state = self
                .served
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        LaneGuard { lane: self }
    }

    /// Draw a ticket and wait for it: FIFO `lock()`.
    pub fn acquire(&self) -> LaneGuard<'_> {
        let ticket = self.ticket();
        self.wait(ticket)
    }

    /// The ticket currently being served — the one a holder owns, or the
    /// next grant if the lane is free. Event-driven callers poll this to
    /// decide whether the head of their wait queue can claim the lane.
    pub fn serving(&self) -> u64 {
        lock(&self.state).serving
    }

    /// Outstanding tickets: drawn but not yet released (the current holder,
    /// if any, plus everyone queued behind it). 0 = the lane is free. This
    /// is the `lane_depth` gauge the metrics surface exports per shard.
    pub fn depth(&self) -> u64 {
        let state = lock(&self.state);
        state.next - state.serving
    }

    /// Claim `ticket` without blocking: `Some` exactly when `ticket` is at
    /// the head of the queue right now. The returned guard owns an `Arc` to
    /// the lane, so it can be parked in per-connection state and dropped
    /// from any thread — the event loop's workers must never block in
    /// [`TicketLane::wait`] (the current holder may be an idle session whose
    /// releasing frame needs a free worker).
    pub fn try_claim(lane: &Arc<TicketLane>, ticket: u64) -> Option<OwnedLaneGuard> {
        let state = lock(&lane.state);
        if state.serving == ticket {
            drop(state);
            Some(OwnedLaneGuard {
                lane: Arc::clone(lane),
            })
        } else {
            None
        }
    }
}

/// An owning counterpart of [`LaneGuard`]: holds the lane via an `Arc`, so
/// it can outlive the stack frame that claimed it (parked in a connection's
/// unit state between readiness events). Dropping it serves the next ticket.
#[derive(Debug)]
pub struct OwnedLaneGuard {
    lane: Arc<TicketLane>,
}

impl Drop for OwnedLaneGuard {
    fn drop(&mut self) {
        let mut state = lock(&self.lane.state);
        state.serving += 1;
        self.lane.served.notify_all();
    }
}

impl Drop for LaneGuard<'_> {
    fn drop(&mut self) {
        let mut state = lock(&self.lane.state);
        state.serving += 1;
        // Waiters for different tickets share one condvar; wake them all and
        // let each re-check whether it is now being served.
        self.lane.served.notify_all();
    }
}

/// The guarded state is two counters, always consistent; recover from a
/// poisoned mutex rather than propagating a panic into every writer.
fn lock(m: &Mutex<LaneState>) -> MutexGuard<'_, LaneState> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn uncontended_acquire_is_immediate() {
        let lane = TicketLane::new();
        drop(lane.acquire());
        drop(lane.acquire());
    }

    #[test]
    fn grants_follow_ticket_order() {
        let lane = Arc::new(TicketLane::new());
        // Park the lane so every contender queues behind ticket 0.
        let head = lane.ticket();
        let gate = lane.wait(head);
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut workers = Vec::new();
        // Draw tickets sequentially *here*, so the FIFO order is known even
        // though the waiting threads start in arbitrary order.
        for i in 0..8u64 {
            let ticket = lane.ticket();
            let lane = Arc::clone(&lane);
            let order = Arc::clone(&order);
            workers.push(std::thread::spawn(move || {
                let _guard = lane.wait(ticket);
                order.lock().unwrap().push(i);
                // Hold briefly so a barging acquirer would have a window.
                std::thread::sleep(Duration::from_millis(1));
            }));
        }
        // Let the workers reach their wait before opening the lane.
        std::thread::sleep(Duration::from_millis(20));
        drop(gate);
        for w in workers {
            w.join().unwrap();
        }
        let order = order.lock().unwrap();
        assert_eq!(
            *order,
            (0..8).collect::<Vec<u64>>(),
            "lane granted out of draw order"
        );
    }

    #[test]
    fn try_claim_only_grants_the_head_ticket() {
        let lane = Arc::new(TicketLane::new());
        let first = lane.ticket();
        let second = lane.ticket();
        assert!(TicketLane::try_claim(&lane, second).is_none());
        let head = TicketLane::try_claim(&lane, first).expect("head ticket claims");
        // While held, nobody else claims — not even the head ticket again.
        assert!(TicketLane::try_claim(&lane, second).is_none());
        drop(head);
        assert_eq!(lane.serving(), second);
        let next = TicketLane::try_claim(&lane, second).expect("next after release");
        drop(next);
    }

    #[test]
    fn owned_guard_interleaves_with_blocking_waiters() {
        let lane = Arc::new(TicketLane::new());
        let t0 = lane.ticket();
        let owned = TicketLane::try_claim(&lane, t0).unwrap();
        let t1 = lane.ticket();
        let waiter = {
            let lane = Arc::clone(&lane);
            std::thread::spawn(move || {
                let _guard = lane.wait(t1);
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        drop(owned); // releases from this thread; the blocked waiter proceeds
        waiter.join().unwrap();
        drop(lane.acquire());
    }

    #[test]
    fn guard_drop_serves_next_even_after_holder_panics() {
        let lane = Arc::new(TicketLane::new());
        let panicking = {
            let lane = Arc::clone(&lane);
            std::thread::spawn(move || {
                let _guard = lane.acquire();
                panic!("holder dies with the lane");
            })
        };
        assert!(panicking.join().is_err());
        // The guard's Drop ran during unwind; the lane must still grant.
        drop(lane.acquire());
    }
}
