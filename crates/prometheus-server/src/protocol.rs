//! Versioned request/response messages of the Prometheus wire protocol.
//!
//! One request frame yields exactly one response frame. The protocol is
//! deliberately small: a handshake, POOL queries, PCL installation, units of
//! work (streamed or batched), maintenance (compact/stats) and connection
//! control. Every message is encoded with `prometheus_storage::codec` inside
//! a [`crate::frame`] envelope.
//!
//! ## Versioning
//!
//! The first request on a connection must be [`Request::Hello`] carrying
//! [`PROTOCOL_VERSION`]; the server answers [`Response::Welcome`] or an
//! error. Because the codec is not self-describing, *all* other messages are
//! only interpretable once the handshake has pinned the version — the server
//! drops connections that skip it.
//!
//! ## Units of work
//!
//! A client opens a unit with [`Request::UnitBegin`], streams
//! [`Request::UnitOp`]s (interleaving queries freely), then settles it with
//! [`Request::UnitCommit`] or [`Request::UnitAbort`]. While a unit is open
//! the session exclusively holds the server's writer lane — the wire-level
//! reflection of the engine's single-writer discipline. A connection that
//! drops mid-unit has its unit rolled back by the server (see
//! `tests/server_concurrency.rs`). [`Request::UnitBatch`] is the one-frame
//! convenience form: all ops run in a single unit, atomically.

use prometheus_db::{Oid, QueryResult, Value};
use prometheus_storage::StatsSnapshot;
use prometheus_trace::TraceEvent;
use serde::{Deserialize, Serialize};

use crate::metrics::MetricsSnapshot;
use crate::slowlog::SlowLogEntry;

/// Wire protocol version; bumped on any incompatible message change.
///
/// v2: [`crate::metrics::MetricsSnapshot`] gained `plan_cache_hits`,
/// `plan_cache_misses` and `parallel_morsels`. The codec is positional, so
/// v1 clients cannot decode the enlarged `Stats` response.
///
/// v3: observability — [`Request::Trace`]/[`Request::SlowLog`] with the
/// matching [`Response::Trace`]/[`Response::SlowLog`], carrying span events
/// from the server's trace ring and entries from the slow-query log.
/// (`EXPLAIN`/`PROFILE` need no new messages: they travel as ordinary
/// queries and answer with rows.)
///
/// v4: replication — [`Request::ReplicaPoll`]/[`Request::ReplicaStatus`]
/// with [`Response::ReplicaFrames`]/[`Response::ReplicaReset`]/
/// [`Response::ReplicaStatus`]; `MetricsSnapshot` gained per-request-class
/// latency histograms and per-follower replication lag; a version-mismatched
/// handshake now answers the typed `protocol-mismatch` error kind.
///
/// v5: the storage [`prometheus_storage::StatsSnapshot`] carried inside
/// `MetricsSnapshot` gained `image_nodes_cloned` and `image_bytes_copied`
/// (persistent-map publication cost); positional codec, so v4 clients
/// cannot decode the enlarged `Stats` response.
///
/// v6: [`crate::metrics::MetricsSnapshot`] gained `accept_queue_depth` (a
/// gauge of accepted-but-unserved connections) and `sessions_reaped`
/// (idle-connection reaper kills). Positional codec, so v5 clients cannot
/// decode the enlarged `Stats` response. No request/response variants
/// changed — the event-driven server speaks the same frames as the
/// blocking one.
///
/// v7: sharding — [`Request::ReplicaPoll`] gained `shard` (followers keep
/// one cursor per shard log), the storage `StatsSnapshot` gained
/// `units_2pc`, and [`crate::metrics::MetricsSnapshot`] gained `shards`
/// plus per-shard counters (`shard_lane_depth`, `shard_snapshot_swaps`,
/// `shard_image_bytes_copied`, `shard_units_2pc`). Positional codec, so
/// v6 clients cannot decode the enlarged messages.
///
/// v8: distributed tracing — the *frame envelope* gained a fixed 128-bit
/// trace id ahead of every payload (see [`crate::frame`]), which is
/// envelope-breaking: a v7 peer's frames no longer parse at all, in either
/// direction. [`Request::TraceGet`] / [`Response::TraceTree`] assemble one
/// trace's merged span tree (with follower spans when reachable);
/// `TraceEvent::trace_id` widened to the two-word `TraceId`;
/// `SlowLogEntry` gained `lane_mask` and `lane_wait_us`; and
/// `MetricsSnapshot` gained process self-metrics (`start_unix_s`,
/// `uptime_s`, `build_info`), per-stage trace rollup histograms and the
/// flight recorder's drop/eviction counters.
pub const PROTOCOL_VERSION: u16 = 8;

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Handshake; must be the first request on a connection.
    Hello { version: u16, client: String },
    /// Liveness probe.
    Ping,
    /// Run a POOL query. If the session has a classification context set
    /// (see [`Request::SetContext`]) and the query has no `in
    /// classification` clause of its own, the session context is applied.
    Query { pool: String },
    /// Set (or clear, with `None`) this session's classification context.
    SetContext { classification: Option<String> },
    /// Translate a PCL document and install the resulting rules.
    InstallPcl { source: String },
    /// Open a unit of work; the session takes the writer lane until the
    /// unit is settled or the connection drops.
    UnitBegin,
    /// One mutation inside the open unit.
    UnitOp { op: MutationOp },
    /// Commit the open unit.
    UnitCommit,
    /// Roll back the open unit.
    UnitAbort,
    /// Run all `ops` inside one unit, committing on success and rolling the
    /// whole batch back on the first failure.
    UnitBatch { ops: Vec<MutationOp> },
    /// Compact the backing log.
    Compact,
    /// Server + storage counters.
    Stats,
    /// The newest `n` span events from the server's trace ring.
    Trace { n: u32 },
    /// The newest `n` slow-query log entries.
    SlowLog { n: u32 },
    /// Ask the server to shut down gracefully (drain and close).
    Shutdown,
    /// Close this session politely.
    Bye,
    /// A replication follower asks for committed log frames of one member
    /// `shard` from `offset` within that shard's log `epoch`, batched to
    /// roughly `max_bytes`. `follower` is a stable name the primary uses
    /// for per-follower lag accounting; followers keep an independent
    /// `(epoch, offset)` cursor per shard.
    ReplicaPoll {
        follower: String,
        shard: u32,
        epoch: u64,
        offset: u64,
        max_bytes: u64,
    },
    /// Replication role and position of the answering server; clients use
    /// this for lag-aware routing.
    ReplicaStatus,
    /// Assemble the span tree of one distributed trace from this server's
    /// flight recorder. A primary merges in reachable followers' replay
    /// spans; a follower merges in the primary's spans. Read-only, so it
    /// works against either role.
    TraceGet { trace_id: prometheus_trace::TraceId },
}

impl Request {
    /// Short stable name, used for per-kind metrics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Request::Hello { .. } => "hello",
            Request::Ping => "ping",
            Request::Query { .. } => "query",
            Request::SetContext { .. } => "set_context",
            Request::InstallPcl { .. } => "install_pcl",
            Request::UnitBegin => "unit_begin",
            Request::UnitOp { .. } => "unit_op",
            Request::UnitCommit => "unit_commit",
            Request::UnitAbort => "unit_abort",
            Request::UnitBatch { .. } => "unit_batch",
            Request::Compact => "compact",
            Request::Stats => "stats",
            Request::Trace { .. } => "trace",
            Request::SlowLog { .. } => "slow_log",
            Request::Shutdown => "shutdown",
            Request::Bye => "bye",
            Request::ReplicaPoll { .. } => "replica_poll",
            Request::ReplicaStatus => "replica_status",
            Request::TraceGet { .. } => "trace_get",
        }
    }
}

/// A mutation applied inside a unit of work.
///
/// These map one-to-one onto the object-layer API, so the full §4.4
/// relationship semantics (cardinality, exclusivity, cycles, rules …) are
/// enforced server-side exactly as for in-process callers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MutationOp {
    /// `Database::create_object`.
    CreateObject {
        class: String,
        attrs: Vec<(String, Value)>,
    },
    /// `Database::set_attr`.
    SetAttr {
        oid: Oid,
        attr: String,
        value: Value,
    },
    /// `Database::delete_object`.
    DeleteObject { oid: Oid },
    /// `Database::create_relationship`.
    CreateRelationship {
        class: String,
        origin: Oid,
        destination: Oid,
        attrs: Vec<(String, Value)>,
    },
    /// `Database::delete_relationship`.
    DeleteRelationship { oid: Oid },
    /// `Database::create_classification`.
    CreateClassification {
        name: String,
        attrs: Vec<(String, Value)>,
        strict_hierarchy: bool,
    },
    /// `Database::add_edge_to_classification`.
    AddEdgeToClassification { classification: Oid, rel: Oid },
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Handshake accepted.
    Welcome { version: u16, session: u64 },
    /// Answer to [`Request::Ping`].
    Pong,
    /// Query result set.
    Rows(WireRows),
    /// Generic success for requests with nothing to return.
    Ack,
    /// A creating [`MutationOp`] succeeded.
    Created { oid: Oid },
    /// OIDs created by a [`Request::UnitBatch`], in op order (`Oid::NIL`
    /// for ops that create nothing).
    Batch { created: Vec<Oid> },
    /// Number of rules a PCL document installed.
    Installed { rules: usize },
    /// Server + storage counters. Boxed: the snapshot dwarfs every other
    /// variant, and responses are built once and serialized immediately.
    Stats {
        server: Box<MetricsSnapshot>,
        storage: StatsSnapshot,
    },
    /// Span events from the trace ring, oldest first.
    Trace { events: Vec<TraceEvent> },
    /// Slow-query log entries, oldest first.
    SlowLog { entries: Vec<SlowLogEntry> },
    /// The request failed; the session stays usable unless the transport
    /// itself broke.
    Error {
        kind: crate::error::ErrorKind,
        message: String,
    },
    /// Answer to [`Request::Bye`]; the server closes after sending it.
    Goodbye,
    /// Committed log frames for a [`Request::ReplicaPoll`] whose cursor was
    /// valid. An empty `frames` with `next_offset == log_len` means the
    /// follower is caught up.
    ReplicaFrames {
        epoch: u64,
        frames: Vec<prometheus_storage::LogRecord>,
        next_offset: u64,
        log_len: u64,
    },
    /// The poll's cursor is from a previous log epoch (the primary
    /// compacted) or otherwise meaningless: the follower must discard its
    /// local state and re-poll from offset zero with the given epoch.
    ReplicaReset { epoch: u64, log_len: u64 },
    /// Answer to [`Request::ReplicaStatus`].
    ReplicaStatus(Box<ReplicaStatusInfo>),
    /// Answer to [`Request::TraceGet`]: every span the reachable flight
    /// recorders still hold for the trace, labelled with the process that
    /// recorded each. Empty `spans` means the trace aged out of (or never
    /// entered) every ring.
    TraceTree {
        trace_id: prometheus_trace::TraceId,
        spans: Vec<TraceSpan>,
    },
}

/// One span of an assembled distributed trace: the raw event plus which
/// process's flight recorder it came from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSpan {
    /// `"primary"`, `"replica"`, or a follower's configured name.
    pub origin: String,
    /// The recorded span event.
    pub event: TraceEvent,
}

/// Replication role and position of a server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicaStatusInfo {
    /// `"primary"` or `"replica"`.
    pub role: String,
    /// For a replica: the primary address writes should go to.
    pub primary: Option<String>,
    /// Log epoch this server is on (for a replica: the primary epoch it
    /// last synced against).
    pub epoch: u64,
    /// Committed log length. For a replica this equals its applied cursor;
    /// for a primary it is the replication horizon followers chase.
    pub log_len: u64,
    /// The replica's applied byte cursor (equals `log_len` on a primary).
    pub applied_offset: u64,
    /// Microseconds since this replica last confirmed it was caught up with
    /// the primary's horizon; 0 on a primary. Grows without bound while the
    /// primary is unreachable, which is exactly what staleness routing
    /// needs.
    pub caught_up_age_us: u64,
    /// Number of full resyncs this replica has performed.
    pub resyncs: u64,
}

/// A query result in wire form: column labels plus row-major values.
///
/// [`QueryResult`] itself holds evaluator-side types; this is the stable
/// plain-data projection that crosses the network.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WireRows {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

impl WireRows {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// First-column OIDs, mirroring `QueryResult::oids` for the common
    /// `select x from Class x` shape.
    pub fn oids(&self) -> Vec<Oid> {
        self.rows
            .iter()
            .filter_map(|row| row.first().and_then(|v| v.as_ref_oid()))
            .collect()
    }
}

impl From<QueryResult> for WireRows {
    fn from(result: QueryResult) -> Self {
        WireRows {
            columns: result.columns,
            rows: result.rows.into_iter().map(|row| row.columns).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prometheus_storage::codec;

    #[test]
    fn requests_round_trip_through_the_codec() {
        let samples = vec![
            Request::Hello {
                version: PROTOCOL_VERSION,
                client: "test".into(),
            },
            Request::Ping,
            Request::Query {
                pool: "select t from CT t".into(),
            },
            Request::SetContext {
                classification: Some("Linnaeus 1753".into()),
            },
            Request::SetContext {
                classification: None,
            },
            Request::InstallPcl {
                source: "context CT pre w: self.rank != null".into(),
            },
            Request::UnitBegin,
            Request::UnitOp {
                op: MutationOp::SetAttr {
                    oid: Oid::from_raw(7),
                    attr: "working_name".into(),
                    value: Value::Str("Apium".into()),
                },
            },
            Request::UnitCommit,
            Request::UnitAbort,
            Request::UnitBatch {
                ops: vec![MutationOp::CreateObject {
                    class: "CT".into(),
                    attrs: vec![("working_name".into(), Value::Str("x".into()))],
                }],
            },
            Request::Compact,
            Request::Stats,
            Request::Trace { n: 64 },
            Request::SlowLog { n: 16 },
            Request::Shutdown,
            Request::Bye,
            Request::ReplicaPoll {
                follower: "replica-1".into(),
                shard: 1,
                epoch: 2,
                offset: 4096,
                max_bytes: 1 << 20,
            },
            Request::ReplicaStatus,
            Request::TraceGet {
                trace_id: prometheus_trace::TraceId::from_words(0xdead, 0xbeef),
            },
        ];
        for req in samples {
            let bytes = codec::to_bytes(&req).unwrap();
            let back: Request = codec::from_bytes(&bytes).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn responses_round_trip_through_the_codec() {
        let samples = vec![
            Response::Welcome {
                version: 1,
                session: 42,
            },
            Response::Pong,
            Response::Rows(WireRows {
                columns: vec!["t".into()],
                rows: vec![vec![Value::Ref(Oid::from_raw(3))], vec![Value::Null]],
            }),
            Response::Ack,
            Response::Created {
                oid: Oid::from_raw(9),
            },
            Response::Batch {
                created: vec![Oid::from_raw(1), Oid::NIL],
            },
            Response::Installed { rules: 4 },
            Response::Trace {
                events: vec![TraceEvent {
                    trace_id: prometheus_trace::TraceId::from_words(9, 1),
                    span_id: 2,
                    parent_id: 0,
                    stage: prometheus_trace::Stage::Scan,
                    start_us: 10,
                    dur_us: 250,
                    c0: 42,
                    c1: 1,
                }],
            },
            Response::SlowLog {
                entries: vec![crate::slowlog::SlowLogEntry {
                    session: 3,
                    query: "select t from CT t".into(),
                    context: Some("Linnaeus 1753".into()),
                    trace_id: prometheus_trace::TraceId::from_words(9, 1),
                    fingerprint: 0xdead_beef,
                    dur_us: 120_000,
                    rows: 2,
                    pinned: true,
                    lane_mask: 0b101,
                    lane_wait_us: 350,
                }],
            },
            Response::Error {
                kind: crate::error::ErrorKind::Db,
                message: "unknown class 'XT'".into(),
            },
            Response::Error {
                kind: crate::error::ErrorKind::ReadOnlyReplica,
                message: "writes go to 127.0.0.1:7070".into(),
            },
            Response::Goodbye,
            Response::ReplicaFrames {
                epoch: 1,
                frames: vec![
                    prometheus_storage::LogRecord::Begin { txn: 7 },
                    prometheus_storage::LogRecord::Put {
                        txn: 7,
                        oid: Oid::from_raw(3),
                        bytes: vec![1, 2, 3],
                    },
                    prometheus_storage::LogRecord::Commit {
                        txn: 7,
                        next_oid: 4,
                    },
                ],
                next_offset: 512,
                log_len: 2048,
            },
            Response::ReplicaReset {
                epoch: 3,
                log_len: 128,
            },
            Response::ReplicaStatus(Box::new(ReplicaStatusInfo {
                role: "replica".into(),
                primary: Some("127.0.0.1:7070".into()),
                epoch: 3,
                log_len: 1024,
                applied_offset: 1024,
                caught_up_age_us: 1500,
                resyncs: 1,
            })),
            Response::TraceTree {
                trace_id: prometheus_trace::TraceId::from_words(0xdead, 0xbeef),
                spans: vec![TraceSpan {
                    origin: "primary".into(),
                    event: TraceEvent {
                        trace_id: prometheus_trace::TraceId::from_words(0xdead, 0xbeef),
                        span_id: 4,
                        parent_id: 0,
                        stage: prometheus_trace::Stage::UnitDecide,
                        start_us: 5,
                        dur_us: 7,
                        c0: 3,
                        c1: 1,
                    },
                }],
            },
        ];
        for resp in samples {
            let bytes = codec::to_bytes(&resp).unwrap();
            let back: Response = codec::from_bytes(&bytes).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn wire_rows_extract_oids_like_query_results() {
        let rows = WireRows {
            columns: vec!["t".into(), "name".into()],
            rows: vec![
                vec![Value::Ref(Oid::from_raw(5)), Value::Str("a".into())],
                vec![Value::Str("not-a-ref".into()), Value::Str("b".into())],
                vec![Value::Ref(Oid::from_raw(8)), Value::Null],
            ],
        };
        assert_eq!(rows.oids(), vec![Oid::from_raw(5), Oid::from_raw(8)]);
        assert_eq!(rows.len(), 3);
        assert!(!rows.is_empty());
    }
}
