//! # prometheus-server — serving the Prometheus OODB over the wire
//!
//! The thesis (§2.4, §7) frames Prometheus as a *multi-user* taxonomic
//! database: several taxonomists build overlapping classifications against
//! one shared object store. This crate supplies that service layer for the
//! reproduction: a concurrent TCP server exposing a running
//! [`prometheus_db::Prometheus`] database through a compact, versioned,
//! binary wire protocol, plus the matching blocking client.
//!
//! * [`frame`] — length-prefixed, CRC-protected frames (the redo-log
//!   envelope, reused for the network), both blocking ([`frame::read_msg`] /
//!   [`frame::write_msg`]) and incremental ([`FrameDecoder`] /
//!   [`FrameEncoder`] for non-blocking sockets);
//! * [`protocol`] — versioned [`protocol::Request`]/[`protocol::Response`]
//!   messages: handshake, POOL queries, PCL installation, units of work
//!   (streamed and batched), compaction, stats, shutdown;
//! * [`core`] — the **sans-io** per-session protocol state machine
//!   ([`SessionCore`]): consumes decoded requests, answers with ready
//!   responses or typed [`Work`] items, and never touches a socket — both
//!   transports below drive it, so the protocol cannot drift between them;
//! * [`server`] — the two transports behind one [`serve`] entry point: the
//!   blocking accept-loop + worker-pool path
//!   ([`ServerConfig::io_threads`]` == 0`), and the **event-driven** path
//!   (`io_threads > 0`, Linux) where an epoll readiness loop ([`poll`],
//!   [`event`]) owns thousands of connections with a handful of threads and
//!   also serves the HTTP `GET /metrics` scrape endpoint. In both, queries
//!   run lock-free against pinned storage snapshots while every mutation
//!   passes through the fair FIFO **writer lane** ([`lane`]), preserving the
//!   engine's single-writer discipline across sessions; a unit that sits
//!   silent past the idle deadline is rolled back so the lane keeps moving;
//! * [`session`] — per-connection state, notably the session's
//!   classification context (§4.6.2 "working inside a classification");
//! * [`client`] — [`client::PrometheusClient`] and the RAII
//!   [`client::UnitGuard`];
//! * [`metrics`] — lock-free server counters, latency histograms (merged
//!   and per request class) and per-follower replication lag, queryable
//!   over the wire — and [`exposition`], their Prometheus text rendering;
//! * [`replica`] — the state a server carries when it runs as a read-only
//!   replication follower (see the `prometheus-replica` crate for the
//!   puller that drives it);
//! * [`error`] — transport, protocol and remote error types.
//!
//! ## Example
//!
//! ```no_run
//! use prometheus_db::Prometheus;
//! use prometheus_server::{serve, PrometheusClient, ServerConfig};
//!
//! let db = Prometheus::open("/tmp/flora.db").unwrap();
//! let handle = serve(db, ServerConfig::default()).unwrap();
//!
//! let mut client = PrometheusClient::connect(handle.addr()).unwrap();
//! client.set_context(Some("Linnaeus 1753")).unwrap();
//! let rows = client.query("select t.working_name from CT t").unwrap();
//! println!("{} taxa", rows.len());
//! client.close().unwrap();
//! handle.stop();
//! ```

pub mod client;
pub mod core;
pub mod error;
#[cfg(target_os = "linux")]
pub mod event;
pub mod exposition;
pub mod frame;
pub mod lane;
pub mod metrics;
#[cfg(target_os = "linux")]
pub mod poll;
pub mod protocol;
pub mod replica;
pub mod server;
pub mod session;
pub mod slowlog;

pub use crate::core::{is_mutating, SessionCore, Step, Work};
pub use client::{ClientConfig, PollOutcome, PrometheusClient, UnitGuard};
pub use error::{ErrorKind, ServerError, ServerResult};
pub use exposition::render_prometheus_exposition;
pub use frame::{FrameDecoder, FrameEncoder, MAX_FRAME_LEN};
pub use lane::{LaneGuard, OwnedLaneGuard, TicketLane};
pub use metrics::{FollowerLag, LatencyHistogram, MetricsSnapshot, ServerMetrics, REQUEST_CLASSES};
pub use prometheus_trace::{render_tree, Recorder, Stage, StageRollup, TraceEvent, TraceId};
pub use protocol::{
    MutationOp, ReplicaStatusInfo, Request, Response, TraceSpan, WireRows, PROTOCOL_VERSION,
};
pub use replica::{ReplicaInfo, ReplicaStatusCell};
pub use server::{serve, ServerConfig, ServerConfigBuilder, ServerHandle};
pub use session::Session;
pub use slowlog::{SlowLog, SlowLogEntry};
