//! The event-driven transport: a readiness loop that owns every connection.
//!
//! The blocking path in `server.rs` spends one thread per live session —
//! fine for tens of clients, hopeless for thousands of mostly-idle
//! herbarium terminals. This module serves the *same wire protocol* (the
//! same [`SessionCore`] state machine, frame format and counters) from a
//! fixed, tiny thread budget:
//!
//! ```text
//!   poll thread ── epoll_wait ──► ready queue ──► io workers (N threads)
//!        │                                            │
//!        │  accepts, idle/unit deadline scans,        │  read → FrameDecoder
//!        │  max_connections pause/resume              │  SessionCore::on_request
//!        │                                            │  execute_work / lane queue
//!        └── also owns the GET /metrics listener      │  FrameEncoder → write
//! ```
//!
//! Every socket is non-blocking and registered **one-shot**: after an event
//! fires the descriptor stays silent until the worker that served it
//! re-arms it, so at most one worker touches a connection at a time without
//! any per-connection thread.
//!
//! ## The writer lanes without blocking
//!
//! Workers must never block in [`TicketLane::wait`]: the current holder may
//! be an idle in-unit session whose commit frame needs a free worker, so a
//! blocked pool would deadlock. Instead lane-bound work *parks*: the
//! session draws a ticket (under that lane's queue mutex, preserving FIFO),
//! stops consuming decoded frames, and is rescheduled when
//! [`pump_lane`] claims its ticket with [`TicketLane::try_claim`]. A parked
//! session is not re-armed for reads either — the kernel buffers its
//! backlog exactly as it would for a blocked thread.
//!
//! With sharded stores there is one lane per shard, each with its **own**
//! park queue: releasing shard A's lane pumps only shard A's queue, so a
//! grant on one shard never rouses (or reorders) sessions parked on
//! another. A multi-lane claim is acquired one lane at a time in ascending
//! index order — the same resource ordering as the blocking transport's
//! `acquire_lanes`, so sessions on both transports are jointly
//! deadlock-free.
//!
//! ## Backpressure
//!
//! A session whose encoder holds more than [`HIGH_WATER`] unsent bytes
//! stops having frames decoded (and stops being re-armed for reads) until
//! the socket drains — a slow reader throttles only itself.

use crate::core::{SessionCore, Step, Work};
use crate::error::{ErrorKind, ServerError, ServerResult};
use crate::frame::{FrameDecoder, FrameEncoder};
use crate::lane::{OwnedLaneGuard, TicketLane};
use crate::metrics::MetricsSnapshot;
use crate::poll::{PollEvent, Poller, Waker, EV_READ, EV_WRITE};
use crate::protocol::{Request, Response};
use crate::server::{
    count_response, execute_work, initiate_shutdown, kind_code, metrics_snapshot, Shared,
};
use prometheus_db::database::UnitToken;
use prometheus_trace::{Stage, TraceId, TraceScope};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

/// Stop decoding frames for a session holding this many unsent bytes.
const HIGH_WATER: usize = 1 << 20;

/// Cap on a pipelined HTTP request head before the connection is dropped.
const HTTP_HEAD_MAX: usize = 16 * 1024;

/// How often the poll thread sweeps for idle sessions and silent units.
const SCAN_INTERVAL_MS: i32 = 100;

const TOKEN_DB_LISTENER: u64 = 0;
const TOKEN_HTTP_LISTENER: u64 = 1;
const TOKEN_WAKER: u64 = 2;
const FIRST_CONN_TOKEN: u64 = 16;

/// What [`spawn_event_loop`] should own.
pub(crate) struct EventConfig {
    /// The wire-protocol listener, when this loop serves database sessions
    /// (`None` for the HTTP-only loop behind the blocking path).
    pub(crate) db_listener: Option<TcpListener>,
    /// The `GET /metrics` scrape listener, if configured.
    pub(crate) metrics_listener: Option<TcpListener>,
    /// Worker threads executing ready work (≥ 1 is forced).
    pub(crate) io_threads: usize,
    /// Pause accepting at this many live connections; `0` = unlimited.
    pub(crate) max_connections: usize,
}

/// Join handle for a running event loop (1 poll thread + N workers).
pub(crate) struct EventLoopHandle {
    pub(crate) metrics_addr: Option<SocketAddr>,
    threads: Vec<thread::JoinHandle<()>>,
}

impl EventLoopHandle {
    /// Block until the poll thread and every worker have exited. Call after
    /// [`initiate_shutdown`] — the loop only winds down once the shutdown
    /// flag is up and its waker has fired.
    pub(crate) fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

enum ConnKind {
    /// A wire-protocol session.
    Db,
    /// A plain-HTTP scrape of `GET /metrics`.
    Http,
}

/// Why a session stopped consuming frames: it is queued for a writer lane.
enum LanePending {
    /// `UnitBegin` was acked; open the unit once every lane grants.
    OpenUnit,
    /// A one-shot lane-bound work item (batch, PCL install, compact); the
    /// request kind and start instant carry the latency accounting across
    /// the park, and the adopted trace id keeps the parked work — and its
    /// response envelope — on the request's distributed trace.
    Work {
        work: Work,
        kind: &'static str,
        start: Instant,
        trace: TraceId,
    },
}

/// An in-flight multi-lane claim: the deferred action, the shard-lane mask
/// being acquired (it becomes the unit's shard claim), and the guards
/// already held — ascending by lane index, because lanes are always claimed
/// in ascending order. While parked, the session is queued on exactly one
/// lane: the lowest unheld lane of the mask.
struct LanePark {
    what: LanePending,
    mask: u64,
    held: Vec<(usize, OwnedLaneGuard)>,
}

/// An open streamed unit: the database token and the held lane guards.
struct UnitState {
    token: UnitToken,
    guards: Vec<(usize, OwnedLaneGuard)>,
}

struct ConnState {
    core: SessionCore,
    decoder: FrameDecoder,
    encoder: FrameEncoder,
    /// Raw buffers for HTTP connections (which never touch the framed
    /// encoder/decoder).
    http_in: Vec<u8>,
    http_out: Vec<u8>,
    http_pos: usize,
    unit: Option<UnitState>,
    pending: Option<LanePark>,
    last_activity: Instant,
    eof: bool,
    /// Deliver what the encoder holds, then tear down.
    closing: bool,
    dead: bool,
}

struct Conn {
    token: u64,
    kind: ConnKind,
    stream: TcpStream,
    state: Mutex<ConnState>,
}

/// Everything the poll thread and the workers share.
struct Reactor {
    shared: Arc<Shared>,
    poller: Poller,
    waker: Waker,
    conns: Mutex<HashMap<u64, Arc<Conn>>>,
    /// Tokens with work to do, handed from the poll thread (readiness
    /// events) or a lane grant to the worker pool.
    ready: Mutex<VecDeque<u64>>,
    ready_cv: Condvar,
    /// Workers may exit once this is set and the ready queue is drained.
    stopping: AtomicBool,
    /// Per-lane FIFOs of `(ticket, token)` sessions parked for that writer
    /// lane (index-aligned with `Shared::writer_lanes`). Tickets are drawn
    /// under the lane's queue mutex so event sessions keep strict arrival
    /// order among themselves, and a grant on one lane touches only that
    /// lane's queue.
    lane_queues: Vec<Mutex<VecDeque<(u64, u64)>>>,
    /// A lane guard claimed on behalf of a parked session, waiting for a
    /// worker to pick the session up. At most one per session: a session
    /// queues on one lane at a time.
    grants: Mutex<HashMap<u64, (usize, OwnedLaneGuard)>>,
    next_token: AtomicU64,
    max_connections: usize,
}

/// Start the readiness loop: 1 poll thread plus `io_threads` workers.
pub(crate) fn spawn_event_loop(
    shared: Arc<Shared>,
    cfg: EventConfig,
) -> ServerResult<EventLoopHandle> {
    let poller = Poller::new()?;
    let waker = Waker::new()?;
    poller.register(waker.as_raw_fd(), TOKEN_WAKER, EV_READ)?;
    let metrics_addr = match &cfg.metrics_listener {
        Some(l) => Some(l.local_addr()?),
        None => None,
    };
    if let Some(l) = &cfg.db_listener {
        l.set_nonblocking(true)?;
        poller.register(l.as_raw_fd(), TOKEN_DB_LISTENER, EV_READ)?;
    }
    if let Some(l) = &cfg.metrics_listener {
        l.set_nonblocking(true)?;
        poller.register(l.as_raw_fd(), TOKEN_HTTP_LISTENER, EV_READ)?;
    }
    let rx = Arc::new(Reactor {
        shared: Arc::clone(&shared),
        poller,
        waker,
        conns: Mutex::new(HashMap::new()),
        ready: Mutex::new(VecDeque::new()),
        ready_cv: Condvar::new(),
        stopping: AtomicBool::new(false),
        lane_queues: (0..shared.writer_lanes.len())
            .map(|_| Mutex::new(VecDeque::new()))
            .collect(),
        grants: Mutex::new(HashMap::new()),
        next_token: AtomicU64::new(FIRST_CONN_TOKEN),
        max_connections: cfg.max_connections,
    });
    // A wire `Shutdown` only sees `Shared`; this callback lets it reach us.
    {
        let w = rx.waker.clone();
        lock(&shared.shutdown_wakers).push(Box::new(move || w.wake()));
    }
    let mut threads = Vec::new();
    for i in 0..cfg.io_threads.max(1) {
        let rx = Arc::clone(&rx);
        threads.push(
            thread::Builder::new()
                .name(format!("prometheus-io-{i}"))
                .spawn(move || worker_loop(rx))?,
        );
    }
    {
        let rx = Arc::clone(&rx);
        threads.push(
            thread::Builder::new()
                .name("prometheus-poll".into())
                .spawn(move || poll_loop(rx, cfg.db_listener, cfg.metrics_listener))?,
        );
    }
    Ok(EventLoopHandle {
        metrics_addr,
        threads,
    })
}

/// Hand a token to the worker pool. Every push increments the
/// `accept_queued` gauge; the matching pop in [`worker_loop`] decrements
/// it, so the gauge reads as "ready work waiting for a free io thread".
fn enqueue_ready(rx: &Reactor, token: u64) {
    rx.shared
        .metrics
        .accept_queued
        .fetch_add(1, Ordering::Relaxed);
    lock(&rx.ready).push_back(token);
    rx.ready_cv.notify_one();
}

fn worker_loop(rx: Arc<Reactor>) {
    loop {
        let token = {
            let mut q = lock(&rx.ready);
            loop {
                if let Some(t) = q.pop_front() {
                    break Some(t);
                }
                if rx.stopping.load(Ordering::SeqCst) {
                    break None;
                }
                q = rx
                    .ready_cv
                    .wait(q)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        let Some(token) = token else { break };
        rx.shared
            .metrics
            .accept_queued
            .fetch_sub(1, Ordering::Relaxed);
        let conn = lock(&rx.conns).get(&token).cloned();
        match conn {
            Some(conn) => process_conn(&rx, &conn),
            None => {
                // Torn down after scheduling; a lane grant may be parked.
                if let Some((lane, guard)) = lock(&rx.grants).remove(&token) {
                    drop(guard);
                    pump_lane(&rx, lane);
                }
            }
        }
    }
}

fn poll_loop(
    rx: Arc<Reactor>,
    db_listener: Option<TcpListener>,
    http_listener: Option<TcpListener>,
) {
    let mut events: Vec<PollEvent> = Vec::new();
    let mut accept_paused = false;
    let mut last_scan = Instant::now();
    loop {
        events.clear();
        let _ = rx.poller.wait(&mut events, SCAN_INTERVAL_MS);
        if rx.shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        for ev in &events {
            match ev.token {
                TOKEN_WAKER => {
                    rx.waker.drain();
                    let _ = rx.poller.rearm(rx.waker.as_raw_fd(), TOKEN_WAKER, EV_READ);
                }
                TOKEN_DB_LISTENER => {
                    if let Some(l) = &db_listener {
                        accept_paused = accept_ready(&rx, l, TOKEN_DB_LISTENER, true);
                    }
                }
                TOKEN_HTTP_LISTENER => {
                    if let Some(l) = &http_listener {
                        accept_ready(&rx, l, TOKEN_HTTP_LISTENER, false);
                    }
                }
                token => enqueue_ready(&rx, token),
            }
        }
        // Resume accepting once sessions have closed below the cap.
        if accept_paused {
            if let Some(l) = &db_listener {
                if lock(&rx.conns).len() < rx.max_connections {
                    accept_paused = rx
                        .poller
                        .rearm(l.as_raw_fd(), TOKEN_DB_LISTENER, EV_READ)
                        .is_err();
                }
            }
        }
        if last_scan.elapsed() >= Duration::from_millis(SCAN_INTERVAL_MS as u64) {
            last_scan = Instant::now();
            scan_deadlines(&rx);
        }
    }
    shutdown_drain(&rx);
}

/// Accept everything the backlog holds. Returns `true` when the cap was hit
/// and the listener was left un-armed (paused).
fn accept_ready(rx: &Arc<Reactor>, listener: &TcpListener, token: u64, is_db: bool) -> bool {
    loop {
        if is_db && rx.max_connections > 0 && lock(&rx.conns).len() >= rx.max_connections {
            // Leave the backlog in the kernel; resume when sessions close.
            return true;
        }
        match listener.accept() {
            Ok((stream, _)) => register_conn(rx, stream, is_db),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(_) => break,
        }
    }
    let _ = rx.poller.rearm(listener.as_raw_fd(), token, EV_READ);
    false
}

fn register_conn(rx: &Arc<Reactor>, stream: TcpStream, is_db: bool) {
    if stream.set_nonblocking(true).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let token = rx.next_token.fetch_add(1, Ordering::Relaxed);
    let (kind, core) = if is_db {
        rx.shared
            .metrics
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
        rx.shared
            .metrics
            .connections_active
            .fetch_add(1, Ordering::Relaxed);
        let id = rx.shared.next_session.fetch_add(1, Ordering::Relaxed);
        (
            ConnKind::Db,
            SessionCore::new(id, rx.shared.replica.as_ref().map(|r| r.primary.clone())),
        )
    } else {
        (ConnKind::Http, SessionCore::new(0, None))
    };
    let conn = Arc::new(Conn {
        token,
        kind,
        stream,
        state: Mutex::new(ConnState {
            core,
            decoder: FrameDecoder::new(),
            encoder: FrameEncoder::new(),
            http_in: Vec::new(),
            http_out: Vec::new(),
            http_pos: 0,
            unit: None,
            pending: None,
            last_activity: Instant::now(),
            eof: false,
            closing: false,
            dead: false,
        }),
    });
    let fd = conn.stream.as_raw_fd();
    lock(&rx.conns).insert(token, Arc::clone(&conn));
    if rx.poller.register(fd, token, EV_READ).is_err() {
        teardown(rx, &conn, false);
    }
}

/// Grant writer lane `lane` to its longest-parked session that is still
/// alive, dropping grants for sessions torn down while queued so the lane
/// never stalls behind a ghost. Call after *every* [`OwnedLaneGuard`] drop,
/// with that guard's lane index — only this lane's queue is inspected, so a
/// release on shard A never rouses a session parked on shard B.
fn pump_lane(rx: &Reactor, lane: usize) {
    loop {
        let claimed = {
            let mut q = lock(&rx.lane_queues[lane]);
            match q.front().copied() {
                None => return,
                Some((ticket, token)) => {
                    match TicketLane::try_claim(&rx.shared.writer_lanes[lane], ticket) {
                        Some(guard) => {
                            q.pop_front();
                            (guard, token)
                        }
                        // Head ticket not serving yet: the current holder
                        // will pump again when its guard drops.
                        None => return,
                    }
                }
            }
        };
        let (guard, token) = claimed;
        {
            // Hold the conns lock across the grant so a concurrent teardown
            // cannot slip between the aliveness check and the insert (its
            // own `grants` cleanup runs after it removed the conn here).
            let conns = lock(&rx.conns);
            if let Some(conn) = conns.get(&token) {
                if !lock(&conn.state).dead {
                    lock(&rx.grants).insert(token, (lane, guard));
                    drop(conns);
                    enqueue_ready(rx, token);
                    return;
                }
            }
        }
        // Dead or gone: release the lane and try the next waiter.
        drop(guard);
    }
}

/// Drop held lane guards and record their lanes for pumping. The pump runs
/// *after* the caller releases the connection's state lock — `pump_lane`
/// locks the granted session's state to check liveness, and the grantee may
/// be the very connection the caller still holds.
fn release_guards(guards: Vec<(usize, OwnedLaneGuard)>, pump: &mut Vec<usize>) {
    for (lane, guard) in guards {
        drop(guard);
        pump.push(lane);
    }
}

/// Close a connection and release everything it held. Idempotent.
fn teardown(rx: &Reactor, conn: &Arc<Conn>, reaped: bool) {
    let (unit, pending) = {
        let mut st = lock(&conn.state);
        if st.dead {
            return;
        }
        st.dead = true;
        (st.unit.take(), st.pending.take())
    };
    let mut pump = Vec::new();
    if let Some(unit) = unit {
        // Disconnect (or reap) mid-unit: roll back so no half-applied unit
        // is ever visible or durable, then free the lanes.
        rx.shared.db.db().abort_unit(unit.token);
        rx.shared
            .metrics
            .units_rolled_back_on_disconnect
            .fetch_add(1, Ordering::Relaxed);
        release_guards(unit.guards, &mut pump);
    }
    if let Some(park) = pending {
        // Parked mid-acquisition: free the lanes already held. The stale
        // queue entry on the lane it was waiting for is skipped by
        // `pump_lane`'s liveness check when it reaches the head.
        release_guards(park.held, &mut pump);
    }
    rx.poller.deregister(conn.stream.as_raw_fd());
    lock(&rx.conns).remove(&conn.token);
    if let Some((lane, guard)) = lock(&rx.grants).remove(&conn.token) {
        drop(guard);
        pump.push(lane);
    }
    if matches!(conn.kind, ConnKind::Db) {
        rx.shared
            .metrics
            .connections_active
            .fetch_sub(1, Ordering::Relaxed);
        if reaped {
            rx.shared
                .metrics
                .sessions_reaped
                .fetch_add(1, Ordering::Relaxed);
        }
    }
    for lane in pump {
        pump_lane(rx, lane);
    }
    // Let the poll thread resume accepting if it paused at the cap.
    rx.waker.wake();
}

/// The poll thread's periodic sweep: silent units are rolled back at
/// `unit_idle_timeout` (the session survives and learns via the typed
/// error), idle sessions are reaped at `idle_timeout`. Busy connections
/// (state lock held by a worker) are by definition not idle and are
/// skipped.
fn scan_deadlines(rx: &Arc<Reactor>) {
    let conns: Vec<Arc<Conn>> = lock(&rx.conns).values().cloned().collect();
    for conn in conns {
        let mut lane_guards = None;
        let mut reap = false;
        {
            let Ok(mut st) = conn.state.try_lock() else {
                continue;
            };
            if st.dead {
                continue;
            }
            if st.unit.is_some() {
                if st.last_activity.elapsed() >= rx.shared.unit_idle_timeout {
                    let unit = st.unit.take().expect("unit state");
                    rx.shared.db.db().abort_unit(unit.token);
                    rx.shared
                        .metrics
                        .units_timed_out
                        .fetch_add(1, Ordering::Relaxed);
                    st.core.note_unit_timed_out();
                    st.last_activity = Instant::now();
                    lane_guards = Some(unit.guards);
                }
            } else if let Some(idle) = rx.shared.idle_timeout {
                // A session parked for a lane is waiting on us, not idle.
                if st.pending.is_none() && st.last_activity.elapsed() >= idle {
                    reap = true;
                }
            }
        }
        if let Some(guards) = lane_guards.take() {
            let mut pump = Vec::new();
            release_guards(guards, &mut pump);
            for lane in pump {
                pump_lane(rx, lane);
            }
        }
        if reap {
            teardown(rx, &conn, matches!(conn.kind, ConnKind::Db));
        }
    }
}

/// Graceful drain once the shutdown flag is up: schedule every connection
/// to flush-and-close, keep delivering write readiness briefly, then force
/// whatever is left and release the workers.
fn shutdown_drain(rx: &Arc<Reactor>) {
    let tokens: Vec<u64> = lock(&rx.conns).keys().copied().collect();
    for t in tokens {
        enqueue_ready(rx, t);
    }
    let deadline = Instant::now() + Duration::from_secs(2);
    let mut events: Vec<PollEvent> = Vec::new();
    while Instant::now() < deadline && !lock(&rx.conns).is_empty() {
        events.clear();
        let _ = rx.poller.wait(&mut events, 50);
        for ev in &events {
            if ev.token >= FIRST_CONN_TOKEN {
                enqueue_ready(rx, ev.token);
            }
        }
    }
    let leftovers: Vec<Arc<Conn>> = lock(&rx.conns).values().cloned().collect();
    for conn in leftovers {
        teardown(rx, &conn, false);
    }
    rx.stopping.store(true, Ordering::SeqCst);
    rx.ready_cv.notify_all();
}

/// Drain the socket into the session's decoder (or HTTP buffer).
fn read_ready(conn: &Conn, st: &mut ConnState) {
    let mut buf = [0u8; 16 * 1024];
    loop {
        match (&conn.stream).read(&mut buf) {
            Ok(0) => {
                st.eof = true;
                break;
            }
            Ok(n) => {
                st.last_activity = Instant::now();
                match conn.kind {
                    ConnKind::Db => st.decoder.extend(&buf[..n]),
                    ConnKind::Http => st.http_in.extend_from_slice(&buf[..n]),
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                st.eof = true;
                break;
            }
        }
    }
}

/// Flush the encoder until the socket pushes back.
fn flush(conn: &Conn, st: &mut ConnState) {
    while !st.encoder.is_empty() {
        match (&conn.stream).write(st.encoder.pending()) {
            Ok(0) => {
                st.dead = true;
                return;
            }
            Ok(n) => st.encoder.consume(n),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                st.dead = true;
                return;
            }
        }
    }
}

/// Count and encode one response, echoing the request's trace id in the
/// response envelope.
fn push_msg(shared: &Shared, st: &mut ConnState, trace: TraceId, resp: &Response) {
    count_response(&shared.metrics, resp);
    if st.encoder.push(trace, resp).is_err() {
        // An unencodable response (oversized frame) desyncs the stream;
        // closing is the only honest option — same as a blocking write_msg
        // failure ending the session.
        st.dead = true;
    }
}

/// Execute a (possibly lane-parked) work item under a fresh request span
/// and settle its latency accounting. `claim_mask` is the lane mask the
/// session holds for this work — the same mask inferred at dispatch, so the
/// unit's shard claim matches the held lanes exactly.
fn run_work(
    rx: &Reactor,
    core: &mut SessionCore,
    work: Work,
    claim_mask: u64,
    kind: &'static str,
    start: Instant,
    trace: TraceId,
) -> Response {
    let shared = &rx.shared;
    let root = shared.recorder.span_in(Stage::Request, trace, 0);
    let scope = TraceScope::enter(root.trace_id(), root.id());
    let resp = execute_work(shared, core, work, claim_mask);
    drop(scope);
    root.finish(kind_code(kind), core.id());
    shared
        .metrics
        .record_latency_us(kind, start.elapsed().as_micros() as u64);
    resp
}

/// Draw a ticket on lane `lane` for this session and claim it immediately
/// when the lane is free and nobody is parked ahead; otherwise enqueue. The
/// ticket is drawn under the lane's queue lock so FIFO order matches
/// arrival order.
fn claim_or_enqueue(rx: &Reactor, lane: usize, token: u64) -> Option<OwnedLaneGuard> {
    let mut q = lock(&rx.lane_queues[lane]);
    let ticket = rx.shared.writer_lanes[lane].ticket();
    if q.is_empty() {
        if let Some(guard) = TicketLane::try_claim(&rx.shared.writer_lanes[lane], ticket) {
            return Some(guard);
        }
    }
    q.push_back((ticket, token));
    None
}

/// Advance a multi-lane claim without blocking: claim each unheld lane of
/// the mask in ascending index order until either every lane is held
/// (returns `true`) or one must be queued for (returns `false`; the session
/// parks and a future grant resumes the walk). Ascending order is the
/// deadlock-freedom invariant shared with the blocking transport.
fn advance_acquire(rx: &Reactor, token: u64, park: &mut LanePark) -> bool {
    loop {
        let from = park.held.last().map_or(0, |(k, _)| k + 1);
        let Some(lane) = (from..rx.shared.writer_lanes.len()).find(|k| park.mask >> k & 1 != 0)
        else {
            return true;
        };
        match claim_or_enqueue(rx, lane, token) {
            Some(guard) => park.held.push((lane, guard)),
            None => return false,
        }
    }
}

/// A parked claim completed: perform the deferred action. One-shot work
/// releases its lanes immediately; an opened unit keeps them until it
/// settles.
fn finish_park(rx: &Reactor, st: &mut ConnState, park: LanePark, pump: &mut Vec<usize>) {
    match park.what {
        LanePending::OpenUnit => {
            // Detached: this worker thread serves other sessions next, so
            // the unit must not stay bound to it. Each of the unit's
            // request slices re-binds via `with_unit_bound`.
            let token = rx.shared.db.db().begin_unit_detached();
            st.core.unit_opened();
            st.last_activity = Instant::now();
            st.unit = Some(UnitState {
                token,
                guards: park.held,
            });
        }
        LanePending::Work {
            work,
            kind,
            start,
            trace,
        } => {
            let resp = run_work(rx, &mut st.core, work, park.mask, kind, start, trace);
            push_msg(&rx.shared, st, trace, &resp);
            release_guards(park.held, pump);
        }
    }
}

/// Serve one scheduled wake-up of a connection: perform any lane grant,
/// read, run the state machine over every decodable frame, flush, and
/// decide between re-arming and teardown.
fn process_conn(rx: &Arc<Reactor>, conn: &Arc<Conn>) {
    let mut pump = Vec::new();
    let fate = {
        let mut st = lock(&conn.state);
        if st.dead {
            drop(st);
            if let Some((lane, guard)) = lock(&rx.grants).remove(&conn.token) {
                drop(guard);
                pump_lane(rx, lane);
            }
            return;
        }
        if rx.shared.shutting_down.load(Ordering::SeqCst) {
            st.closing = true;
        }
        match conn.kind {
            ConnKind::Http => process_http(rx, conn, &mut st),
            ConnKind::Db => process_db(rx, conn, &mut st, &mut pump),
        }
    };
    for lane in pump {
        pump_lane(rx, lane);
    }
    match fate {
        Fate::Teardown => teardown(rx, conn, false),
        Fate::Arm(interest) => {
            if rx
                .poller
                .rearm(conn.stream.as_raw_fd(), conn.token, interest)
                .is_err()
            {
                teardown(rx, conn, false);
            }
        }
        // Parked for the lane with nothing left to write: the grant (or
        // teardown) reschedules us; no readiness interest at all.
        Fate::Parked => {}
    }
}

enum Fate {
    Teardown,
    Arm(u32),
    Parked,
}

fn process_db(
    rx: &Arc<Reactor>,
    conn: &Arc<Conn>,
    st: &mut ConnState,
    pump: &mut Vec<usize>,
) -> Fate {
    // 1. A lane grant parked for this session? Fold it into the in-flight
    //    claim and keep walking the mask; the deferred action runs only
    //    once every lane is held.
    if let Some((lane, guard)) = lock(&rx.grants).remove(&conn.token) {
        match st.pending.take() {
            Some(mut park) => {
                park.held.push((lane, guard));
                if advance_acquire(rx, conn.token, &mut park) {
                    finish_park(rx, st, park, pump);
                } else {
                    st.pending = Some(park);
                }
            }
            None => {
                drop(guard);
                pump.push(lane);
            }
        }
    }
    // 2. Pull in whatever the socket has (unless we are parked — the kernel
    //    buffers a parked session's backlog, like a blocked thread would).
    if st.pending.is_none() && !st.eof {
        read_ready(conn, st);
    }
    // 3. Run the state machine over every decodable frame, flushing as the
    //    encoder fills; backpressure pauses decoding until the socket
    //    drains.
    loop {
        let mut backpressured = false;
        while st.pending.is_none() && !st.closing && !st.dead {
            if st.encoder.pending().len() >= HIGH_WATER {
                backpressured = true;
                break;
            }
            match st.decoder.next_msg::<Request>() {
                Ok(Some((wire_trace, req))) => handle_request(rx, conn, st, wire_trace, req, pump),
                Ok(None) => break,
                Err(e) => {
                    if matches!(e, ServerError::Frame(_) | ServerError::Codec(_)) {
                        rx.shared
                            .metrics
                            .protocol_errors
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    // A torn or corrupt stream cannot be resynchronised.
                    st.closing = true;
                    break;
                }
            }
        }
        flush(conn, st);
        if backpressured && st.encoder.pending().len() < HIGH_WATER && !st.dead {
            continue;
        }
        break;
    }
    // 4. Fate.
    if st.dead {
        return Fate::Teardown;
    }
    if (st.closing || st.eof) && st.encoder.is_empty() {
        return Fate::Teardown;
    }
    let mut interest = 0u32;
    if !st.encoder.is_empty() {
        interest |= EV_WRITE;
    }
    if !st.eof && !st.closing && st.pending.is_none() && st.encoder.pending().len() < HIGH_WATER {
        interest |= EV_READ;
    }
    if interest == 0 {
        Fate::Parked
    } else {
        Fate::Arm(interest)
    }
}

/// Advance the sans-io state machine by one decoded frame and perform the
/// resulting step, mirroring the blocking transport's bookkeeping (request
/// counters, root span, latency histogram) exactly.
fn handle_request(
    rx: &Arc<Reactor>,
    conn: &Arc<Conn>,
    st: &mut ConnState,
    wire_trace: TraceId,
    req: Request,
    pump: &mut Vec<usize>,
) {
    let shared = &rx.shared;
    let start = Instant::now();
    let kind = req.kind_name();
    shared.metrics.count_request(kind);
    // Same adoption rule as the blocking transport: a client-stamped trace
    // id wins, a blank envelope gets a minted one, and the id is echoed in
    // every response envelope of this request.
    let trace = crate::server::adopt_trace(&shared.recorder, wire_trace);
    let root = shared.recorder.span_in(Stage::Request, trace, 0);
    let scope = TraceScope::enter(root.trace_id(), root.id());
    let mut parked = false;
    match st.core.on_request(req) {
        Step::Reply(resp) => push_msg(shared, st, trace, &resp),
        Step::ReplyClose(resp) => {
            push_msg(shared, st, trace, &resp);
            st.closing = true;
        }
        Step::ShutdownAfter(resp) => {
            push_msg(shared, st, trace, &resp);
            initiate_shutdown(shared);
            st.closing = true;
        }
        Step::OpenUnit => {
            // Ack first (it goes out even while we queue for the lanes),
            // then claim or park — never block a worker on a lane. A
            // streamed unit's ops arrive one frame at a time, so no shard
            // mask can be inferred up front: claim every lane.
            push_msg(shared, st, trace, &Response::Ack);
            let mut park = LanePark {
                what: LanePending::OpenUnit,
                mask: crate::server::all_lanes_mask(shared),
                held: Vec::new(),
            };
            if advance_acquire(rx, conn.token, &mut park) {
                finish_park(rx, st, park, pump);
            } else {
                st.pending = Some(park);
                parked = true;
            }
        }
        Step::Do(Work::UnitCommit) => {
            let unit = st.unit.take().expect("unit state");
            let resp = match shared.db.db().commit_unit(unit.token) {
                Ok(()) => {
                    shared
                        .metrics
                        .units_committed
                        .fetch_add(1, Ordering::Relaxed);
                    Response::Ack
                }
                // commit_unit rolls the unit back itself on failure.
                Err(e) => Response::Error {
                    kind: ErrorKind::Db,
                    message: e.to_string(),
                },
            };
            st.core.unit_closed();
            push_msg(shared, st, trace, &resp);
            release_guards(unit.guards, pump);
        }
        Step::Do(Work::UnitAbort) => {
            let unit = st.unit.take().expect("unit state");
            shared.db.db().abort_unit(unit.token);
            shared.metrics.units_aborted.fetch_add(1, Ordering::Relaxed);
            st.core.unit_closed();
            push_msg(shared, st, trace, &Response::Ack);
            release_guards(unit.guards, pump);
        }
        Step::Do(work) => {
            // Infer the lane mask once, here; it travels with the park so
            // the shard claim and the held lanes cannot drift apart.
            let mask = crate::server::lane_mask_for(shared, &work);
            if mask == 0 {
                // In-unit slices (ops, unpinned queries) run on whichever
                // worker is handy; bind the thread to the session's unit for
                // the slice so journaling and claim routing follow the unit,
                // not the thread.
                let resp = match &st.unit {
                    Some(unit) => {
                        let core = &mut st.core;
                        shared
                            .db
                            .db()
                            .with_unit_bound(&unit.token, |_| execute_work(shared, core, work, 0))
                    }
                    None => execute_work(shared, &mut st.core, work, 0),
                };
                push_msg(shared, st, trace, &resp);
            } else {
                let mut park = LanePark {
                    what: LanePending::Work {
                        work,
                        kind,
                        start,
                        trace,
                    },
                    mask,
                    held: Vec::new(),
                };
                if advance_acquire(rx, conn.token, &mut park) {
                    let LanePending::Work { work, .. } = park.what else {
                        unreachable!("park built with Work")
                    };
                    let resp = execute_work(shared, &mut st.core, work, mask);
                    push_msg(shared, st, trace, &resp);
                    release_guards(park.held, pump);
                } else {
                    st.pending = Some(park);
                    parked = true;
                }
            }
        }
    }
    drop(scope);
    root.finish(kind_code(kind), st.core.id());
    if !parked {
        shared
            .metrics
            .record_latency_us(kind, start.elapsed().as_micros() as u64);
    }
}

/// Serve one `GET /metrics` scrape: parse the request head, render the
/// exposition from the live counters, write, close.
fn process_http(rx: &Arc<Reactor>, conn: &Arc<Conn>, st: &mut ConnState) -> Fate {
    if st.http_out.is_empty() && !st.eof {
        read_ready(conn, st);
    }
    if st.http_out.is_empty() {
        if let Some(end) = find_head_end(&st.http_in) {
            let head = String::from_utf8_lossy(&st.http_in[..end]);
            let mut parts = head.lines().next().unwrap_or("").split_whitespace();
            let method = parts.next().unwrap_or("");
            let path = parts.next().unwrap_or("");
            let (status, body) = if method != "GET" {
                ("405 Method Not Allowed", "method not allowed\n".to_string())
            } else if path == "/metrics" || path.starts_with("/metrics?") {
                ("200 OK", render_scrape(&rx.shared))
            } else {
                (
                    "404 Not Found",
                    "not found; metrics are at /metrics\n".to_string(),
                )
            };
            st.http_out = format!(
                "HTTP/1.1 {status}\r\n\
                 Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
                 Content-Length: {}\r\n\
                 Connection: close\r\n\r\n{body}",
                body.len(),
            )
            .into_bytes();
            st.closing = true;
        } else if st.http_in.len() > HTTP_HEAD_MAX {
            return Fate::Teardown;
        }
    }
    while st.http_pos < st.http_out.len() {
        match (&conn.stream).write(&st.http_out[st.http_pos..]) {
            Ok(0) => return Fate::Teardown,
            Ok(n) => st.http_pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Fate::Teardown,
        }
    }
    let flushed = st.http_pos >= st.http_out.len();
    if st.eof && st.http_out.is_empty() {
        return Fate::Teardown;
    }
    if st.closing && flushed {
        return Fate::Teardown;
    }
    if flushed {
        Fate::Arm(EV_READ)
    } else {
        Fate::Arm(EV_WRITE)
    }
}

/// The scrape body: the same renderer `harness stats --format=prometheus`
/// uses, over the same snapshot a wire `Stats` request would return.
fn render_scrape(shared: &Shared) -> String {
    let server: MetricsSnapshot = metrics_snapshot(shared);
    let storage = shared.db.stats();
    crate::exposition::render_prometheus_exposition(&server, &storage)
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}
