//! The concurrent TCP server.
//!
//! ## Architecture
//!
//! ```text
//!            accept loop (1 thread)
//!                 │  mpsc channel of connections
//!                 ▼
//!   worker pool (N threads) ── one session per worker at a time
//!                 │
//!        ┌────────┴─────────┐
//!        ▼                  ▼
//!   read requests      writer lane (FIFO ticket lock)
//!   (each query runs   — every mutating request (units, batches,
//!    on a pinned         PCL install, compact) passes through it,
//!    snapshot)            granted strictly in arrival order
//! ```
//!
//! The engine's discipline is single-writer / concurrent-reader (see
//! `tests/concurrency.rs`): queries are safe from any thread, while units of
//! work use one global, nestable unit state on the `Database`. The server
//! makes that safe over the wire by funnelling every mutating request
//! through the **writer lane** — a [`crate::lane::TicketLane`] a session
//! holds for the duration of a streamed unit (`UnitBegin` …
//! `UnitCommit`/`UnitAbort`) or one batch, granted in FIFO order so no
//! session can barge past queued writers. A connection that drops while
//! holding an open unit has the unit rolled back before the lane is
//! released, so a killed client can never leave a half-applied unit behind;
//! a connection that merely goes *silent* mid-unit is timed out after
//! [`ServerConfig::unit_idle_timeout`], its unit rolled back and the lane
//! freed, and the client learns via a typed [`ErrorKind::UnitTimedOut`]
//! error on its next request.
//!
//! Queries outside a unit evaluate against a pinned
//! [`prometheus_db::ReadView`] snapshot: they never touch the store mutex or
//! the writer lane, so readers are oblivious to even a long-streaming
//! writer. Queries *inside* a unit stay on the live database, preserving
//! read-your-own-writes.
//!
//! ## Shutdown
//!
//! [`ServerHandle::shutdown`] (or a wire `Request::Shutdown`) flips the
//! shutdown flag, wakes the accept loop, and half-closes the read side of
//! every live session. In-flight requests finish and their responses are
//! delivered; the next read on each session observes EOF, open units are
//! rolled back, and the worker threads drain and exit. [`ServerHandle`]
//! joins all threads on drop, so no test or embedder leaks threads.

use crate::error::{ErrorKind, ServerError, ServerResult};
use crate::frame::{read_msg, write_msg};
use crate::lane::{LaneGuard, TicketLane};
use crate::metrics::{MetricsSnapshot, ServerMetrics, REQUEST_KINDS};
use crate::protocol::{
    MutationOp, ReplicaStatusInfo, Request, Response, WireRows, PROTOCOL_VERSION,
};
use crate::replica::ReplicaInfo;
use crate::session::Session;
use crate::slowlog::{SlowLog, SlowLogEntry};
use prometheus_db::{Database, DbResult, Oid, Prometheus, Value};
use prometheus_pool::{Executor, StatementKind};
use prometheus_trace::{Recorder, Stage, TraceEvent, TraceScope};
use std::collections::HashMap;
use std::io::{BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

/// Tuning knobs for [`serve`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind; use port 0 for an ephemeral port (tests, loadgen).
    pub addr: String,
    /// Fixed worker-thread pool size. Each live session occupies one worker
    /// for its lifetime, so this bounds concurrent sessions; further
    /// connections queue until a worker frees up.
    pub workers: usize,
    /// How long a streamed unit may sit silent (no frame from the client)
    /// while holding the writer lane before the server rolls it back and
    /// frees the lane for queued writers.
    pub unit_idle_timeout: Duration,
    /// Degree of parallelism for each pinned (out-of-unit) query: the worker
    /// budget of the shared [`prometheus_pool::Executor`]. `0` means auto —
    /// use the machine's available parallelism. `1` forces sequential
    /// execution. Results are identical either way; only latency changes.
    pub parallelism: usize,
    /// Queries at or above this wall-clock land in the slow-query log
    /// (fetch with `Request::SlowLog`). `Duration::ZERO` logs every query —
    /// useful in tests and when characterising a workload.
    pub slow_query_threshold: Duration,
    /// Capacity (events) of the trace ring shared by every layer — request
    /// framing, lane waits, plan cache, execution stages, storage commits.
    /// `0` disables tracing entirely (spans become no-ops; `PROFILE` returns
    /// an empty span tree).
    pub trace_capacity: usize,
    /// `Some` marks this server as a read-only replication follower: every
    /// mutating verb is rejected with a typed
    /// [`ErrorKind::ReadOnlyReplica`] error naming the primary, and
    /// `Request::ReplicaStatus` answers from the follower's
    /// [`crate::replica::ReplicaStatusCell`] instead of the local store.
    /// `None` (the default) is a normal primary.
    pub replica: Option<ReplicaInfo>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 8,
            unit_idle_timeout: Duration::from_secs(30),
            parallelism: 0,
            slow_query_threshold: Duration::from_millis(100),
            trace_capacity: Recorder::DEFAULT_CAPACITY,
            replica: None,
        }
    }
}

/// State shared by the accept loop, the worker pool and the handle.
struct Shared {
    db: Prometheus,
    metrics: ServerMetrics,
    /// Plan-caching, morsel-parallel POOL executor for pinned queries. One
    /// instance across all sessions, so every session shares every other
    /// session's cached plans.
    executor: Executor,
    /// The writer lane: serialises every mutating request in FIFO arrival
    /// order, preserving the engine's single-writer discipline across
    /// sessions without letting any session barge the queue.
    writer_lane: TicketLane,
    /// Idle deadline for streamed units holding the lane.
    unit_idle_timeout: Duration,
    /// One span recorder across every layer: the store, the rule engine,
    /// the executor and the server itself all record into this ring, so a
    /// request's whole span tree shares one trace id.
    recorder: Recorder,
    /// Bounded log of queries slower than `slow_query_threshold`.
    slow_log: SlowLog,
    slow_query_threshold: Duration,
    shutting_down: AtomicBool,
    next_session: AtomicU64,
    /// Read-half clones of live session sockets, for shutdown.
    conns: Mutex<HashMap<u64, TcpStream>>,
    addr: SocketAddr,
    /// `Some` when serving as a read-only replication follower.
    replica: Option<ReplicaInfo>,
}

/// Recover from a poisoned lock: the protected state (the connection
/// hand-off queue, the socket registry) stays consistent across a panicking
/// thread, so it is safe to reuse. The writer lane does its own poison
/// recovery inside [`TicketLane`].
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Start serving `db` on `config.addr`; returns once the listener is bound.
///
/// The handle owns the database: stop the server (drop or
/// [`ServerHandle::stop`]) before reopening the same path elsewhere.
pub fn serve(db: Prometheus, config: ServerConfig) -> ServerResult<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let parallelism = if config.parallelism == 0 {
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        config.parallelism
    };
    let recorder = if config.trace_capacity == 0 {
        Recorder::disabled()
    } else {
        Recorder::new(config.trace_capacity)
    };
    // One recorder everywhere: storage commit/fsync/compact spans, rule
    // firing, plan-cache lookups and execution stages all land in the same
    // ring as the server's own request and lane-wait spans.
    db.set_recorder(recorder.clone());
    let executor = Executor::new(parallelism);
    executor.set_recorder(recorder.clone());
    let shared = Arc::new(Shared {
        db,
        metrics: ServerMetrics::default(),
        executor,
        writer_lane: TicketLane::new(),
        unit_idle_timeout: config.unit_idle_timeout,
        recorder,
        slow_log: SlowLog::default(),
        slow_query_threshold: config.slow_query_threshold,
        shutting_down: AtomicBool::new(false),
        next_session: AtomicU64::new(1),
        conns: Mutex::new(HashMap::new()),
        addr,
        replica: config.replica,
    });
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let mut workers = Vec::with_capacity(config.workers.max(1));
    for i in 0..config.workers.max(1) {
        let rx = Arc::clone(&rx);
        let shared = Arc::clone(&shared);
        let handle = thread::Builder::new()
            .name(format!("prometheus-worker-{i}"))
            .spawn(move || worker_loop(shared, rx))?;
        workers.push(handle);
    }
    let accept = {
        let shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("prometheus-accept".into())
            .spawn(move || accept_loop(shared, listener, tx))?
    };
    Ok(ServerHandle {
        shared,
        accept: Some(accept),
        workers,
    })
}

/// A running server: address, metrics, shutdown and join.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Point-in-time server counters (also available over the wire).
    pub fn metrics(&self) -> MetricsSnapshot {
        metrics_snapshot(&self.shared)
    }

    /// Whether shutdown has been initiated.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::SeqCst)
    }

    /// Initiate graceful shutdown: stop accepting, finish in-flight
    /// requests, roll back open units, close sessions. Idempotent.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.shared);
    }

    /// Block until every server thread has exited.
    pub fn join(mut self) {
        self.join_threads();
    }

    /// [`ServerHandle::shutdown`] then [`ServerHandle::join`].
    pub fn stop(mut self) {
        initiate_shutdown(&self.shared);
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        initiate_shutdown(&self.shared);
        self.join_threads();
    }
}

fn initiate_shutdown(shared: &Arc<Shared>) {
    if shared.shutting_down.swap(true, Ordering::SeqCst) {
        return; // already in progress
    }
    // Wake the accept loop so it observes the flag.
    let _ = TcpStream::connect(shared.addr);
    // Half-close every live session: pending responses still flush, the
    // next read sees EOF and the session winds down (aborting open units).
    for stream in lock(&shared.conns).values() {
        let _ = stream.shutdown(Shutdown::Read);
    }
}

fn accept_loop(shared: Arc<Shared>, listener: TcpListener, tx: mpsc::Sender<TcpStream>) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(s) => {
                shared
                    .metrics
                    .connections_accepted
                    .fetch_add(1, Ordering::Relaxed);
                if tx.send(s).is_err() {
                    break;
                }
            }
            Err(_) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
            }
        }
    }
    // Dropping the sender lets workers drain queued connections and exit.
}

fn worker_loop(shared: Arc<Shared>, rx: Arc<Mutex<mpsc::Receiver<TcpStream>>>) {
    loop {
        // Take the receiver lock only while waiting for a connection, not
        // while serving one, so idle workers keep accepting hand-offs.
        let next = {
            let guard = lock(&rx);
            guard.recv()
        };
        match next {
            Ok(stream) => serve_connection(&shared, stream),
            Err(_) => break, // accept loop gone and queue drained
        }
    }
}

fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_nodelay(true);
    if let Ok(clone) = stream.try_clone() {
        lock(&shared.conns).insert(id, clone);
    }
    shared
        .metrics
        .connections_active
        .fetch_add(1, Ordering::Relaxed);
    // Session errors are per-connection: counted in metrics, never fatal to
    // the server. That includes panics — a worker thread serves many
    // connections over its lifetime, so an unwinding session must not kill
    // it (or skip the bookkeeping below).
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_session(shared, id, stream)
    }));
    lock(&shared.conns).remove(&id);
    shared
        .metrics
        .connections_active
        .fetch_sub(1, Ordering::Relaxed);
}

/// Index of a request kind in [`REQUEST_KINDS`]; recorded as `c0` of the
/// root `request` span so traces can be bucketed without the query text.
fn kind_code(kind: &str) -> u64 {
    REQUEST_KINDS.iter().position(|k| *k == kind).unwrap_or(0) as u64
}

/// Acquire the writer lane, timing the queue wait as a `lane_wait` span:
/// `c0` is the ticket distance at draw time (holders ahead in the FIFO),
/// `c1 = 1` marks a real acquisition — pinned queries record a synthetic
/// zero-wait span with `c1 = 0` instead, see `profile_query`.
fn acquire_lane(shared: &Shared) -> LaneGuard<'_> {
    let span = shared.recorder.span(Stage::LaneWait);
    let (ticket, distance) = shared.writer_lane.ticket_with_distance();
    let guard = shared.writer_lane.wait(ticket);
    span.finish(distance, 1);
    guard
}

/// What the outer session loop should do after a request.
enum Flow {
    Continue,
    Close,
    /// `UnitBegin` was acknowledged; enter the streamed-unit sub-loop.
    EnterUnit,
}

fn run_session(shared: &Arc<Shared>, id: u64, stream: TcpStream) -> ServerResult<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut session = Session::new(id);
    if shared.shutting_down.load(Ordering::SeqCst) {
        let _ = write_msg(
            &mut writer,
            &Response::Error {
                kind: ErrorKind::ShuttingDown,
                message: "server is shutting down".into(),
            },
        );
        return Ok(());
    }
    loop {
        let req: Request = match read_msg(&mut reader) {
            Ok(r) => r,
            Err(ServerError::Disconnected) => return Ok(()),
            Err(e) => {
                if matches!(e, ServerError::Frame(_) | ServerError::Codec(_)) {
                    shared
                        .metrics
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                }
                return Err(e);
            }
        };
        let start = Instant::now();
        let kind = req.kind_name();
        shared.metrics.count_request(kind);
        // Root span for this request: while it is the thread's trace scope,
        // every span any layer records (lane wait, plan cache, execution,
        // storage commit…) attaches to this trace.
        let root = shared
            .recorder
            .span_in(Stage::Request, shared.recorder.new_trace_id(), 0);
        let scope = TraceScope::enter(root.trace_id(), root.id());
        let flow = dispatch(shared, &mut session, &mut writer, req);
        drop(scope);
        root.finish(kind_code(kind), session.id);
        let flow = flow?;
        shared
            .metrics
            .record_latency_us(kind, start.elapsed().as_micros() as u64);
        match flow {
            Flow::EnterUnit => run_unit(shared, &mut session, &mut reader, &mut writer)?,
            Flow::Close => return Ok(()),
            Flow::Continue => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return Ok(()); // drained: last response delivered
                }
            }
        }
    }
}

/// Handle one request outside a streamed unit.
fn dispatch(
    shared: &Arc<Shared>,
    session: &mut Session,
    writer: &mut BufWriter<TcpStream>,
    req: Request,
) -> ServerResult<Flow> {
    if !session.ready {
        return match req {
            Request::Hello { version, client } => {
                if version != PROTOCOL_VERSION {
                    shared
                        .metrics
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                    write_msg(
                        writer,
                        &Response::Error {
                            kind: ErrorKind::ProtocolMismatch,
                            message: format!(
                                "protocol version {version} unsupported (server speaks {PROTOCOL_VERSION})"
                            ),
                        },
                    )?;
                    Ok(Flow::Close)
                } else {
                    session.ready = true;
                    session.client = client;
                    write_msg(
                        writer,
                        &Response::Welcome {
                            version: PROTOCOL_VERSION,
                            session: session.id,
                        },
                    )?;
                    Ok(Flow::Continue)
                }
            }
            _ => {
                shared
                    .metrics
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                write_msg(
                    writer,
                    &Response::Error {
                        kind: ErrorKind::Protocol,
                        message: "handshake required: send Hello first".into(),
                    },
                )?;
                Ok(Flow::Close)
            }
        };
    }
    if session.unit_timed_out {
        // The unit this session was streaming hit the idle deadline and was
        // rolled back. Answer the next frame — whatever it asked — with the
        // typed error, so the client never acts on the assumption that the
        // unit is still open; then the session is back to normal.
        session.unit_timed_out = false;
        write_msg(
            writer,
            &Response::Error {
                kind: ErrorKind::UnitTimedOut,
                message: "unit of work idled past the server deadline and was rolled back".into(),
            },
        )?;
        return Ok(Flow::Continue);
    }
    // A follower is a full query endpoint but owns no redo log of its own —
    // its store is a replay of the primary's. Letting a write through would
    // fork the histories, so every mutating verb gets a typed error that
    // names where writes actually go.
    if let Some(replica) = &shared.replica {
        if is_mutating(&req) {
            shared.metrics.db_errors.fetch_add(1, Ordering::Relaxed);
            write_msg(
                writer,
                &Response::Error {
                    kind: ErrorKind::ReadOnlyReplica,
                    message: format!(
                        "this server is a read-only replica; send writes to the primary at {}",
                        replica.primary
                    ),
                },
            )?;
            return Ok(Flow::Continue);
        }
    }
    match req {
        Request::Hello { .. } => {
            protocol_error(shared, writer, "duplicate handshake")?;
            Ok(Flow::Continue)
        }
        Request::Ping => {
            write_msg(writer, &Response::Pong)?;
            Ok(Flow::Continue)
        }
        Request::Query { pool } => {
            respond_query(shared, session, writer, &pool, true)?;
            Ok(Flow::Continue)
        }
        Request::SetContext { classification } => {
            match &classification {
                Some(name) => match shared.db.db().classification_by_name(name) {
                    Ok(Some(_)) => {
                        session.context = classification;
                        write_msg(writer, &Response::Ack)?;
                    }
                    Ok(None) => {
                        db_error(shared, writer, format!("unknown classification '{name}'"))?;
                    }
                    Err(e) => db_error(shared, writer, e.to_string())?,
                },
                None => {
                    session.context = None;
                    write_msg(writer, &Response::Ack)?;
                }
            }
            Ok(Flow::Continue)
        }
        Request::InstallPcl { source } => {
            let _lane = acquire_lane(shared);
            match shared.db.install_pcl(&source) {
                Ok(rules) => write_msg(writer, &Response::Installed { rules })?,
                Err(e) => db_error(shared, writer, e.to_string())?,
            }
            Ok(Flow::Continue)
        }
        Request::UnitBegin => {
            write_msg(writer, &Response::Ack)?;
            Ok(Flow::EnterUnit)
        }
        Request::UnitOp { .. } | Request::UnitCommit | Request::UnitAbort => {
            protocol_error(shared, writer, "no unit of work is open on this session")?;
            Ok(Flow::Continue)
        }
        Request::UnitBatch { ops } => {
            let _lane = acquire_lane(shared);
            let db = shared.db.db();
            let result = db.in_unit_scope(|db| {
                let mut created = Vec::with_capacity(ops.len());
                for op in &ops {
                    created.push(apply_op(db, op)?.unwrap_or(Oid::NIL));
                }
                Ok(created)
            });
            match result {
                Ok(created) => {
                    shared
                        .metrics
                        .units_committed
                        .fetch_add(1, Ordering::Relaxed);
                    write_msg(writer, &Response::Batch { created })?;
                }
                Err(e) => db_error(shared, writer, e.to_string())?,
            }
            Ok(Flow::Continue)
        }
        Request::Compact => {
            let _lane = acquire_lane(shared);
            match shared.db.compact() {
                Ok(()) => write_msg(writer, &Response::Ack)?,
                Err(e) => db_error(shared, writer, e.to_string())?,
            }
            Ok(Flow::Continue)
        }
        Request::Stats => {
            write_stats(shared, writer)?;
            Ok(Flow::Continue)
        }
        Request::Trace { n } => {
            write_msg(
                writer,
                &Response::Trace {
                    events: shared.recorder.recent(n as usize),
                },
            )?;
            Ok(Flow::Continue)
        }
        Request::SlowLog { n } => {
            write_msg(
                writer,
                &Response::SlowLog {
                    entries: shared.slow_log.recent(n as usize),
                },
            )?;
            Ok(Flow::Continue)
        }
        Request::ReplicaPoll {
            follower,
            epoch,
            offset,
            max_bytes,
        } => {
            // Serve committed frames straight off the log file: the store
            // reads below its flushed horizon without the inner lock, so a
            // polling follower never contends with writers. `None` means the
            // cursor no longer matches this log (compaction bumped the
            // epoch, or the offsets diverged) — tell the follower to resync
            // from scratch rather than guess.
            let span = shared.recorder.span(Stage::ReplicaPoll);
            let store = shared.db.db().store();
            match store.read_frames(epoch, offset, max_bytes) {
                Ok(Some(batch)) => {
                    shared.metrics.record_follower_poll(
                        &follower,
                        batch.next_offset,
                        batch.log_len,
                    );
                    span.finish(
                        batch.frames.len() as u64,
                        batch.log_len.saturating_sub(batch.next_offset),
                    );
                    write_msg(
                        writer,
                        &Response::ReplicaFrames {
                            epoch: batch.epoch,
                            frames: batch.frames,
                            next_offset: batch.next_offset,
                            log_len: batch.log_len,
                        },
                    )?;
                }
                Ok(None) => {
                    let epoch = store.log_epoch();
                    let log_len = store.committed_log_len();
                    shared.metrics.record_follower_poll(&follower, 0, log_len);
                    span.finish(0, log_len);
                    write_msg(writer, &Response::ReplicaReset { epoch, log_len })?;
                }
                Err(e) => {
                    span.finish(0, 0);
                    db_error(shared, writer, e.to_string())?;
                }
            }
            Ok(Flow::Continue)
        }
        Request::ReplicaStatus => {
            write_msg(
                writer,
                &Response::ReplicaStatus(Box::new(replica_status_info(shared))),
            )?;
            Ok(Flow::Continue)
        }
        Request::Shutdown => {
            write_msg(writer, &Response::Ack)?;
            initiate_shutdown(shared);
            Ok(Flow::Close)
        }
        Request::Bye => {
            write_msg(writer, &Response::Goodbye)?;
            Ok(Flow::Close)
        }
    }
}

/// Streamed unit of work: the session holds the writer lane from `UnitBegin`
/// until the unit settles — or until the connection drops or goes silent
/// past the idle deadline, in which cases the unit is rolled back before the
/// lane is released.
fn run_unit(
    shared: &Arc<Shared>,
    session: &mut Session,
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
) -> ServerResult<()> {
    let _lane = acquire_lane(shared);
    let db = shared.db.db();
    // While this session holds the lane, silence is billed: arm a read
    // timeout so a stalled client cannot block queued writers forever.
    let _ = reader
        .get_ref()
        .set_read_timeout(Some(shared.unit_idle_timeout));
    let mut token = Some(db.begin_unit());
    let mut timed_out = false;
    let outcome: ServerResult<()> = loop {
        let req: Request = match read_msg(reader) {
            Ok(r) => r,
            // The deadline covers the common stall — silence *between*
            // frames. (A client that stalls mid-frame desyncs the stream and
            // surfaces later as a frame error, closing the session.)
            Err(ServerError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                timed_out = true;
                break Ok(());
            }
            Err(e) => break Err(e),
        };
        let start = Instant::now();
        let kind = req.kind_name();
        shared.metrics.count_request(kind);
        let root = shared
            .recorder
            .span_in(Stage::Request, shared.recorder.new_trace_id(), 0);
        let scope = TraceScope::enter(root.trace_id(), root.id());
        let step: ServerResult<bool> = match req {
            Request::UnitOp { op } => {
                // A failed op leaves the unit open: the client chooses to
                // retry differently, commit what succeeded, or abort —
                // exactly the in-process unit semantics.
                match apply_op(db, &op) {
                    Ok(Some(oid)) => write_msg(writer, &Response::Created { oid }).map(|_| false),
                    Ok(None) => write_msg(writer, &Response::Ack).map(|_| false),
                    Err(e) => db_error(shared, writer, e.to_string()).map(|_| false),
                }
            }
            Request::Query { pool } => {
                // In-unit reads stay on the live database: the session must
                // see its own uncommitted operations.
                respond_query(shared, session, writer, &pool, false).map(|_| false)
            }
            Request::Ping => write_msg(writer, &Response::Pong).map(|_| false),
            Request::Stats => write_stats(shared, writer).map(|_| false),
            Request::UnitCommit => {
                let result = db.commit_unit(token.take().expect("unit token"));
                match result {
                    Ok(()) => {
                        shared
                            .metrics
                            .units_committed
                            .fetch_add(1, Ordering::Relaxed);
                        write_msg(writer, &Response::Ack).map(|_| true)
                    }
                    Err(e) => {
                        // commit_unit rolls the unit back itself on failure.
                        db_error(shared, writer, e.to_string()).map(|_| true)
                    }
                }
            }
            Request::UnitAbort => {
                db.abort_unit(token.take().expect("unit token"));
                shared.metrics.units_aborted.fetch_add(1, Ordering::Relaxed);
                write_msg(writer, &Response::Ack).map(|_| true)
            }
            other => protocol_error(
                shared,
                writer,
                &format!(
                    "request '{}' is not allowed inside a unit of work",
                    other.kind_name()
                ),
            )
            .map(|_| false),
        };
        drop(scope);
        root.finish(kind_code(kind), session.id);
        shared
            .metrics
            .record_latency_us(kind, start.elapsed().as_micros() as u64);
        match step {
            Ok(true) => break Ok(()),
            Ok(false) => {}
            Err(e) => break Err(e),
        }
    };
    let _ = reader.get_ref().set_read_timeout(None);
    if timed_out {
        if let Some(token) = token.take() {
            // Journal-rollback the half-streamed unit, then let the lane go
            // (we return, dropping the guard) so queued writers proceed. The
            // session itself survives; the client is told on its next frame.
            db.abort_unit(token);
        }
        shared
            .metrics
            .units_timed_out
            .fetch_add(1, Ordering::Relaxed);
        session.unit_timed_out = true;
        return Ok(());
    }
    if let Some(token) = token.take() {
        // Connection dropped (or transport failed) mid-unit: roll back so
        // no half-applied unit is ever visible or durable.
        db.abort_unit(token);
        shared
            .metrics
            .units_rolled_back_on_disconnect
            .fetch_add(1, Ordering::Relaxed);
    }
    outcome
}

/// Parse, contextualise and evaluate a POOL statement for this session;
/// returns the wire rows plus the fingerprint of the plan that ran (0 when
/// no cached plan was involved: unpinned in-unit selects, `EXPLAIN`).
///
/// With `pinned`, the whole query (traversals included) runs against one
/// immutable [`prometheus_db::ReadView`] snapshot: no store mutex, no cache
/// locks, no interaction with the writer lane. Unpinned queries run on the
/// live database — required inside a unit, where the session must observe
/// its own uncommitted writes.
///
/// The statement may carry an `EXPLAIN` or `PROFILE` verb: `EXPLAIN`
/// answers with the (cached or freshly derived) plan rendered as one-column
/// rows; `PROFILE` executes under a fresh trace and answers with the span
/// tree. Both share the bare query's plan-cache entry — the verb is
/// stripped before the cache key is formed.
fn run_query(
    shared: &Arc<Shared>,
    session: &Session,
    pool: &str,
    pinned: bool,
) -> DbResult<(WireRows, u64)> {
    let (verb, text) = prometheus_pool::split_statement(pool);
    match verb {
        StatementKind::Select => {
            if pinned {
                // The executor applies the session context exactly like
                // `Session::effective_context`: the query's own clause wins.
                // Its plan cache keys on (context, text), so distinct
                // contexts never share a contextualised plan.
                let (result, plan) = shared.executor.query_with_plan(
                    &shared.db.read_view(),
                    text,
                    session.context.as_deref(),
                )?;
                Ok((result.into(), plan.fingerprint))
            } else {
                let mut query = prometheus_pool::parse(text)?;
                query.context = session.effective_context(query.context.take());
                let result = prometheus_pool::eval::evaluate(shared.db.db(), &query)?;
                Ok((result.into(), 0))
            }
        }
        StatementKind::Explain => {
            let lines = if pinned {
                shared
                    .executor
                    .explain(&shared.db.read_view(), text, session.context.as_deref())?
            } else {
                shared
                    .executor
                    .explain(shared.db.db(), text, session.context.as_deref())?
            };
            let rows = lines.into_iter().map(|l| vec![Value::Str(l)]).collect();
            Ok((
                WireRows {
                    columns: vec!["plan".into()],
                    rows,
                },
                0,
            ))
        }
        StatementKind::Profile => profile_query(shared, session, text, pinned),
    }
}

/// `PROFILE <query>`: execute under a fresh trace id and answer with the
/// span tree — one row per span, parent-linked, with per-stage wall-clock
/// and counters (rows scanned, index seeding, worker counts, cache hits).
fn profile_query(
    shared: &Arc<Shared>,
    session: &Session,
    text: &str,
    pinned: bool,
) -> DbResult<(WireRows, u64)> {
    let rec = &shared.recorder;
    let trace_id = rec.new_trace_id();
    let root = rec.span_in(Stage::Request, trace_id, 0);
    let root_id = root.id();
    let ran = {
        let _scope = TraceScope::enter(trace_id, root_id);
        // Pinned queries never touch the writer lane — record the zero wait
        // explicitly (c1 = 0: synthetic) so the profile shows the stage
        // honestly instead of omitting it. In-unit profiles inherit the real
        // lane wait from `run_unit`'s acquisition, outside this trace.
        rec.span(Stage::LaneWait).finish(0, 0);
        // Both pinned and in-unit profiles go through the executor so the
        // plan cache, fingerprint and stage spans are all exercised; the
        // live-db reader keeps read-your-own-writes inside a unit.
        if pinned {
            shared.executor.query_with_plan(
                &shared.db.read_view(),
                text,
                session.context.as_deref(),
            )
        } else {
            shared
                .executor
                .query_with_plan(shared.db.db(), text, session.context.as_deref())
        }
    };
    let (result, plan) = ran?;
    root.finish(result.rows.len() as u64, plan.fingerprint);
    let events = rec.events_for(trace_id);
    Ok((profile_rows(&events), plan.fingerprint))
}

/// Render a trace's events as wire rows, one per span, depth-indented in
/// tree order (parents before children, siblings in start order).
fn profile_rows(events: &[TraceEvent]) -> WireRows {
    let depth_of = |mut parent: u64| {
        let mut depth = 0usize;
        while parent != 0 {
            match events.iter().find(|e| e.span_id == parent) {
                Some(p) => {
                    depth += 1;
                    parent = p.parent_id;
                }
                None => break, // parent span lost to ring overwrite
            }
        }
        depth
    };
    let rows = events
        .iter()
        .map(|ev| {
            vec![
                Value::Str(format!(
                    "{:indent$}{}",
                    "",
                    ev.stage,
                    indent = depth_of(ev.parent_id) * 2
                )),
                Value::Int(ev.start_us as i64),
                Value::Int(ev.dur_us as i64),
                Value::Int(ev.c0 as i64),
                Value::Int(ev.c1 as i64),
                Value::Int(ev.span_id as i64),
                Value::Int(ev.parent_id as i64),
            ]
        })
        .collect();
    WireRows {
        columns: vec![
            "stage".into(),
            "start_us".into(),
            "dur_us".into(),
            "c0".into(),
            "c1".into(),
            "span".into(),
            "parent".into(),
        ],
        rows,
    }
}

fn respond_query(
    shared: &Arc<Shared>,
    session: &Session,
    writer: &mut BufWriter<TcpStream>,
    pool: &str,
    pinned: bool,
) -> ServerResult<()> {
    let start = Instant::now();
    match run_query(shared, session, pool, pinned) {
        Ok((rows, fingerprint)) => {
            let elapsed = start.elapsed();
            if elapsed >= shared.slow_query_threshold {
                // The thread's current trace scope is the request root span
                // set up in `run_session`/`run_unit`, so the entry links to
                // the span tree still held by the trace ring.
                shared.slow_log.push(SlowLogEntry {
                    session: session.id,
                    query: pool.to_string(),
                    context: session.context.clone(),
                    trace_id: Recorder::current().0,
                    fingerprint,
                    dur_us: elapsed.as_micros() as u64,
                    rows: rows.len() as u64,
                    pinned,
                });
            }
            write_msg(writer, &Response::Rows(rows))
        }
        Err(e) => db_error(shared, writer, e.to_string()),
    }
}

/// Whether a request would mutate the database — the set a read-only
/// replication follower must reject. `Compact` counts: it rewrites the redo
/// log, and a follower's log is owned by its replication puller.
fn is_mutating(req: &Request) -> bool {
    matches!(
        req,
        Request::InstallPcl { .. }
            | Request::UnitBegin
            | Request::UnitOp { .. }
            | Request::UnitCommit
            | Request::UnitAbort
            | Request::UnitBatch { .. }
            | Request::Compact
    )
}

/// Answer `Request::ReplicaStatus` for either role. A primary reports its
/// own committed log as both ends of the cursor (zero lag by definition); a
/// follower reports the puller's live progress cell.
fn replica_status_info(shared: &Shared) -> ReplicaStatusInfo {
    match &shared.replica {
        Some(info) => ReplicaStatusInfo {
            role: "replica".into(),
            primary: Some(info.primary.clone()),
            epoch: info.status.epoch(),
            log_len: info.status.primary_log_len(),
            applied_offset: info.status.applied_offset(),
            caught_up_age_us: info.status.caught_up_age_us(),
            resyncs: info.status.resyncs(),
        },
        None => {
            let store = shared.db.db().store();
            let len = store.committed_log_len();
            ReplicaStatusInfo {
                role: "primary".into(),
                primary: None,
                epoch: store.log_epoch(),
                log_len: len,
                applied_offset: len,
                caught_up_age_us: 0,
                resyncs: 0,
            }
        }
    }
}

/// Server counters plus the query executor's, as one wire-ready snapshot.
fn metrics_snapshot(shared: &Shared) -> MetricsSnapshot {
    let mut snap = shared.metrics.snapshot(&shared.executor.stats());
    // Lag is measured against the commit horizon *now*, not the horizon at
    // the follower's last poll: a follower that fully drained its last batch
    // is still behind by whatever committed since.
    let committed = shared.db.db().store().committed_log_len();
    for f in &mut snap.replication {
        f.log_len = f.log_len.max(committed);
        f.lag_bytes = f.log_len.saturating_sub(f.next_offset);
    }
    snap
}

fn write_stats(shared: &Arc<Shared>, writer: &mut BufWriter<TcpStream>) -> ServerResult<()> {
    write_msg(
        writer,
        &Response::Stats {
            server: Box::new(metrics_snapshot(shared)),
            storage: shared.db.stats(),
        },
    )
}

fn db_error(
    shared: &Arc<Shared>,
    writer: &mut BufWriter<TcpStream>,
    message: String,
) -> ServerResult<()> {
    shared.metrics.db_errors.fetch_add(1, Ordering::Relaxed);
    write_msg(
        writer,
        &Response::Error {
            kind: ErrorKind::Db,
            message,
        },
    )
}

fn protocol_error(
    shared: &Arc<Shared>,
    writer: &mut BufWriter<TcpStream>,
    message: &str,
) -> ServerResult<()> {
    shared
        .metrics
        .protocol_errors
        .fetch_add(1, Ordering::Relaxed);
    write_msg(
        writer,
        &Response::Error {
            kind: ErrorKind::Protocol,
            message: message.into(),
        },
    )
}

/// Apply one wire mutation through the object layer (full §4.4 semantics).
fn apply_op(db: &Database, op: &MutationOp) -> DbResult<Option<Oid>> {
    match op {
        MutationOp::CreateObject { class, attrs } => {
            db.create_object(class, attrs.iter().cloned()).map(Some)
        }
        MutationOp::SetAttr { oid, attr, value } => {
            db.set_attr(*oid, attr, value.clone()).map(|_| None)
        }
        MutationOp::DeleteObject { oid } => db.delete_object(*oid).map(|_| None),
        MutationOp::CreateRelationship {
            class,
            origin,
            destination,
            attrs,
        } => db
            .create_relationship(class, *origin, *destination, attrs.iter().cloned())
            .map(Some),
        MutationOp::DeleteRelationship { oid } => db.delete_relationship(*oid).map(|_| None),
        MutationOp::CreateClassification {
            name,
            attrs,
            strict_hierarchy,
        } => db
            .create_classification(name, attrs.iter().cloned(), *strict_hierarchy)
            .map(Some),
        MutationOp::AddEdgeToClassification {
            classification,
            rel,
        } => db
            .add_edge_to_classification(*classification, *rel)
            .map(|_| None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::PrometheusClient;
    use prometheus_db::{StoreOptions, Value};
    use prometheus_taxonomy::Rank;

    fn tmp(name: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!(
            "prometheus-server-{name}-{}-{:?}.log",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn serve_taxonomy(name: &str, workers: usize) -> ServerHandle {
        let p = Prometheus::open_with(
            tmp(name),
            StoreOptions {
                sync_on_commit: false,
            },
        )
        .unwrap();
        let tax = p.taxonomy().unwrap();
        tax.create_ct("Apium", Rank::Genus).unwrap();
        tax.create_ct("Heliosciadium", Rank::Genus).unwrap();
        serve(
            p,
            ServerConfig {
                addr: "127.0.0.1:0".into(),
                workers,
                ..ServerConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn ping_query_stats_round_trip() {
        let handle = serve_taxonomy("roundtrip", 2);
        let mut client = PrometheusClient::connect(handle.addr()).unwrap();
        client.ping().unwrap();
        let rows = client
            .query("select t.working_name from CT t order by t.working_name")
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows.rows[0][0], Value::Str("Apium".into()));
        let (server, storage) = client.stats().unwrap();
        assert!(server.requests_of("query") >= 1);
        assert!(server.connections_active >= 1);
        assert!(storage.commits > 0, "seeding must show in storage counters");
        client.close().unwrap();
        handle.stop();
    }

    #[test]
    fn unit_batch_commits_and_bad_batch_rolls_back() {
        let handle = serve_taxonomy("batch", 2);
        let mut client = PrometheusClient::connect(handle.addr()).unwrap();
        let created = client
            .unit_batch(vec![MutationOp::CreateObject {
                class: "CT".into(),
                attrs: vec![
                    ("working_name".into(), Value::Str("Daucus".into())),
                    ("rank".into(), Value::Str("Genus".into())),
                ],
            }])
            .unwrap();
        assert_eq!(created.len(), 1);
        assert!(!created[0].is_nil());
        assert_eq!(client.query("select t from CT t").unwrap().len(), 3);
        // Second op is invalid: the whole batch must roll back.
        let err = client.unit_batch(vec![
            MutationOp::CreateObject {
                class: "CT".into(),
                attrs: vec![
                    ("working_name".into(), Value::Str("Lost".into())),
                    ("rank".into(), Value::Str("Genus".into())),
                ],
            },
            MutationOp::CreateObject {
                class: "NoSuchClass".into(),
                attrs: vec![],
            },
        ]);
        assert!(err.is_err());
        assert_eq!(client.query("select t from CT t").unwrap().len(), 3);
        client.close().unwrap();
        handle.stop();
    }

    #[test]
    fn streamed_unit_commit_and_abort() {
        let handle = serve_taxonomy("unit", 2);
        let mut client = PrometheusClient::connect(handle.addr()).unwrap();
        {
            let mut unit = client.begin_unit().unwrap();
            let oid = unit
                .create_object(
                    "CT",
                    vec![
                        ("working_name".into(), Value::Str("Kept".into())),
                        ("rank".into(), Value::Str("Genus".into())),
                    ],
                )
                .unwrap();
            assert!(!oid.is_nil());
            // Reads inside the unit see its own writes.
            assert_eq!(unit.query("select t from CT t").unwrap().len(), 3);
            unit.commit().unwrap();
        }
        assert_eq!(client.query("select t from CT t").unwrap().len(), 3);
        {
            let mut unit = client.begin_unit().unwrap();
            unit.create_object(
                "CT",
                vec![
                    ("working_name".into(), Value::Str("Dropped".into())),
                    ("rank".into(), Value::Str("Genus".into())),
                ],
            )
            .unwrap();
            unit.abort().unwrap();
        }
        assert_eq!(client.query("select t from CT t").unwrap().len(), 3);
        client.close().unwrap();
        handle.stop();
    }

    #[test]
    fn unit_guard_drop_aborts() {
        let handle = serve_taxonomy("guard", 2);
        let mut client = PrometheusClient::connect(handle.addr()).unwrap();
        {
            let mut unit = client.begin_unit().unwrap();
            unit.create_object(
                "CT",
                vec![
                    ("working_name".into(), Value::Str("Ghost".into())),
                    ("rank".into(), Value::Str("Genus".into())),
                ],
            )
            .unwrap();
            // Guard dropped without commit: abort is sent on Drop.
        }
        assert_eq!(client.query("select t from CT t").unwrap().len(), 2);
        client.close().unwrap();
        handle.stop();
    }

    #[test]
    fn idle_unit_times_out_rolls_back_and_frees_the_lane() {
        let p = Prometheus::open_with(
            tmp("timeout"),
            StoreOptions {
                sync_on_commit: false,
            },
        )
        .unwrap();
        let tax = p.taxonomy().unwrap();
        tax.create_ct("Apium", Rank::Genus).unwrap();
        let handle = serve(
            p,
            ServerConfig {
                addr: "127.0.0.1:0".into(),
                workers: 2,
                unit_idle_timeout: Duration::from_millis(150),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut stalled = PrometheusClient::connect(handle.addr()).unwrap();
        let mut other = PrometheusClient::connect(handle.addr()).unwrap();
        {
            let mut unit = stalled.begin_unit().unwrap();
            unit.create_object(
                "CT",
                vec![
                    ("working_name".into(), Value::Str("Ghost".into())),
                    ("rank".into(), Value::Str("Genus".into())),
                ],
            )
            .unwrap();
            // Go silent past the deadline. The server must roll the unit
            // back and free the writer lane — otherwise the other session's
            // batch below would block on the lane indefinitely.
            std::thread::sleep(Duration::from_millis(400));
            other
                .unit_batch(vec![MutationOp::CreateObject {
                    class: "CT".into(),
                    attrs: vec![
                        ("working_name".into(), Value::Str("Daucus".into())),
                        ("rank".into(), Value::Str("Genus".into())),
                    ],
                }])
                .unwrap();
            // The stalled session learns via the typed error on its next
            // frame, whatever that frame asks.
            match unit.query("select t from CT t") {
                Err(ServerError::Remote { kind, .. }) => {
                    assert_eq!(kind, ErrorKind::UnitTimedOut)
                }
                res => panic!("expected unit-timed-out error, got {res:?}"),
            }
            // Guard drop sends a best-effort UnitAbort; the server answers
            // it as protocol misuse (no unit open) and the client ignores
            // the response.
        }
        // The timed-out write is gone; the other session's batch survived,
        // and the stalled session itself is still usable.
        let rows = stalled
            .query("select t.working_name from CT t order by t.working_name")
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows.rows[0][0], Value::Str("Apium".into()));
        assert_eq!(rows.rows[1][0], Value::Str("Daucus".into()));
        assert!(handle.metrics().units_timed_out >= 1);
        stalled.close().unwrap();
        other.close().unwrap();
        handle.stop();
    }

    #[test]
    fn session_context_scopes_queries() {
        let p = Prometheus::open_with(
            tmp("context"),
            StoreOptions {
                sync_on_commit: false,
            },
        )
        .unwrap();
        let tax = p.taxonomy().unwrap();
        let cls = tax
            .new_classification("Linnaeus 1753", "L.", "habit")
            .unwrap();
        let genus = tax.create_ct("Apium", Rank::Genus).unwrap();
        let species = tax.create_ct("graveolens", Rank::Species).unwrap();
        tax.circumscribe(&cls, genus, species).unwrap();
        tax.create_ct("Orphan", Rank::Genus).unwrap(); // outside the classification
        let handle = serve(
            p,
            ServerConfig {
                addr: "127.0.0.1:0".into(),
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut client = PrometheusClient::connect(handle.addr()).unwrap();
        assert_eq!(client.query("select t from CT t").unwrap().len(), 3);
        client.set_context(Some("Linnaeus 1753")).unwrap();
        assert_eq!(client.query("select t from CT t").unwrap().len(), 2);
        client.set_context(None).unwrap();
        assert_eq!(client.query("select t from CT t").unwrap().len(), 3);
        assert!(client.set_context(Some("No Such Revision")).is_err());
        client.close().unwrap();
        handle.stop();
    }

    #[test]
    fn pinned_queries_share_the_plan_cache() {
        let handle = serve_taxonomy("plancache", 2);
        let mut a = PrometheusClient::connect(handle.addr()).unwrap();
        let mut b = PrometheusClient::connect(handle.addr()).unwrap();
        let q = "select t.working_name from CT t order by t.working_name";
        a.query(q).unwrap();
        // The cache is shared: a different session reuses the plan.
        b.query(q).unwrap();
        a.query(q).unwrap();
        let (server, _) = a.stats().unwrap();
        assert!(
            server.plan_cache_misses >= 1,
            "first run must plan: {server:?}"
        );
        assert!(
            server.plan_cache_hits >= 2,
            "repeats must hit the cached plan: {server:?}"
        );
        a.close().unwrap();
        b.close().unwrap();
        handle.stop();
    }

    #[test]
    fn protocol_misuse_is_reported() {
        let handle = serve_taxonomy("misuse", 2);
        let mut client = PrometheusClient::connect(handle.addr()).unwrap();
        // Commit without an open unit.
        let err = client.commit_orphan_unit();
        match err {
            Err(ServerError::Remote { kind, .. }) => assert_eq!(kind, ErrorKind::Protocol),
            other => panic!("expected protocol error, got {other:?}"),
        }
        // Bad POOL text is a db error; the session survives both.
        assert!(client.query("selec t frm").is_err());
        client.ping().unwrap();
        client.close().unwrap();
        handle.stop();
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let handle = serve_taxonomy("version", 2);
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut writer = BufWriter::new(stream.try_clone().unwrap());
        let mut reader = BufReader::new(stream);
        write_msg(
            &mut writer,
            &Request::Hello {
                version: 999,
                client: "old".into(),
            },
        )
        .unwrap();
        let resp: Response = read_msg(&mut reader).unwrap();
        match resp {
            Response::Error { kind, message } => {
                assert_eq!(kind, ErrorKind::ProtocolMismatch);
                assert!(
                    message.contains("999") && message.contains(&PROTOCOL_VERSION.to_string()),
                    "mismatch error must name both versions: {message}"
                );
            }
            other => panic!("expected protocol-mismatch error, got {other:?}"),
        }
        handle.stop();
    }

    #[test]
    fn graceful_shutdown_drains_and_joins() {
        let handle = serve_taxonomy("shutdown", 2);
        let addr = handle.addr();
        let mut client = PrometheusClient::connect(addr).unwrap();
        client.ping().unwrap();
        client.shutdown_server().unwrap();
        handle.join();
        // After join, either connects are refused or the session is told the
        // server is shutting down; a fresh ping must not succeed.
        let late = PrometheusClient::connect(addr);
        assert!(late.is_err());
    }
}
