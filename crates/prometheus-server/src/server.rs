//! The concurrent TCP server.
//!
//! ## Architecture
//!
//! ```text
//!            accept loop (1 thread)
//!                 │  mpsc channel of connections
//!                 ▼
//!   worker pool (N threads) ── one session per worker at a time
//!                 │
//!        ┌────────┴─────────┐
//!        ▼                  ▼
//!   read requests      writer lane (FIFO ticket lock)
//!   (each query runs   — every mutating request (units, batches,
//!    on a pinned         PCL install, compact) passes through it,
//!    snapshot)            granted strictly in arrival order
//! ```
//!
//! The engine's discipline is single-writer / concurrent-reader (see
//! `tests/concurrency.rs`): queries are safe from any thread, while units of
//! work use one global, nestable unit state on the `Database`. The server
//! makes that safe over the wire by funnelling every mutating request
//! through the **writer lane** — a [`crate::lane::TicketLane`] a session
//! holds for the duration of a streamed unit (`UnitBegin` …
//! `UnitCommit`/`UnitAbort`) or one batch, granted in FIFO order so no
//! session can barge past queued writers. A connection that drops while
//! holding an open unit has the unit rolled back before the lane is
//! released, so a killed client can never leave a half-applied unit behind;
//! a connection that merely goes *silent* mid-unit is timed out after
//! [`ServerConfig::unit_idle_timeout`], its unit rolled back and the lane
//! freed, and the client learns via a typed [`ErrorKind::UnitTimedOut`]
//! error on its next request.
//!
//! Queries outside a unit evaluate against a pinned
//! [`prometheus_db::ReadView`] snapshot: they never touch the store mutex or
//! the writer lane, so readers are oblivious to even a long-streaming
//! writer. Queries *inside* a unit stay on the live database, preserving
//! read-your-own-writes.
//!
//! ## Shutdown
//!
//! [`ServerHandle::shutdown`] (or a wire `Request::Shutdown`) flips the
//! shutdown flag, wakes the accept loop, and half-closes the read side of
//! every live session. In-flight requests finish and their responses are
//! delivered; the next read on each session observes EOF, open units are
//! rolled back, and the worker threads drain and exit. [`ServerHandle`]
//! joins all threads on drop, so no test or embedder leaks threads.

use crate::client::{ClientConfig, PrometheusClient};
use crate::core::{SessionCore, Step, Work};
use crate::error::{ErrorKind, ServerError, ServerResult};
use crate::frame::{read_msg, write_msg};
use crate::lane::{LaneGuard, TicketLane};
use crate::metrics::{MetricsSnapshot, ServerMetrics, ShardMetrics, REQUEST_KINDS};
use crate::protocol::{MutationOp, ReplicaStatusInfo, Request, Response, TraceSpan, WireRows};
use crate::replica::ReplicaInfo;
use crate::slowlog::{SlowLog, SlowLogEntry};
use prometheus_db::{Database, DbResult, Oid, Prometheus, Value};
use prometheus_pool::{Executor, StatementKind};
use prometheus_trace::{Recorder, Stage, TraceEvent, TraceId, TraceScope};
use std::collections::HashMap;
use std::io::{BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

/// Tuning knobs for [`serve`].
///
/// Plain-struct construction keeps working (`ServerConfig { ..Default::default() }`),
/// but prefer [`ServerConfig::builder`] — it validates knob combinations at
/// build time instead of letting a zero timeout or an impossible thread
/// count surface as runtime behaviour.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind; use port 0 for an ephemeral port (tests, loadgen).
    pub addr: String,
    /// Fixed worker-thread pool size for the **blocking** path
    /// (`io_threads == 0`). Each live session occupies one worker for its
    /// lifetime, so this bounds concurrent sessions; further connections
    /// queue until a worker frees up (visible as the `accept_queue_depth`
    /// gauge). Ignored when `io_threads > 0`.
    pub workers: usize,
    /// How long a streamed unit may sit silent (no frame from the client)
    /// while holding the writer lane before the server rolls it back and
    /// frees the lane for queued writers.
    pub unit_idle_timeout: Duration,
    /// Degree of parallelism for each pinned (out-of-unit) query: the worker
    /// budget of the shared [`prometheus_pool::Executor`]. `0` means auto —
    /// use the machine's available parallelism. `1` forces sequential
    /// execution. Results are identical either way; only latency changes.
    pub parallelism: usize,
    /// Queries at or above this wall-clock land in the slow-query log
    /// (fetch with `Request::SlowLog`). `Duration::ZERO` logs every query —
    /// useful in tests and when characterising a workload.
    pub slow_query_threshold: Duration,
    /// Capacity (events) of the trace ring shared by every layer — request
    /// framing, lane waits, plan cache, execution stages, storage commits.
    /// `0` disables tracing entirely (spans become no-ops; `PROFILE` returns
    /// an empty span tree).
    pub trace_capacity: usize,
    /// `Some` marks this server as a read-only replication follower: every
    /// mutating verb is rejected with a typed
    /// [`ErrorKind::ReadOnlyReplica`] error naming the primary, and
    /// `Request::ReplicaStatus` answers from the follower's
    /// [`crate::replica::ReplicaStatusCell`] instead of the local store.
    /// `None` (the default) is a normal primary.
    pub replica: Option<ReplicaInfo>,
    /// `0` (the default) keeps the blocking one-thread-per-session path.
    /// `> 0` switches to the **event-driven** path: a readiness loop
    /// (epoll) owns every connection and this many worker threads execute
    /// only ready work, so live sessions are no longer capped by thread
    /// count. The wire protocol is identical in both modes. Linux only;
    /// [`serve`] returns [`ServerError::Config`] elsewhere.
    pub io_threads: usize,
    /// Maximum concurrently live sessions; `0` = unlimited. The
    /// event-driven path stops accepting at the cap and resumes as sessions
    /// close; the blocking path closes excess connections at accept.
    pub max_connections: usize,
    /// `Some(addr)` serves the Prometheus text exposition of
    /// [`ServerHandle::metrics`] over plain HTTP at `GET /metrics` on a
    /// second listener (the scrape endpoint). Works in both modes — the
    /// blocking path spins up a one-thread readiness loop just for HTTP.
    /// Linux only.
    pub metrics_http_addr: Option<String>,
    /// Close sessions that send no frame for this long (between requests —
    /// a unit holding the writer lane is governed by the stricter
    /// `unit_idle_timeout` instead): the socket is closed, any open unit is
    /// rolled back, and the `sessions_reaped` counter is bumped. `None`
    /// (the default) never reaps.
    pub idle_timeout: Option<Duration>,
    /// Number of writer lanes — one per store shard. Must equal the shard
    /// count of the database being served (open it with
    /// `Prometheus::open_sharded`); [`serve`] refuses a mismatch. Mutations
    /// claim only the lanes of the shards they touch, so batches bound for
    /// different shards commit in parallel; streamed units, PCL
    /// installation and compaction still claim every lane.
    pub shards: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 8,
            unit_idle_timeout: Duration::from_secs(30),
            parallelism: 0,
            slow_query_threshold: Duration::from_millis(100),
            trace_capacity: Recorder::DEFAULT_CAPACITY,
            replica: None,
            io_threads: 0,
            max_connections: 0,
            metrics_http_addr: None,
            idle_timeout: None,
            shards: 1,
        }
    }
}

impl ServerConfig {
    /// A validating builder; see [`ServerConfigBuilder`].
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            cfg: ServerConfig::default(),
        }
    }
}

/// Validating builder for [`ServerConfig`].
///
/// ```
/// use prometheus_server::ServerConfig;
/// use std::time::Duration;
///
/// let cfg = ServerConfig::builder()
///     .addr("127.0.0.1:0")
///     .io_threads(2)                 // event-driven mode
///     .max_connections(10_000)
///     .metrics_http_addr("127.0.0.1:0") // GET /metrics scrape endpoint
///     .idle_timeout(Duration::from_secs(600))
///     .build()
///     .unwrap();
/// assert_eq!(cfg.io_threads, 2);
///
/// // Nonsense combinations fail at build time, not at runtime:
/// assert!(ServerConfig::builder()
///     .unit_idle_timeout(Duration::ZERO)
///     .build()
///     .is_err());
/// ```
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    cfg: ServerConfig,
}

impl ServerConfigBuilder {
    /// Address to bind (port 0 for ephemeral).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.cfg.addr = addr.into();
        self
    }

    /// Blocking-mode worker pool size (ignored when `io_threads > 0`).
    pub fn workers(mut self, workers: usize) -> Self {
        self.cfg.workers = workers;
        self
    }

    /// Event-mode worker threads; `0` keeps the blocking path.
    pub fn io_threads(mut self, io_threads: usize) -> Self {
        self.cfg.io_threads = io_threads;
        self
    }

    /// Cap on concurrently live sessions (`0` = unlimited).
    pub fn max_connections(mut self, max: usize) -> Self {
        self.cfg.max_connections = max;
        self
    }

    /// Serve `GET /metrics` (Prometheus text exposition) on this address.
    pub fn metrics_http_addr(mut self, addr: impl Into<String>) -> Self {
        self.cfg.metrics_http_addr = Some(addr.into());
        self
    }

    /// Reap sessions idle longer than this between requests.
    pub fn idle_timeout(mut self, timeout: Duration) -> Self {
        self.cfg.idle_timeout = Some(timeout);
        self
    }

    /// Idle deadline for streamed units holding the writer lane.
    pub fn unit_idle_timeout(mut self, timeout: Duration) -> Self {
        self.cfg.unit_idle_timeout = timeout;
        self
    }

    /// Per-query parallelism budget (`0` = auto).
    pub fn parallelism(mut self, parallelism: usize) -> Self {
        self.cfg.parallelism = parallelism;
        self
    }

    /// Slow-query log threshold.
    pub fn slow_query_threshold(mut self, threshold: Duration) -> Self {
        self.cfg.slow_query_threshold = threshold;
        self
    }

    /// Trace ring capacity (`0` disables tracing).
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.cfg.trace_capacity = capacity;
        self
    }

    /// Run as a read-only replication follower.
    pub fn replica(mut self, replica: ReplicaInfo) -> Self {
        self.cfg.replica = Some(replica);
        self
    }

    /// Writer lanes, one per store shard (must match the served database).
    pub fn shards(mut self, shards: usize) -> Self {
        self.cfg.shards = shards;
        self
    }

    /// Validate and produce the config.
    ///
    /// Rejected combinations: an empty bind address; `workers == 0` in
    /// blocking mode; an implausible `io_threads` (> 1024); a zero
    /// `unit_idle_timeout` or zero `idle_timeout` (every unit/session would
    /// die instantly); an `idle_timeout` shorter than `unit_idle_timeout`
    /// (the reaper would undercut the unit deadline it defers to).
    pub fn build(self) -> ServerResult<ServerConfig> {
        let cfg = self.cfg;
        if cfg.addr.is_empty() {
            return Err(ServerError::Config("bind address must not be empty".into()));
        }
        if cfg.io_threads == 0 && cfg.workers == 0 {
            return Err(ServerError::Config(
                "workers must be >= 1 in blocking mode (or set io_threads > 0)".into(),
            ));
        }
        if cfg.io_threads > 1024 {
            return Err(ServerError::Config(format!(
                "io_threads = {} is implausible (max 1024)",
                cfg.io_threads
            )));
        }
        if cfg.unit_idle_timeout.is_zero() {
            return Err(ServerError::Config(
                "unit_idle_timeout must be non-zero (every unit would time out instantly)".into(),
            ));
        }
        if cfg.shards == 0 || cfg.shards > 64 {
            return Err(ServerError::Config(format!(
                "shards must be 1..=64, got {}",
                cfg.shards
            )));
        }
        if let Some(idle) = cfg.idle_timeout {
            if idle.is_zero() {
                return Err(ServerError::Config(
                    "idle_timeout must be non-zero (every session would be reaped instantly)"
                        .into(),
                ));
            }
            if idle < cfg.unit_idle_timeout {
                return Err(ServerError::Config(format!(
                    "idle_timeout ({idle:?}) must be >= unit_idle_timeout ({:?})",
                    cfg.unit_idle_timeout
                )));
            }
        }
        Ok(cfg)
    }
}

/// State shared by the accept loop, the worker pool and the handle (and, in
/// event mode, the readiness loop).
pub(crate) struct Shared {
    pub(crate) db: Prometheus,
    pub(crate) metrics: ServerMetrics,
    /// Plan-caching, morsel-parallel POOL executor for pinned queries. One
    /// instance across all sessions, so every session shares every other
    /// session's cached plans.
    pub(crate) executor: Executor,
    /// The writer lanes, one per store shard: each serialises the mutating
    /// requests bound for its shard in FIFO arrival order, preserving the
    /// engine's single-writer-per-shard discipline across sessions without
    /// letting any session barge a queue. Mutations that span (or might
    /// span) several shards claim every affected lane in ascending index
    /// order — a holder of lane `j` only ever waits on lanes `> j`, so
    /// cross-session acquisition cannot deadlock. Behind `Arc`s so the
    /// event loop can park owned guards in connection state.
    pub(crate) writer_lanes: Vec<Arc<TicketLane>>,
    /// Idle deadline for streamed units holding the lane.
    pub(crate) unit_idle_timeout: Duration,
    /// Idle deadline for whole sessions (the reaper); `None` never reaps.
    pub(crate) idle_timeout: Option<Duration>,
    /// One span recorder across every layer: the store, the rule engine,
    /// the executor and the server itself all record into this ring, so a
    /// request's whole span tree shares one trace id.
    pub(crate) recorder: Recorder,
    /// Bounded log of queries slower than `slow_query_threshold`.
    pub(crate) slow_log: SlowLog,
    pub(crate) slow_query_threshold: Duration,
    pub(crate) shutting_down: AtomicBool,
    pub(crate) next_session: AtomicU64,
    /// Read-half clones of live session sockets, for shutdown.
    pub(crate) conns: Mutex<HashMap<u64, TcpStream>>,
    pub(crate) addr: SocketAddr,
    /// `Some` when serving as a read-only replication follower.
    pub(crate) replica: Option<ReplicaInfo>,
    /// Callbacks that wake any event loops attached to this server, so a
    /// wire `Shutdown` (which only sees `Shared`) can reach them.
    pub(crate) shutdown_wakers: Mutex<Vec<Box<dyn Fn() + Send + Sync>>>,
    /// Monotonic mark of server start, for the `uptime_seconds` gauge.
    pub(crate) started_at: Instant,
    /// Wall-clock of server start (seconds since the Unix epoch), for the
    /// `start_time_seconds` gauge.
    pub(crate) started_unix_s: u64,
}

/// Recover from a poisoned lock: the protected state (the connection
/// hand-off queue, the socket registry) stays consistent across a panicking
/// thread, so it is safe to reuse. The writer lane does its own poison
/// recovery inside [`TicketLane`].
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Start serving `db` on `config.addr`; returns once the listener is bound.
///
/// The handle owns the database: stop the server (drop or
/// [`ServerHandle::stop`]) before reopening the same path elsewhere.
///
/// With `config.io_threads == 0` (the default) this is the blocking
/// one-thread-per-session server; with `io_threads > 0` the event-driven
/// readiness loop serves the same wire protocol over non-blocking sockets
/// (Linux only). `config.metrics_http_addr` additionally serves `GET
/// /metrics` in either mode.
pub fn serve(db: Prometheus, config: ServerConfig) -> ServerResult<ServerHandle> {
    let store_shards = db.db().store().shard_count();
    if config.shards != store_shards {
        return Err(ServerError::Config(format!(
            "config.shards = {} but the database has {store_shards} shard(s); \
             open it with Prometheus::open_sharded({store_shards}) or fix the config",
            config.shards
        )));
    }
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let parallelism = if config.parallelism == 0 {
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        config.parallelism
    };
    let recorder = if config.trace_capacity == 0 {
        Recorder::disabled()
    } else {
        Recorder::new(config.trace_capacity)
    };
    // One recorder everywhere: storage commit/fsync/compact spans, rule
    // firing, plan-cache lookups and execution stages all land in the same
    // ring as the server's own request and lane-wait spans.
    db.set_recorder(recorder.clone());
    let executor = Executor::new(parallelism);
    executor.set_recorder(recorder.clone());
    let shared = Arc::new(Shared {
        db,
        metrics: ServerMetrics::default(),
        executor,
        writer_lanes: (0..store_shards)
            .map(|_| Arc::new(TicketLane::new()))
            .collect(),
        unit_idle_timeout: config.unit_idle_timeout,
        idle_timeout: config.idle_timeout,
        recorder,
        slow_log: SlowLog::default(),
        slow_query_threshold: config.slow_query_threshold,
        shutting_down: AtomicBool::new(false),
        next_session: AtomicU64::new(1),
        conns: Mutex::new(HashMap::new()),
        addr,
        replica: config.replica.clone(),
        shutdown_wakers: Mutex::new(Vec::new()),
        started_at: Instant::now(),
        started_unix_s: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs()),
    });

    #[cfg(not(target_os = "linux"))]
    if config.io_threads > 0 || config.metrics_http_addr.is_some() {
        return Err(ServerError::Config(
            "io_threads > 0 and metrics_http_addr need the epoll event loop (Linux only)".into(),
        ));
    }

    #[cfg(target_os = "linux")]
    if config.io_threads > 0 {
        // Fully event-driven: the readiness loop owns the db listener (and
        // the metrics listener, if any); no blocking worker pool at all.
        let event = crate::event::spawn_event_loop(
            Arc::clone(&shared),
            crate::event::EventConfig {
                db_listener: Some(listener),
                metrics_listener: bind_metrics(&config)?,
                io_threads: config.io_threads,
                max_connections: config.max_connections,
            },
        )?;
        return Ok(ServerHandle {
            shared,
            accept: None,
            workers: Vec::new(),
            event: Some(event),
        });
    }

    // Blocking path: accept thread + fixed worker pool. A metrics address
    // still gets the event loop, but one that only owns the HTTP listener.
    #[cfg(target_os = "linux")]
    let event = match bind_metrics(&config)? {
        Some(metrics_listener) => Some(crate::event::spawn_event_loop(
            Arc::clone(&shared),
            crate::event::EventConfig {
                db_listener: None,
                metrics_listener: Some(metrics_listener),
                io_threads: 1,
                max_connections: 0,
            },
        )?),
        None => None,
    };

    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let mut workers = Vec::with_capacity(config.workers.max(1));
    for i in 0..config.workers.max(1) {
        let rx = Arc::clone(&rx);
        let shared = Arc::clone(&shared);
        let handle = thread::Builder::new()
            .name(format!("prometheus-worker-{i}"))
            .spawn(move || worker_loop(shared, rx))?;
        workers.push(handle);
    }
    let accept = {
        let shared = Arc::clone(&shared);
        let max_connections = config.max_connections;
        thread::Builder::new()
            .name("prometheus-accept".into())
            .spawn(move || accept_loop(shared, listener, tx, max_connections))?
    };
    Ok(ServerHandle {
        shared,
        accept: Some(accept),
        workers,
        #[cfg(target_os = "linux")]
        event,
    })
}

/// Bind the scrape-endpoint listener named by the config, if any.
#[cfg(target_os = "linux")]
fn bind_metrics(config: &ServerConfig) -> ServerResult<Option<TcpListener>> {
    match &config.metrics_http_addr {
        Some(addr) => Ok(Some(TcpListener::bind(addr)?)),
        None => Ok(None),
    }
}

/// A running server: address, metrics, shutdown and join.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
    #[cfg(target_os = "linux")]
    event: Option<crate::event::EventLoopHandle>,
}

impl ServerHandle {
    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The bound address of the HTTP `GET /metrics` scrape endpoint, when
    /// [`ServerConfig::metrics_http_addr`] asked for one.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        #[cfg(target_os = "linux")]
        {
            self.event.as_ref().and_then(|e| e.metrics_addr)
        }
        #[cfg(not(target_os = "linux"))]
        {
            None
        }
    }

    /// Point-in-time server counters (also available over the wire).
    pub fn metrics(&self) -> MetricsSnapshot {
        metrics_snapshot(&self.shared)
    }

    /// Whether shutdown has been initiated.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::SeqCst)
    }

    /// Initiate graceful shutdown: stop accepting, finish in-flight
    /// requests, roll back open units, close sessions. Idempotent.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.shared);
    }

    /// Block until every server thread has exited.
    pub fn join(mut self) {
        self.join_threads();
    }

    /// [`ServerHandle::shutdown`] then [`ServerHandle::join`].
    pub fn stop(mut self) {
        initiate_shutdown(&self.shared);
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        #[cfg(target_os = "linux")]
        if let Some(event) = self.event.take() {
            event.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        initiate_shutdown(&self.shared);
        self.join_threads();
    }
}

pub(crate) fn initiate_shutdown(shared: &Arc<Shared>) {
    if shared.shutting_down.swap(true, Ordering::SeqCst) {
        return; // already in progress
    }
    // Wake the accept loop so it observes the flag.
    let _ = TcpStream::connect(shared.addr);
    // Wake any event loops attached to this server (event mode, or the
    // HTTP-only loop behind the blocking path); they tear their own
    // connections down.
    for wake in lock(&shared.shutdown_wakers).iter() {
        wake();
    }
    // Half-close every live session: pending responses still flush, the
    // next read sees EOF and the session winds down (aborting open units).
    for stream in lock(&shared.conns).values() {
        let _ = stream.shutdown(Shutdown::Read);
    }
}

fn accept_loop(
    shared: Arc<Shared>,
    listener: TcpListener,
    tx: mpsc::Sender<TcpStream>,
    max_connections: usize,
) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(s) => {
                shared
                    .metrics
                    .connections_accepted
                    .fetch_add(1, Ordering::Relaxed);
                let live = shared.metrics.connections_active.load(Ordering::Relaxed)
                    + shared.metrics.accept_queued.load(Ordering::Relaxed);
                if max_connections > 0 && live as usize >= max_connections {
                    // At the session cap: close the excess connection rather
                    // than queue it behind a bound it can never clear.
                    drop(s);
                    continue;
                }
                // Gauge the hand-off queue: incremented here, decremented
                // when a worker picks the connection up. A persistently
                // non-zero depth means every worker is occupied by a live
                // session (the classic thread-per-session ceiling).
                shared.metrics.accept_queued.fetch_add(1, Ordering::Relaxed);
                if tx.send(s).is_err() {
                    break;
                }
            }
            Err(_) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
            }
        }
    }
    // Dropping the sender lets workers drain queued connections and exit.
}

fn worker_loop(shared: Arc<Shared>, rx: Arc<Mutex<mpsc::Receiver<TcpStream>>>) {
    loop {
        // Take the receiver lock only while waiting for a connection, not
        // while serving one, so idle workers keep accepting hand-offs.
        let next = {
            let guard = lock(&rx);
            guard.recv()
        };
        match next {
            Ok(stream) => {
                shared.metrics.accept_queued.fetch_sub(1, Ordering::Relaxed);
                serve_connection(&shared, stream)
            }
            Err(_) => break, // accept loop gone and queue drained
        }
    }
}

fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_nodelay(true);
    if let Ok(clone) = stream.try_clone() {
        lock(&shared.conns).insert(id, clone);
    }
    shared
        .metrics
        .connections_active
        .fetch_add(1, Ordering::Relaxed);
    // Session errors are per-connection: counted in metrics, never fatal to
    // the server. That includes panics — a worker thread serves many
    // connections over its lifetime, so an unwinding session must not kill
    // it (or skip the bookkeeping below).
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_session(shared, id, stream)
    }));
    lock(&shared.conns).remove(&id);
    shared
        .metrics
        .connections_active
        .fetch_sub(1, Ordering::Relaxed);
}

/// Index of a request kind in [`REQUEST_KINDS`]; recorded as `c0` of the
/// root `request` span so traces can be bucketed without the query text.
pub(crate) fn kind_code(kind: &str) -> u64 {
    REQUEST_KINDS.iter().position(|k| *k == kind).unwrap_or(0) as u64
}

/// A mask claiming every writer lane.
pub(crate) fn all_lanes_mask(shared: &Shared) -> u64 {
    if shared.writer_lanes.len() == 64 {
        u64::MAX
    } else {
        (1u64 << shared.writer_lanes.len()) - 1
    }
}

/// Acquire the writer lanes in `mask`, timing the queue waits as one
/// `lane_wait` span: `c0` is the largest ticket distance at draw time
/// (holders ahead in a FIFO), `c1 = 1` marks a real acquisition — pinned
/// queries record a synthetic zero-wait span with `c1 = 0` instead, see
/// `profile_query`.
///
/// Lanes are acquired strictly in ascending index order, and each lane's
/// ticket is drawn only after the previous lane is *held* — the resource
/// ordering that makes cross-session multi-lane acquisition deadlock-free
/// (a holder of lane `j` only ever waits on lanes `> j`).
fn acquire_lanes<'a>(shared: &'a Shared, mask: u64) -> Vec<LaneGuard<'a>> {
    let span = shared.recorder.span(Stage::LaneWait);
    let mut guards = Vec::new();
    let mut worst = 0u64;
    for (k, lane) in shared.writer_lanes.iter().enumerate() {
        if mask & (1u64 << k) == 0 {
            continue;
        }
        let (ticket, distance) = lane.ticket_with_distance();
        worst = worst.max(distance);
        guards.push(lane.wait(ticket));
    }
    span.finish(worst, 1);
    guards
}

/// The writer lanes `work` must hold, as a shard mask (0 = none). Streamed
/// unit ops never reach this — their lanes are held for the whole unit.
pub(crate) fn lane_mask_for(shared: &Shared, work: &Work) -> u64 {
    match work {
        // PCL installation changes what every future mutation does, and
        // compaction rewrites each shard's log: both quiesce every lane.
        Work::InstallPcl { .. } | Work::Compact => all_lanes_mask(shared),
        Work::UnitBatch { ops } => batch_lane_mask(shared, ops),
        _ => 0,
    }
}

/// Infer which shards a batch can touch, as a lane mask. Conservative by
/// construction: an under-inclusive mask would let two sessions write the
/// same shard concurrently, so anything unpredictable widens to every lane
/// (deletes cascade through relationships on arbitrary shards; installed
/// rules may fire repair actions anywhere). The store-level claim check is
/// the backstop — a write routed outside the unit's claim fails the commit
/// loudly rather than escaping — but the masks here are meant to never
/// trip it.
pub(crate) fn batch_lane_mask(shared: &Shared, ops: &[MutationOp]) -> u64 {
    let store = shared.db.db().store();
    let all = all_lanes_mask(shared);
    if store.shard_count() == 1 || !shared.db.rules().rules().is_empty() {
        return all;
    }
    let mut mask = 0u64;
    let mut creations = false;
    for op in ops {
        match op {
            MutationOp::CreateObject { .. } | MutationOp::CreateClassification { .. } => {
                creations = true;
            }
            MutationOp::SetAttr { oid, .. } => {
                mask |= 1u64 << store.shard_of_oid(*oid);
            }
            MutationOp::CreateRelationship {
                origin,
                destination,
                ..
            } => {
                mask |= 1u64 << store.shard_of_oid(*origin);
                mask |= 1u64 << store.shard_of_oid(*destination);
                creations = true; // the relationship record itself
            }
            MutationOp::AddEdgeToClassification {
                classification,
                rel,
            } => {
                mask |= 1u64 << store.shard_of_oid(*classification);
                mask |= 1u64 << store.shard_of_oid(*rel);
            }
            // Deletes cascade (dependent destinations, incident
            // relationships, synonym dissolution in the meta keyspace) to
            // shards no static inspection can bound.
            MutationOp::DeleteObject { .. } | MutationOp::DeleteRelationship { .. } => {
                return all;
            }
        }
    }
    if creations && mask == 0 {
        // Pure creations: home the whole batch on one round-robin shard.
        // Inside the unit, claim-aware OID allocation keeps every created
        // record on the claimed shard.
        mask = 1u64 << store.next_home_hint();
    }
    if mask == 0 {
        all
    } else {
        mask
    }
}

/// What the outer session loop should do after a request.
enum Flow {
    Continue,
    Close,
    /// `UnitBegin` was acknowledged; enter the streamed-unit sub-loop.
    EnterUnit,
}

fn run_session(shared: &Arc<Shared>, id: u64, stream: TcpStream) -> ServerResult<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut core = SessionCore::new(id, shared.replica.as_ref().map(|r| r.primary.clone()));
    if shared.shutting_down.load(Ordering::SeqCst) {
        let _ = write_msg(
            &mut writer,
            TraceId::NONE,
            &Response::Error {
                kind: ErrorKind::ShuttingDown,
                message: "server is shutting down".into(),
            },
        );
        return Ok(());
    }
    // Arm the idle reaper: a session that sends no frame for `idle_timeout`
    // is closed (between requests — a streamed unit is governed by the
    // stricter `unit_idle_timeout` inside `run_unit`, which restores this
    // deadline on the way out).
    let _ = reader.get_ref().set_read_timeout(shared.idle_timeout);
    loop {
        let (wire_trace, req): (TraceId, Request) = match read_msg(&mut reader) {
            Ok(r) => r,
            Err(ServerError::Disconnected) => return Ok(()),
            Err(ServerError::Io(e))
                if shared.idle_timeout.is_some()
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                // Reaped: no unit can be open here (units run under their
                // own deadline in `run_unit`), so closing the socket is the
                // whole cleanup.
                shared
                    .metrics
                    .sessions_reaped
                    .fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            Err(e) => {
                if matches!(e, ServerError::Frame(_) | ServerError::Codec(_)) {
                    shared
                        .metrics
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                }
                return Err(e);
            }
        };
        let start = Instant::now();
        let kind = req.kind_name();
        shared.metrics.count_request(kind);
        // Root span for this request: while it is the thread's trace scope,
        // every span any layer records (lane wait, plan cache, execution,
        // storage commit…) attaches to this trace. A client that stamped a
        // trace id into the frame envelope is the trace origin — adopt its
        // id; otherwise mint one. Either way the id is echoed back in the
        // response envelope so the client can `TraceGet` the span tree.
        let trace = adopt_trace(&shared.recorder, wire_trace);
        let root = shared.recorder.span_in(Stage::Request, trace, 0);
        let scope = TraceScope::enter(root.trace_id(), root.id());
        let flow: ServerResult<Flow> = match core.on_request(req) {
            Step::Reply(resp) => send(shared, &mut writer, trace, &resp).map(|_| Flow::Continue),
            Step::ReplyClose(resp) => send(shared, &mut writer, trace, &resp).map(|_| Flow::Close),
            Step::ShutdownAfter(resp) => {
                let sent = send(shared, &mut writer, trace, &resp);
                initiate_shutdown(shared);
                sent.map(|_| Flow::Close)
            }
            // Ack precedes the lane on purpose: a queued writer learns it is
            // queued by its *next* response stalling, exactly like the
            // in-process API blocking on the lane.
            Step::OpenUnit => {
                send(shared, &mut writer, trace, &Response::Ack).map(|_| Flow::EnterUnit)
            }
            Step::Do(work) => {
                // Infer the lane mask once, here, and execute under exactly
                // those lanes. The same mask becomes the unit's shard claim:
                // recomputing it inside `execute_work` would advance the
                // round-robin home hint a second time and could home a
                // creation batch on a shard whose lane we do not hold.
                let mask = lane_mask_for(shared, &work);
                let resp = if mask != 0 {
                    let _lanes = acquire_lanes(shared, mask);
                    execute_work(shared, &mut core, work, mask)
                } else {
                    execute_work(shared, &mut core, work, 0)
                };
                send(shared, &mut writer, trace, &resp).map(|_| Flow::Continue)
            }
        };
        drop(scope);
        root.finish(kind_code(kind), core.id());
        let flow = flow?;
        shared
            .metrics
            .record_latency_us(kind, start.elapsed().as_micros() as u64);
        match flow {
            Flow::EnterUnit => run_unit(shared, &mut core, &mut reader, &mut writer)?,
            Flow::Close => return Ok(()),
            Flow::Continue => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return Ok(()); // drained: last response delivered
                }
            }
        }
    }
}

/// Count a response's error class into the server metrics — the one place
/// the error counters are bumped, shared by both transports so they cannot
/// drift. `ShuttingDown` and `UnitTimedOut` are lifecycle notices, not
/// request failures, and count nowhere.
pub(crate) fn count_response(metrics: &ServerMetrics, resp: &Response) {
    if let Response::Error { kind, .. } = resp {
        match kind {
            ErrorKind::Protocol | ErrorKind::ProtocolMismatch => {
                metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
            }
            ErrorKind::Db | ErrorKind::ReadOnlyReplica => {
                metrics.db_errors.fetch_add(1, Ordering::Relaxed);
            }
            ErrorKind::ShuttingDown | ErrorKind::UnitTimedOut => {}
        }
    }
}

/// The trace id a request runs under: the client's stamped id when the
/// frame envelope carried one, else a freshly minted id (still
/// [`TraceId::NONE`] when the flight recorder is disabled). Shared by both
/// transports so adoption semantics cannot drift.
pub(crate) fn adopt_trace(recorder: &Recorder, wire_trace: TraceId) -> TraceId {
    if wire_trace.is_none() {
        recorder.new_trace_id()
    } else {
        wire_trace
    }
}

/// Count and write one response on the blocking transport, echoing the
/// request's trace id in the response envelope.
fn send(
    shared: &Shared,
    writer: &mut BufWriter<TcpStream>,
    trace: TraceId,
    resp: &Response,
) -> ServerResult<()> {
    count_response(&shared.metrics, resp);
    write_msg(writer, trace, resp)
}

fn db_err(message: String) -> Response {
    Response::Error {
        kind: ErrorKind::Db,
        message,
    }
}

/// Execute one [`Work`] item against the database and observability state.
///
/// Both transports call this with the writer lanes named by `claim_mask`
/// already held (the mask [`lane_mask_for`] computed at dispatch — passed in
/// rather than recomputed so the batch's shard claim and the held lanes
/// cannot drift apart). Error **counting** happens when the response is sent
/// (see [`count_response`]), not here, so a work item executed on either
/// transport lands in the same counter exactly once. `UnitCommit`/
/// `UnitAbort` never reach this function — the drivers settle unit tokens
/// themselves.
pub(crate) fn execute_work(
    shared: &Shared,
    core: &mut SessionCore,
    work: Work,
    claim_mask: u64,
) -> Response {
    match work {
        Work::Query { pool, pinned } => query_response(shared, core, &pool, pinned, claim_mask),
        Work::SetContext { classification } => match &classification {
            Some(name) => match shared.db.db().classification_by_name(name) {
                Ok(Some(_)) => {
                    core.set_context(classification);
                    Response::Ack
                }
                Ok(None) => db_err(format!("unknown classification '{name}'")),
                Err(e) => db_err(e.to_string()),
            },
            None => {
                core.set_context(None);
                Response::Ack
            }
        },
        Work::InstallPcl { source } => match shared.db.install_pcl(&source) {
            Ok(rules) => Response::Installed { rules },
            Err(e) => db_err(e.to_string()),
        },
        Work::UnitBatch { ops } => {
            let db = shared.db.db();
            let result = db.in_unit_scope_on(claim_mask, |db| {
                let mut created = Vec::with_capacity(ops.len());
                for op in &ops {
                    created.push(apply_op(db, op)?.unwrap_or(Oid::NIL));
                }
                Ok(created)
            });
            match result {
                Ok(created) => {
                    shared
                        .metrics
                        .units_committed
                        .fetch_add(1, Ordering::Relaxed);
                    Response::Batch { created }
                }
                Err(e) => db_err(e.to_string()),
            }
        }
        Work::Compact => match shared.db.compact() {
            Ok(()) => Response::Ack,
            Err(e) => db_err(e.to_string()),
        },
        Work::Stats => Response::Stats {
            server: Box::new(metrics_snapshot(shared)),
            storage: shared.db.stats(),
        },
        Work::Trace { n } => Response::Trace {
            events: shared.recorder.recent(n as usize),
        },
        Work::SlowLog { n } => Response::SlowLog {
            entries: shared.slow_log.recent(n as usize),
        },
        Work::TraceGet { trace_id } => trace_tree_response(shared, trace_id),
        Work::ReplicaPoll {
            follower,
            shard,
            epoch,
            offset,
            max_bytes,
        } => {
            // Serve committed frames straight off the requested shard's log
            // file: the member store reads below its flushed horizon without
            // the inner lock, so a polling follower never contends with
            // writers. `None` means the cursor no longer matches this log
            // (compaction bumped the epoch, or the offsets diverged) — tell
            // the follower to resync from scratch rather than guess.
            let sharded = shared.db.db().store();
            if shard as usize >= sharded.shard_count() {
                return db_err(format!(
                    "replica poll for shard {shard} but this database has {} shard(s)",
                    sharded.shard_count()
                ));
            }
            let span = shared.recorder.span(Stage::ReplicaPoll);
            let store = sharded.shard(shard as usize);
            match store.read_frames(epoch, offset, max_bytes) {
                Ok(Some(batch)) => {
                    shared.metrics.record_follower_poll(
                        &follower,
                        shard,
                        batch.next_offset,
                        batch.log_len,
                    );
                    span.finish(
                        batch.frames.len() as u64,
                        batch.log_len.saturating_sub(batch.next_offset),
                    );
                    Response::ReplicaFrames {
                        epoch: batch.epoch,
                        frames: batch.frames,
                        next_offset: batch.next_offset,
                        log_len: batch.log_len,
                    }
                }
                Ok(None) => {
                    let epoch = store.log_epoch();
                    let log_len = store.committed_log_len();
                    shared
                        .metrics
                        .record_follower_poll(&follower, shard, 0, log_len);
                    span.finish(0, log_len);
                    Response::ReplicaReset { epoch, log_len }
                }
                Err(e) => {
                    span.finish(0, 0);
                    db_err(e.to_string())
                }
            }
        }
        Work::ReplicaStatus => Response::ReplicaStatus(Box::new(replica_status_info(shared))),
        Work::UnitOp { op } => unit_op_response(shared.db.db(), &op),
        // The drivers own unit tokens; the core only routes these to them.
        Work::UnitCommit | Work::UnitAbort => Response::Error {
            kind: ErrorKind::Protocol,
            message: "unit settlement reached the work executor".into(),
        },
    }
}

/// Assemble the merged span tree for `trace_id`: every event the local
/// flight recorder still holds, tagged with this process's origin, plus the
/// spans of the other side of the replication link when one exists and is
/// reachable. A follower dials its primary (it knows the address from its
/// replica config); the fetch uses a short read timeout and no connect
/// retries, so an unreachable peer degrades to a local-only tree instead of
/// stalling the session.
pub(crate) fn trace_tree_response(shared: &Shared, trace_id: TraceId) -> Response {
    let origin = if shared.replica.is_some() {
        "replica"
    } else {
        "primary"
    };
    let mut spans: Vec<TraceSpan> = shared
        .recorder
        .events_for(trace_id)
        .into_iter()
        .map(|event| TraceSpan {
            origin: origin.into(),
            event,
        })
        .collect();
    if let Some(info) = &shared.replica {
        if let Some(remote) = fetch_peer_spans(&info.primary, trace_id) {
            spans.extend(remote);
        }
    }
    // One merged timeline: clocks differ across processes, but within each
    // process spans stay in causal order, which is what the tree needs.
    spans.sort_by_key(|s| (s.event.start_us, s.event.span_id));
    Response::TraceTree { trace_id, spans }
}

/// Best-effort fetch of a replication peer's half of a distributed trace.
fn fetch_peer_spans(addr: &str, trace_id: TraceId) -> Option<Vec<TraceSpan>> {
    use std::net::ToSocketAddrs;
    let addr = addr.to_socket_addrs().ok()?.next()?;
    let mut client = PrometheusClient::connect_with(
        addr,
        ClientConfig {
            connect_retries: 0,
            retry_delay: Duration::from_millis(1),
            read_timeout: Some(Duration::from_secs(2)),
            client_name: "prometheus-trace-merge".into(),
        },
    )
    .ok()?;
    let spans = client.trace_get(trace_id).ok()?;
    let _ = client.close();
    Some(spans)
}

/// Apply one in-unit mutation and shape the wire response. A failed op
/// leaves the unit open: the client chooses to retry differently, commit
/// what succeeded, or abort — exactly the in-process unit semantics.
pub(crate) fn unit_op_response(db: &Database, op: &MutationOp) -> Response {
    match apply_op(db, op) {
        Ok(Some(oid)) => Response::Created { oid },
        Ok(None) => Response::Ack,
        Err(e) => db_err(e.to_string()),
    }
}

/// Streamed unit of work: the session holds **every** writer lane from
/// `UnitBegin` until the unit settles — or until the connection drops or
/// goes silent past the idle deadline, in which cases the unit is rolled
/// back before the lanes are released. Streamed ops arrive one frame at a
/// time, so no shard mask can be inferred up front; the all-shards claim is
/// the honest one.
fn run_unit(
    shared: &Arc<Shared>,
    core: &mut SessionCore,
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
) -> ServerResult<()> {
    let _lanes = acquire_lanes(shared, all_lanes_mask(shared));
    let db = shared.db.db();
    // While this session holds the lane, silence is billed: arm a read
    // timeout so a stalled client cannot block queued writers forever.
    let _ = reader
        .get_ref()
        .set_read_timeout(Some(shared.unit_idle_timeout));
    let mut token = Some(db.begin_unit());
    core.unit_opened();
    let mut timed_out = false;
    let outcome: ServerResult<()> = loop {
        let (wire_trace, req): (TraceId, Request) = match read_msg(reader) {
            Ok(r) => r,
            // The deadline covers the common stall — silence *between*
            // frames. (A client that stalls mid-frame desyncs the stream and
            // surfaces later as a frame error, closing the session.)
            Err(ServerError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                timed_out = true;
                break Ok(());
            }
            Err(e) => break Err(e),
        };
        let start = Instant::now();
        let kind = req.kind_name();
        shared.metrics.count_request(kind);
        let trace = adopt_trace(&shared.recorder, wire_trace);
        let root = shared.recorder.span_in(Stage::Request, trace, 0);
        let scope = TraceScope::enter(root.trace_id(), root.id());
        let done: ServerResult<bool> = match core.on_request(req) {
            Step::Do(Work::UnitCommit) => {
                let resp = match db.commit_unit(token.take().expect("unit token")) {
                    Ok(()) => {
                        shared
                            .metrics
                            .units_committed
                            .fetch_add(1, Ordering::Relaxed);
                        Response::Ack
                    }
                    // commit_unit rolls the unit back itself on failure.
                    Err(e) => db_err(e.to_string()),
                };
                send(shared, writer, trace, &resp).map(|_| true)
            }
            Step::Do(Work::UnitAbort) => {
                db.abort_unit(token.take().expect("unit token"));
                shared.metrics.units_aborted.fetch_add(1, Ordering::Relaxed);
                send(shared, writer, trace, &Response::Ack).map(|_| true)
            }
            Step::Do(work) => {
                let resp = execute_work(shared, core, work, all_lanes_mask(shared));
                send(shared, writer, trace, &resp).map(|_| false)
            }
            Step::Reply(resp) => send(shared, writer, trace, &resp).map(|_| false),
            // The in-unit request set only yields Reply and Do (see the
            // `SessionCore` state machine).
            Step::OpenUnit | Step::ReplyClose(_) | Step::ShutdownAfter(_) => {
                unreachable!("in-unit steps are Reply or Do")
            }
        };
        drop(scope);
        root.finish(kind_code(kind), core.id());
        shared
            .metrics
            .record_latency_us(kind, start.elapsed().as_micros() as u64);
        match done {
            Ok(true) => break Ok(()),
            Ok(false) => {}
            Err(e) => break Err(e),
        }
    };
    // Back to the between-requests deadline (the idle reaper's, or none).
    let _ = reader.get_ref().set_read_timeout(shared.idle_timeout);
    if timed_out {
        if let Some(token) = token.take() {
            // Journal-rollback the half-streamed unit, then let the lane go
            // (we return, dropping the guard) so queued writers proceed. The
            // session itself survives; the client is told on its next frame.
            db.abort_unit(token);
        }
        shared
            .metrics
            .units_timed_out
            .fetch_add(1, Ordering::Relaxed);
        core.note_unit_timed_out();
        return Ok(());
    }
    core.unit_closed();
    if let Some(token) = token.take() {
        // Connection dropped (or transport failed) mid-unit: roll back so
        // no half-applied unit is ever visible or durable.
        db.abort_unit(token);
        shared
            .metrics
            .units_rolled_back_on_disconnect
            .fetch_add(1, Ordering::Relaxed);
    }
    outcome
}

/// Parse, contextualise and evaluate a POOL statement for this session;
/// returns the wire rows plus the fingerprint of the plan that ran (0 when
/// no cached plan was involved: unpinned in-unit selects, `EXPLAIN`).
///
/// With `pinned`, the whole query (traversals included) runs against one
/// immutable [`prometheus_db::ReadView`] snapshot: no store mutex, no cache
/// locks, no interaction with the writer lane. Unpinned queries run on the
/// live database — required inside a unit, where the session must observe
/// its own uncommitted writes.
///
/// The statement may carry an `EXPLAIN` or `PROFILE` verb: `EXPLAIN`
/// answers with the (cached or freshly derived) plan rendered as one-column
/// rows; `PROFILE` executes under a fresh trace and answers with the span
/// tree. Both share the bare query's plan-cache entry — the verb is
/// stripped before the cache key is formed.
fn run_query(
    shared: &Shared,
    core: &SessionCore,
    pool: &str,
    pinned: bool,
) -> DbResult<(WireRows, u64)> {
    let (verb, text) = prometheus_pool::split_statement(pool);
    match verb {
        StatementKind::Select => {
            if pinned {
                // The executor applies the session context exactly like
                // `SessionCore::effective_context`: the query's own clause
                // wins. Its plan cache keys on (context, text), so distinct
                // contexts never share a contextualised plan.
                let (result, plan) = shared.executor.query_with_plan(
                    &shared.db.read_view(),
                    text,
                    core.context(),
                )?;
                Ok((result.into(), plan.fingerprint))
            } else {
                let mut query = prometheus_pool::parse(text)?;
                query.context = core.effective_context(query.context.take());
                let result = prometheus_pool::eval::evaluate(shared.db.db(), &query)?;
                Ok((result.into(), 0))
            }
        }
        StatementKind::Explain => {
            let lines = if pinned {
                shared
                    .executor
                    .explain(&shared.db.read_view(), text, core.context())?
            } else {
                shared
                    .executor
                    .explain(shared.db.db(), text, core.context())?
            };
            let rows = lines.into_iter().map(|l| vec![Value::Str(l)]).collect();
            Ok((
                WireRows {
                    columns: vec!["plan".into()],
                    rows,
                },
                0,
            ))
        }
        StatementKind::Profile => profile_query(shared, core, text, pinned),
    }
}

/// `PROFILE <query>`: execute under a fresh trace id and answer with the
/// span tree — one row per span, parent-linked, with per-stage wall-clock
/// and counters (rows scanned, index seeding, worker counts, cache hits).
fn profile_query(
    shared: &Shared,
    core: &SessionCore,
    text: &str,
    pinned: bool,
) -> DbResult<(WireRows, u64)> {
    let rec = &shared.recorder;
    let trace_id = rec.new_trace_id();
    let root = rec.span_in(Stage::Request, trace_id, 0);
    let root_id = root.id();
    let ran = {
        let _scope = TraceScope::enter(trace_id, root_id);
        // Pinned queries never touch the writer lane — record the zero wait
        // explicitly (c1 = 0: synthetic) so the profile shows the stage
        // honestly instead of omitting it. In-unit profiles inherit the real
        // lane wait from `run_unit`'s acquisition, outside this trace.
        rec.span(Stage::LaneWait).finish(0, 0);
        // Both pinned and in-unit profiles go through the executor so the
        // plan cache, fingerprint and stage spans are all exercised; the
        // live-db reader keeps read-your-own-writes inside a unit.
        if pinned {
            shared
                .executor
                .query_with_plan(&shared.db.read_view(), text, core.context())
        } else {
            shared
                .executor
                .query_with_plan(shared.db.db(), text, core.context())
        }
    };
    let (result, plan) = ran?;
    root.finish(result.rows.len() as u64, plan.fingerprint);
    let events = rec.events_for(trace_id);
    Ok((profile_rows(&events), plan.fingerprint))
}

/// Render a trace's events as wire rows, one per span, depth-indented in
/// tree order (parents before children, siblings in start order).
fn profile_rows(events: &[TraceEvent]) -> WireRows {
    let depth_of = |mut parent: u64| {
        let mut depth = 0usize;
        while parent != 0 {
            match events.iter().find(|e| e.span_id == parent) {
                Some(p) => {
                    depth += 1;
                    parent = p.parent_id;
                }
                None => break, // parent span lost to ring overwrite
            }
        }
        depth
    };
    let rows = events
        .iter()
        .map(|ev| {
            vec![
                Value::Str(format!(
                    "{:indent$}{}",
                    "",
                    ev.stage,
                    indent = depth_of(ev.parent_id) * 2
                )),
                Value::Int(ev.start_us as i64),
                Value::Int(ev.dur_us as i64),
                Value::Int(ev.c0 as i64),
                Value::Int(ev.c1 as i64),
                Value::Int(ev.span_id as i64),
                Value::Int(ev.parent_id as i64),
            ]
        })
        .collect();
    WireRows {
        columns: vec![
            "stage".into(),
            "start_us".into(),
            "dur_us".into(),
            "c0".into(),
            "c1".into(),
            "span".into(),
            "parent".into(),
        ],
        rows,
    }
}

/// Run a query and shape the wire response, feeding the slow-query log on
/// the way (the calling transport's current trace scope is the request root
/// span, so the entry links to the span tree still held by the trace ring).
/// `claim_mask` is the writer-lane mask the request executed under (0 for a
/// lock-free pinned read); the entry also carries the total lane-wait µs
/// recorded for the request's trace, so a slow query can be split into
/// queueing and execution at a glance.
pub(crate) fn query_response(
    shared: &Shared,
    core: &SessionCore,
    pool: &str,
    pinned: bool,
    claim_mask: u64,
) -> Response {
    let start = Instant::now();
    match run_query(shared, core, pool, pinned) {
        Ok((rows, fingerprint)) => {
            let elapsed = start.elapsed();
            if elapsed >= shared.slow_query_threshold {
                let trace_id = Recorder::current().0;
                // The slow path can afford the index lookup: sum the real
                // (c1 = 1) lane-wait spans recorded under this trace.
                let lane_wait_us = shared
                    .recorder
                    .events_for(trace_id)
                    .iter()
                    .filter(|e| e.stage == Stage::LaneWait && e.c1 == 1)
                    .map(|e| e.dur_us)
                    .sum();
                shared.slow_log.push(SlowLogEntry {
                    session: core.id(),
                    query: pool.to_string(),
                    context: core.context().map(str::to_string),
                    trace_id,
                    fingerprint,
                    dur_us: elapsed.as_micros() as u64,
                    rows: rows.len() as u64,
                    pinned,
                    lane_mask: claim_mask,
                    lane_wait_us,
                });
            }
            Response::Rows(rows)
        }
        Err(e) => db_err(e.to_string()),
    }
}

/// Answer `Request::ReplicaStatus` for either role. A primary reports its
/// own committed log as both ends of the cursor (zero lag by definition); a
/// follower reports the puller's live progress cell.
fn replica_status_info(shared: &Shared) -> ReplicaStatusInfo {
    match &shared.replica {
        Some(info) => ReplicaStatusInfo {
            role: "replica".into(),
            primary: Some(info.primary.clone()),
            epoch: info.status.epoch(),
            log_len: info.status.primary_log_len(),
            applied_offset: info.status.applied_offset(),
            caught_up_age_us: info.status.caught_up_age_us(),
            resyncs: info.status.resyncs(),
        },
        None => {
            // Sum the commit horizon across every shard log; the epoch
            // reported is shard 0's (each shard keeps its own epoch, but
            // compaction bumps them together, and single-shard databases —
            // the common case — have exactly one).
            let store = shared.db.db().store();
            let len: u64 = (0..store.shard_count())
                .map(|k| store.shard(k).committed_log_len())
                .sum();
            ReplicaStatusInfo {
                role: "primary".into(),
                primary: None,
                epoch: store.shard(0).log_epoch(),
                log_len: len,
                applied_offset: len,
                caught_up_age_us: 0,
                resyncs: 0,
            }
        }
    }
}

/// Server counters plus the query executor's, as one wire-ready snapshot.
pub(crate) fn metrics_snapshot(shared: &Shared) -> MetricsSnapshot {
    let mut snap = shared.metrics.snapshot(&shared.executor.stats());
    let store = shared.db.db().store();
    // Lag is measured against the shard's commit horizon *now*, not the
    // horizon at the follower's last poll: a follower that fully drained its
    // last batch is still behind by whatever committed since.
    for f in &mut snap.replication {
        if (f.shard as usize) < store.shard_count() {
            let committed = store.shard(f.shard as usize).committed_log_len();
            f.log_len = f.log_len.max(committed);
        }
        f.lag_bytes = f.log_len.saturating_sub(f.next_offset);
    }
    snap.shards = store.shard_count() as u32;
    snap.per_shard = store
        .per_shard_stats()
        .into_iter()
        .enumerate()
        .map(|(k, s)| ShardMetrics {
            lane_depth: shared.writer_lanes[k].depth(),
            snapshot_swaps: s.snapshot_swaps,
            image_bytes_copied: s.image_bytes_copied,
            units_2pc: s.units_2pc,
        })
        .collect();
    // Process self-metrics and flight-recorder health, so the scrape
    // endpoint and the wire Stats verb agree on them by construction.
    snap.start_unix_s = shared.started_unix_s;
    snap.uptime_s = shared.started_at.elapsed().as_secs();
    snap.build_info = vec![
        ("version".into(), env!("CARGO_PKG_VERSION").into()),
        (
            "protocol".into(),
            crate::protocol::PROTOCOL_VERSION.to_string(),
        ),
    ];
    snap.trace_rollups = shared.recorder.stage_rollups();
    snap.trace_events_written = shared.recorder.events_written();
    snap.trace_dropped = shared.recorder.dropped();
    snap.trace_index_evictions = shared.recorder.index_evictions();
    snap.trace_index_overflows = shared.recorder.index_overflows();
    snap
}

/// Apply one wire mutation through the object layer (full §4.4 semantics).
fn apply_op(db: &Database, op: &MutationOp) -> DbResult<Option<Oid>> {
    match op {
        MutationOp::CreateObject { class, attrs } => {
            db.create_object(class, attrs.iter().cloned()).map(Some)
        }
        MutationOp::SetAttr { oid, attr, value } => {
            db.set_attr(*oid, attr, value.clone()).map(|_| None)
        }
        MutationOp::DeleteObject { oid } => db.delete_object(*oid).map(|_| None),
        MutationOp::CreateRelationship {
            class,
            origin,
            destination,
            attrs,
        } => db
            .create_relationship(class, *origin, *destination, attrs.iter().cloned())
            .map(Some),
        MutationOp::DeleteRelationship { oid } => db.delete_relationship(*oid).map(|_| None),
        MutationOp::CreateClassification {
            name,
            attrs,
            strict_hierarchy,
        } => db
            .create_classification(name, attrs.iter().cloned(), *strict_hierarchy)
            .map(Some),
        MutationOp::AddEdgeToClassification {
            classification,
            rel,
        } => db
            .add_edge_to_classification(*classification, *rel)
            .map(|_| None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::PrometheusClient;
    use crate::protocol::PROTOCOL_VERSION;
    use prometheus_db::{StoreOptions, Value};
    use prometheus_taxonomy::Rank;

    fn tmp(name: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!(
            "prometheus-server-{name}-{}-{:?}.log",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn serve_taxonomy(name: &str, workers: usize) -> ServerHandle {
        let p = Prometheus::open_with(
            tmp(name),
            StoreOptions {
                sync_on_commit: false,
            },
        )
        .unwrap();
        let tax = p.taxonomy().unwrap();
        tax.create_ct("Apium", Rank::Genus).unwrap();
        tax.create_ct("Heliosciadium", Rank::Genus).unwrap();
        serve(
            p,
            ServerConfig {
                addr: "127.0.0.1:0".into(),
                workers,
                ..ServerConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn ping_query_stats_round_trip() {
        let handle = serve_taxonomy("roundtrip", 2);
        let mut client = PrometheusClient::connect(handle.addr()).unwrap();
        client.ping().unwrap();
        let rows = client
            .query("select t.working_name from CT t order by t.working_name")
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows.rows[0][0], Value::Str("Apium".into()));
        let (server, storage) = client.stats().unwrap();
        assert!(server.requests_of("query") >= 1);
        assert!(server.connections_active >= 1);
        assert!(storage.commits > 0, "seeding must show in storage counters");
        client.close().unwrap();
        handle.stop();
    }

    #[test]
    fn unit_batch_commits_and_bad_batch_rolls_back() {
        let handle = serve_taxonomy("batch", 2);
        let mut client = PrometheusClient::connect(handle.addr()).unwrap();
        let created = client
            .unit_batch(vec![MutationOp::CreateObject {
                class: "CT".into(),
                attrs: vec![
                    ("working_name".into(), Value::Str("Daucus".into())),
                    ("rank".into(), Value::Str("Genus".into())),
                ],
            }])
            .unwrap();
        assert_eq!(created.len(), 1);
        assert!(!created[0].is_nil());
        assert_eq!(client.query("select t from CT t").unwrap().len(), 3);
        // Second op is invalid: the whole batch must roll back.
        let err = client.unit_batch(vec![
            MutationOp::CreateObject {
                class: "CT".into(),
                attrs: vec![
                    ("working_name".into(), Value::Str("Lost".into())),
                    ("rank".into(), Value::Str("Genus".into())),
                ],
            },
            MutationOp::CreateObject {
                class: "NoSuchClass".into(),
                attrs: vec![],
            },
        ]);
        assert!(err.is_err());
        assert_eq!(client.query("select t from CT t").unwrap().len(), 3);
        client.close().unwrap();
        handle.stop();
    }

    #[test]
    fn streamed_unit_commit_and_abort() {
        let handle = serve_taxonomy("unit", 2);
        let mut client = PrometheusClient::connect(handle.addr()).unwrap();
        {
            let mut unit = client.begin_unit().unwrap();
            let oid = unit
                .create_object(
                    "CT",
                    vec![
                        ("working_name".into(), Value::Str("Kept".into())),
                        ("rank".into(), Value::Str("Genus".into())),
                    ],
                )
                .unwrap();
            assert!(!oid.is_nil());
            // Reads inside the unit see its own writes.
            assert_eq!(unit.query("select t from CT t").unwrap().len(), 3);
            unit.commit().unwrap();
        }
        assert_eq!(client.query("select t from CT t").unwrap().len(), 3);
        {
            let mut unit = client.begin_unit().unwrap();
            unit.create_object(
                "CT",
                vec![
                    ("working_name".into(), Value::Str("Dropped".into())),
                    ("rank".into(), Value::Str("Genus".into())),
                ],
            )
            .unwrap();
            unit.abort().unwrap();
        }
        assert_eq!(client.query("select t from CT t").unwrap().len(), 3);
        client.close().unwrap();
        handle.stop();
    }

    #[test]
    fn unit_guard_drop_aborts() {
        let handle = serve_taxonomy("guard", 2);
        let mut client = PrometheusClient::connect(handle.addr()).unwrap();
        {
            let mut unit = client.begin_unit().unwrap();
            unit.create_object(
                "CT",
                vec![
                    ("working_name".into(), Value::Str("Ghost".into())),
                    ("rank".into(), Value::Str("Genus".into())),
                ],
            )
            .unwrap();
            // Guard dropped without commit: abort is sent on Drop.
        }
        assert_eq!(client.query("select t from CT t").unwrap().len(), 2);
        client.close().unwrap();
        handle.stop();
    }

    #[test]
    fn idle_unit_times_out_rolls_back_and_frees_the_lane() {
        let p = Prometheus::open_with(
            tmp("timeout"),
            StoreOptions {
                sync_on_commit: false,
            },
        )
        .unwrap();
        let tax = p.taxonomy().unwrap();
        tax.create_ct("Apium", Rank::Genus).unwrap();
        let handle = serve(
            p,
            ServerConfig {
                addr: "127.0.0.1:0".into(),
                workers: 2,
                unit_idle_timeout: Duration::from_millis(150),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut stalled = PrometheusClient::connect(handle.addr()).unwrap();
        let mut other = PrometheusClient::connect(handle.addr()).unwrap();
        {
            let mut unit = stalled.begin_unit().unwrap();
            unit.create_object(
                "CT",
                vec![
                    ("working_name".into(), Value::Str("Ghost".into())),
                    ("rank".into(), Value::Str("Genus".into())),
                ],
            )
            .unwrap();
            // Go silent past the deadline. The server must roll the unit
            // back and free the writer lane — otherwise the other session's
            // batch below would block on the lane indefinitely.
            std::thread::sleep(Duration::from_millis(400));
            other
                .unit_batch(vec![MutationOp::CreateObject {
                    class: "CT".into(),
                    attrs: vec![
                        ("working_name".into(), Value::Str("Daucus".into())),
                        ("rank".into(), Value::Str("Genus".into())),
                    ],
                }])
                .unwrap();
            // The stalled session learns via the typed error on its next
            // frame, whatever that frame asks.
            match unit.query("select t from CT t") {
                Err(ServerError::Remote { kind, .. }) => {
                    assert_eq!(kind, ErrorKind::UnitTimedOut)
                }
                res => panic!("expected unit-timed-out error, got {res:?}"),
            }
            // Guard drop sends a best-effort UnitAbort; the server answers
            // it as protocol misuse (no unit open) and the client ignores
            // the response.
        }
        // The timed-out write is gone; the other session's batch survived,
        // and the stalled session itself is still usable.
        let rows = stalled
            .query("select t.working_name from CT t order by t.working_name")
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows.rows[0][0], Value::Str("Apium".into()));
        assert_eq!(rows.rows[1][0], Value::Str("Daucus".into()));
        assert!(handle.metrics().units_timed_out >= 1);
        stalled.close().unwrap();
        other.close().unwrap();
        handle.stop();
    }

    #[test]
    fn session_context_scopes_queries() {
        let p = Prometheus::open_with(
            tmp("context"),
            StoreOptions {
                sync_on_commit: false,
            },
        )
        .unwrap();
        let tax = p.taxonomy().unwrap();
        let cls = tax
            .new_classification("Linnaeus 1753", "L.", "habit")
            .unwrap();
        let genus = tax.create_ct("Apium", Rank::Genus).unwrap();
        let species = tax.create_ct("graveolens", Rank::Species).unwrap();
        tax.circumscribe(&cls, genus, species).unwrap();
        tax.create_ct("Orphan", Rank::Genus).unwrap(); // outside the classification
        let handle = serve(
            p,
            ServerConfig {
                addr: "127.0.0.1:0".into(),
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut client = PrometheusClient::connect(handle.addr()).unwrap();
        assert_eq!(client.query("select t from CT t").unwrap().len(), 3);
        client.set_context(Some("Linnaeus 1753")).unwrap();
        assert_eq!(client.query("select t from CT t").unwrap().len(), 2);
        client.set_context(None).unwrap();
        assert_eq!(client.query("select t from CT t").unwrap().len(), 3);
        assert!(client.set_context(Some("No Such Revision")).is_err());
        client.close().unwrap();
        handle.stop();
    }

    #[test]
    fn pinned_queries_share_the_plan_cache() {
        let handle = serve_taxonomy("plancache", 2);
        let mut a = PrometheusClient::connect(handle.addr()).unwrap();
        let mut b = PrometheusClient::connect(handle.addr()).unwrap();
        let q = "select t.working_name from CT t order by t.working_name";
        a.query(q).unwrap();
        // The cache is shared: a different session reuses the plan.
        b.query(q).unwrap();
        a.query(q).unwrap();
        let (server, _) = a.stats().unwrap();
        assert!(
            server.plan_cache_misses >= 1,
            "first run must plan: {server:?}"
        );
        assert!(
            server.plan_cache_hits >= 2,
            "repeats must hit the cached plan: {server:?}"
        );
        a.close().unwrap();
        b.close().unwrap();
        handle.stop();
    }

    #[test]
    fn protocol_misuse_is_reported() {
        let handle = serve_taxonomy("misuse", 2);
        let mut client = PrometheusClient::connect(handle.addr()).unwrap();
        // Commit without an open unit.
        let err = client.commit_orphan_unit();
        match err {
            Err(ServerError::Remote { kind, .. }) => assert_eq!(kind, ErrorKind::Protocol),
            other => panic!("expected protocol error, got {other:?}"),
        }
        // Bad POOL text is a db error; the session survives both.
        assert!(client.query("selec t frm").is_err());
        client.ping().unwrap();
        client.close().unwrap();
        handle.stop();
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let handle = serve_taxonomy("version", 2);
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut writer = BufWriter::new(stream.try_clone().unwrap());
        let mut reader = BufReader::new(stream);
        write_msg(
            &mut writer,
            TraceId::NONE,
            &Request::Hello {
                version: 999,
                client: "old".into(),
            },
        )
        .unwrap();
        let (_, resp): (TraceId, Response) = read_msg(&mut reader).unwrap();
        match resp {
            Response::Error { kind, message } => {
                assert_eq!(kind, ErrorKind::ProtocolMismatch);
                assert!(
                    message.contains("999") && message.contains(&PROTOCOL_VERSION.to_string()),
                    "mismatch error must name both versions: {message}"
                );
            }
            other => panic!("expected protocol-mismatch error, got {other:?}"),
        }
        handle.stop();
    }

    #[test]
    fn graceful_shutdown_drains_and_joins() {
        let handle = serve_taxonomy("shutdown", 2);
        let addr = handle.addr();
        let mut client = PrometheusClient::connect(addr).unwrap();
        client.ping().unwrap();
        client.shutdown_server().unwrap();
        handle.join();
        // After join, either connects are refused or the session is told the
        // server is shutting down; a fresh ping must not succeed.
        let late = PrometheusClient::connect(addr);
        assert!(late.is_err());
    }
}
