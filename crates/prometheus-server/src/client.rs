//! Blocking client for the Prometheus wire protocol.
//!
//! [`PrometheusClient`] speaks the framed protocol of [`crate::frame`] over
//! one TCP connection: connect (with retry), handshake, then typed methods
//! for every request. Remote failures surface as
//! [`ServerError::Remote`] carrying the server's error kind, so callers can
//! distinguish a rejected mutation from a broken transport.
//!
//! Units of work are driven through [`UnitGuard`], an RAII handle returned
//! by [`PrometheusClient::begin_unit`]: dropping the guard without
//! committing sends `UnitAbort`, so a panicking or early-returning caller
//! never leaves a unit holding the server's writer lane.

use crate::error::{ServerError, ServerResult};
use crate::frame::{read_msg, write_msg};
use crate::metrics::MetricsSnapshot;
use crate::protocol::{
    MutationOp, ReplicaStatusInfo, Request, Response, WireRows, PROTOCOL_VERSION,
};
use crate::slowlog::SlowLogEntry;
use prometheus_db::{Oid, Value};
use prometheus_storage::{LogRecord, StatsSnapshot};
use prometheus_trace::{TraceEvent, TraceId};
use std::io::{BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::thread;
use std::time::Duration;

/// Connection options for [`PrometheusClient::connect_with`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Additional connect attempts after the first failure.
    pub connect_retries: u32,
    /// Pause between connect attempts.
    pub retry_delay: Duration,
    /// Read timeout on the session socket (`None` blocks forever).
    pub read_timeout: Option<Duration>,
    /// Name reported in the handshake (diagnostics only).
    pub client_name: String,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_retries: 20,
            retry_delay: Duration::from_millis(25),
            read_timeout: Some(Duration::from_secs(30)),
            client_name: "prometheus-client".into(),
        }
    }
}

/// A blocking connection to a Prometheus server.
pub struct PrometheusClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    session: u64,
    /// Trace id stamped into the next request's frame envelope
    /// ([`TraceId::NONE`] asks the server to mint one).
    next_trace: TraceId,
    /// Trace id the server echoed in the last response envelope — the id the
    /// request actually ran under, whether client-stamped or server-minted.
    last_trace: TraceId,
}

impl PrometheusClient {
    /// Connect with default options and perform the handshake.
    pub fn connect(addr: SocketAddr) -> ServerResult<PrometheusClient> {
        PrometheusClient::connect_with(addr, ClientConfig::default())
    }

    /// Connect with explicit options and perform the handshake.
    pub fn connect_with(addr: SocketAddr, config: ClientConfig) -> ServerResult<PrometheusClient> {
        let mut attempt = 0u32;
        let stream = loop {
            match TcpStream::connect(addr) {
                Ok(s) => break s,
                Err(e) => {
                    if attempt >= config.connect_retries {
                        return Err(ServerError::Connect(format!(
                            "{addr}: {e} (after {} attempts)",
                            attempt + 1
                        )));
                    }
                    attempt += 1;
                    thread::sleep(config.retry_delay);
                }
            }
        };
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(config.read_timeout)?;
        let mut client = PrometheusClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            session: 0,
            next_trace: TraceId::NONE,
            last_trace: TraceId::NONE,
        };
        match client.request(Request::Hello {
            version: PROTOCOL_VERSION,
            client: config.client_name,
        })? {
            Response::Welcome { session, .. } => {
                client.session = session;
                Ok(client)
            }
            other => Err(unexpected("Welcome", other)),
        }
    }

    /// Server-assigned session id from the handshake.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Stamp `trace` into every subsequent request's frame envelope, making
    /// this client the trace origin. [`TraceId::NONE`] (the default) lets
    /// the server mint a fresh id per request instead.
    pub fn set_trace(&mut self, trace: TraceId) {
        self.next_trace = trace;
    }

    /// The trace id the server echoed in the last response envelope — feed
    /// it to [`PrometheusClient::trace_get`] to fetch the request's span
    /// tree. [`TraceId::NONE`] before any request completes (or when the
    /// server's flight recorder is disabled).
    pub fn last_trace_id(&self) -> TraceId {
        self.last_trace
    }

    /// One request / one response; remote errors become `ServerError::Remote`.
    fn request(&mut self, req: Request) -> ServerResult<Response> {
        write_msg(&mut self.writer, self.next_trace, &req)?;
        let (trace, resp) = read_msg::<_, Response>(&mut self.reader)?;
        self.last_trace = trace;
        match resp {
            Response::Error { kind, message } => Err(ServerError::Remote { kind, message }),
            resp => Ok(resp),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> ServerResult<()> {
        match self.request(Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", other)),
        }
    }

    /// Run a POOL query; the session's classification context applies when
    /// the query has no `in classification` clause of its own.
    pub fn query(&mut self, pool: &str) -> ServerResult<WireRows> {
        match self.request(Request::Query { pool: pool.into() })? {
            Response::Rows(rows) => Ok(rows),
            other => Err(unexpected("Rows", other)),
        }
    }

    /// Set (`Some`) or clear (`None`) this session's classification context.
    pub fn set_context(&mut self, classification: Option<&str>) -> ServerResult<()> {
        let req = Request::SetContext {
            classification: classification.map(String::from),
        };
        match self.request(req)? {
            Response::Ack => Ok(()),
            other => Err(unexpected("Ack", other)),
        }
    }

    /// Translate and install a PCL document; returns the rule count.
    pub fn install_pcl(&mut self, source: &str) -> ServerResult<usize> {
        match self.request(Request::InstallPcl {
            source: source.into(),
        })? {
            Response::Installed { rules } => Ok(rules),
            other => Err(unexpected("Installed", other)),
        }
    }

    /// Run `ops` in one atomic unit of work; returns created OIDs in op
    /// order (`Oid::NIL` for ops that create nothing).
    pub fn unit_batch(&mut self, ops: Vec<MutationOp>) -> ServerResult<Vec<Oid>> {
        match self.request(Request::UnitBatch { ops })? {
            Response::Batch { created } => Ok(created),
            other => Err(unexpected("Batch", other)),
        }
    }

    /// Open a streamed unit of work.
    pub fn begin_unit(&mut self) -> ServerResult<UnitGuard<'_>> {
        match self.request(Request::UnitBegin)? {
            Response::Ack => Ok(UnitGuard {
                client: self,
                open: true,
            }),
            other => Err(unexpected("Ack", other)),
        }
    }

    /// Ask the server to compact its backing log.
    pub fn compact(&mut self) -> ServerResult<()> {
        match self.request(Request::Compact)? {
            Response::Ack => Ok(()),
            other => Err(unexpected("Ack", other)),
        }
    }

    /// Fetch server metrics and storage counters.
    pub fn stats(&mut self) -> ServerResult<(MetricsSnapshot, StatsSnapshot)> {
        match self.request(Request::Stats)? {
            Response::Stats { server, storage } => Ok((*server, storage)),
            other => Err(unexpected("Stats", other)),
        }
    }

    /// Fetch the newest `n` span events from the server's trace ring,
    /// oldest first.
    pub fn trace(&mut self, n: u32) -> ServerResult<Vec<TraceEvent>> {
        match self.request(Request::Trace { n })? {
            Response::Trace { events } => Ok(events),
            other => Err(unexpected("Trace", other)),
        }
    }

    /// Assemble the merged span tree of one distributed trace: every span
    /// the server's flight recorder still holds for `trace_id`, plus spans
    /// fetched from the other side of a replication link when reachable.
    /// Spans come back sorted by start time, each tagged with its origin
    /// process.
    pub fn trace_get(
        &mut self,
        trace_id: TraceId,
    ) -> ServerResult<Vec<crate::protocol::TraceSpan>> {
        match self.request(Request::TraceGet { trace_id })? {
            Response::TraceTree { spans, .. } => Ok(spans),
            other => Err(unexpected("TraceTree", other)),
        }
    }

    /// Fetch the newest `n` slow-query log entries, oldest first.
    pub fn slow_log(&mut self, n: u32) -> ServerResult<Vec<SlowLogEntry>> {
        match self.request(Request::SlowLog { n })? {
            Response::SlowLog { entries } => Ok(entries),
            other => Err(unexpected("SlowLog", other)),
        }
    }

    /// Poll the primary for committed redo frames of member `shard` past
    /// `offset` (replication protocol, v4; per-shard cursors since v7).
    /// `epoch` must be that shard's log epoch from the previous poll (0 on
    /// a fresh cursor); a [`PollOutcome::Reset`] answer means the cursor is
    /// stale — discard local state and re-poll from offset 0.
    pub fn replica_poll(
        &mut self,
        follower: &str,
        shard: u32,
        epoch: u64,
        offset: u64,
        max_bytes: u64,
    ) -> ServerResult<PollOutcome> {
        match self.request(Request::ReplicaPoll {
            follower: follower.into(),
            shard,
            epoch,
            offset,
            max_bytes,
        })? {
            Response::ReplicaFrames {
                epoch,
                frames,
                next_offset,
                log_len,
            } => Ok(PollOutcome::Frames {
                epoch,
                frames,
                next_offset,
                log_len,
            }),
            Response::ReplicaReset { epoch, log_len } => Ok(PollOutcome::Reset { epoch, log_len }),
            other => Err(unexpected("ReplicaFrames or ReplicaReset", other)),
        }
    }

    /// Ask the server for its replication role and progress.
    pub fn replica_status(&mut self) -> ServerResult<ReplicaStatusInfo> {
        match self.request(Request::ReplicaStatus)? {
            Response::ReplicaStatus(info) => Ok(*info),
            other => Err(unexpected("ReplicaStatus", other)),
        }
    }

    /// Request graceful server shutdown.
    pub fn shutdown_server(&mut self) -> ServerResult<()> {
        match self.request(Request::Shutdown)? {
            Response::Ack => Ok(()),
            other => Err(unexpected("Ack", other)),
        }
    }

    /// Close the session politely.
    pub fn close(mut self) -> ServerResult<()> {
        match self.request(Request::Bye)? {
            Response::Goodbye => Ok(()),
            other => Err(unexpected("Goodbye", other)),
        }
    }

    /// Drop the connection abruptly, without `Bye` or aborting open state —
    /// simulates a crashed client (see `tests/server_concurrency.rs`).
    pub fn kill(self) {
        let _ = self.writer.get_ref().shutdown(Shutdown::Both);
    }

    /// Send `UnitCommit` with no unit open — deliberate protocol misuse,
    /// exercised by the server's error-path tests.
    #[doc(hidden)]
    pub fn commit_orphan_unit(&mut self) -> ServerResult<Response> {
        self.request(Request::UnitCommit)
    }
}

/// What one replication poll yielded; see [`PrometheusClient::replica_poll`].
#[derive(Debug)]
pub enum PollOutcome {
    /// Committed frames from the requested offset. Empty `frames` with
    /// `next_offset == log_len` means the follower is caught up.
    Frames {
        epoch: u64,
        frames: Vec<LogRecord>,
        next_offset: u64,
        log_len: u64,
    },
    /// The cursor no longer matches the primary's log (compaction rewrote
    /// it, or histories diverged across a crash): resync from offset 0.
    Reset { epoch: u64, log_len: u64 },
}

fn unexpected(wanted: &str, got: Response) -> ServerError {
    ServerError::Protocol(format!("expected {wanted}, got {got:?}"))
}

/// An open unit of work; aborts on drop unless committed.
pub struct UnitGuard<'c> {
    client: &'c mut PrometheusClient,
    open: bool,
}

impl UnitGuard<'_> {
    /// Send one mutation; returns the created OID for creating ops.
    pub fn op(&mut self, op: MutationOp) -> ServerResult<Option<Oid>> {
        match self.client.request(Request::UnitOp { op })? {
            Response::Created { oid } => Ok(Some(oid)),
            Response::Ack => Ok(None),
            other => Err(unexpected("Created or Ack", other)),
        }
    }

    /// `Database::create_object` over the wire.
    pub fn create_object(&mut self, class: &str, attrs: Vec<(String, Value)>) -> ServerResult<Oid> {
        self.op(MutationOp::CreateObject {
            class: class.into(),
            attrs,
        })?
        .ok_or_else(|| ServerError::Protocol("create_object returned no oid".into()))
    }

    /// `Database::set_attr` over the wire.
    pub fn set_attr(&mut self, oid: Oid, attr: &str, value: Value) -> ServerResult<()> {
        self.op(MutationOp::SetAttr {
            oid,
            attr: attr.into(),
            value,
        })
        .map(|_| ())
    }

    /// `Database::delete_object` over the wire.
    pub fn delete_object(&mut self, oid: Oid) -> ServerResult<()> {
        self.op(MutationOp::DeleteObject { oid }).map(|_| ())
    }

    /// `Database::create_relationship` over the wire.
    pub fn create_relationship(
        &mut self,
        class: &str,
        origin: Oid,
        destination: Oid,
        attrs: Vec<(String, Value)>,
    ) -> ServerResult<Oid> {
        self.op(MutationOp::CreateRelationship {
            class: class.into(),
            origin,
            destination,
            attrs,
        })?
        .ok_or_else(|| ServerError::Protocol("create_relationship returned no oid".into()))
    }

    /// Query inside the unit: sees the unit's own uncommitted writes.
    pub fn query(&mut self, pool: &str) -> ServerResult<WireRows> {
        self.client.query(pool)
    }

    /// Commit the unit.
    pub fn commit(mut self) -> ServerResult<()> {
        self.open = false;
        match self.client.request(Request::UnitCommit)? {
            Response::Ack => Ok(()),
            other => Err(unexpected("Ack", other)),
        }
    }

    /// Roll the unit back explicitly.
    pub fn abort(mut self) -> ServerResult<()> {
        self.open = false;
        match self.client.request(Request::UnitAbort)? {
            Response::Ack => Ok(()),
            other => Err(unexpected("Ack", other)),
        }
    }
}

impl Drop for UnitGuard<'_> {
    fn drop(&mut self) {
        if self.open {
            // Best effort: a broken transport already rolled the unit back
            // server-side.
            let _ = self.client.request(Request::UnitAbort);
        }
    }
}
