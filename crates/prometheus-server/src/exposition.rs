//! Prometheus text-exposition rendering of the server + storage counters.
//!
//! One function, one format: [`render_prometheus_exposition`] turns a
//! [`MetricsSnapshot`] and a [`StatsSnapshot`] into the text format the
//! *monitoring system* Prometheus scrapes (a happy naming coincidence with
//! the database). It backs both consumers:
//!
//! * the HTTP `GET /metrics` scrape endpoint
//!   ([`crate::ServerConfig::metrics_http_addr`]), rendered inside the
//!   event loop from the live counters;
//! * `harness stats --format=prometheus`, rendered client-side from a wire
//!   `Request::Stats` snapshot.
//!
//! Both paths go through this function, so a scrape and a wire stats call
//! can never disagree about a counter's name or meaning.

use crate::metrics::MetricsSnapshot;
use prometheus_storage::StatsSnapshot;
use std::fmt::Write as _;

/// Render server + storage counters in the Prometheus text exposition
/// format, one metric per line, ready for a scrape endpoint or a
/// file-based collector. Counter names follow the convention
/// `prometheus_{server,storage}_<what>[_total]`; the latency histogram uses
/// the standard cumulative `_bucket{le=…}` / `_sum` / `_count` triple.
pub fn render_prometheus_exposition(server: &MetricsSnapshot, storage: &StatsSnapshot) -> String {
    let mut out = String::new();
    let mut counter = |name: &str, help: &str, value: u64| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    };
    counter(
        "prometheus_server_connections_accepted_total",
        "Connections handed to the worker pool.",
        server.connections_accepted,
    );
    counter(
        "prometheus_server_sessions_reaped_total",
        "Idle sessions closed by the reaper.",
        server.sessions_reaped,
    );
    counter(
        "prometheus_server_protocol_errors_total",
        "Frames that failed to decode or out-of-order requests.",
        server.protocol_errors,
    );
    counter(
        "prometheus_server_db_errors_total",
        "Requests the database layer rejected.",
        server.db_errors,
    );
    counter(
        "prometheus_server_units_committed_total",
        "Units of work committed over the wire.",
        server.units_committed,
    );
    counter(
        "prometheus_server_units_aborted_total",
        "Units rolled back on client request.",
        server.units_aborted,
    );
    counter(
        "prometheus_server_units_rolled_back_on_disconnect_total",
        "Units rolled back because the connection dropped mid-unit.",
        server.units_rolled_back_on_disconnect,
    );
    counter(
        "prometheus_server_units_timed_out_total",
        "Units rolled back at the idle deadline.",
        server.units_timed_out,
    );
    counter(
        "prometheus_server_plan_cache_hits_total",
        "Queries answered from the POOL plan cache.",
        server.plan_cache_hits,
    );
    counter(
        "prometheus_server_plan_cache_misses_total",
        "Queries that had to parse and plan.",
        server.plan_cache_misses,
    );
    counter(
        "prometheus_server_parallel_morsels_total",
        "Work morsels executed by parallel query workers.",
        server.parallel_morsels,
    );
    counter(
        "prometheus_storage_log_appends_total",
        "Redo-log records appended.",
        storage.log_appends,
    );
    counter(
        "prometheus_storage_bytes_written_total",
        "Bytes appended to the redo log.",
        storage.bytes_written,
    );
    counter(
        "prometheus_storage_syncs_total",
        "fsync calls on the redo log.",
        storage.syncs,
    );
    counter(
        "prometheus_storage_cache_hits_total",
        "Object-cache hits.",
        storage.cache_hits,
    );
    counter(
        "prometheus_storage_cache_misses_total",
        "Object-cache misses.",
        storage.cache_misses,
    );
    counter(
        "prometheus_storage_commits_total",
        "Transactions committed.",
        storage.commits,
    );
    counter(
        "prometheus_storage_aborts_total",
        "Transactions rolled back.",
        storage.aborts,
    );
    counter(
        "prometheus_storage_snapshot_swaps_total",
        "Immutable snapshot publications.",
        storage.snapshot_swaps,
    );
    counter(
        "prometheus_storage_image_nodes_cloned_total",
        "Persistent-map nodes path-copied while publishing commits.",
        storage.image_nodes_cloned,
    );
    counter(
        "prometheus_storage_image_bytes_copied_total",
        "Bytes copied cloning image nodes (structure only, not payloads).",
        storage.image_bytes_copied,
    );
    counter(
        "prometheus_storage_units_2pc_total",
        "Cross-shard units settled with a two-phase prepare/decide round.",
        storage.units_2pc,
    );

    let mut gauge = |name: &str, help: &str, value: u64| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    };
    gauge(
        "prometheus_server_connections_active",
        "Sessions currently being served.",
        server.connections_active,
    );
    gauge(
        "prometheus_server_accept_queue_depth",
        "Accepted connections waiting for a free worker (blocking mode) or a ready slot (event mode).",
        server.accept_queue_depth,
    );
    gauge(
        "prometheus_server_shards",
        "Writer lanes / shard logs this server runs (1 = unsharded).",
        server.shards as u64,
    );

    // Per-shard breakdowns, labelled shard="k". The aggregate counters
    // above keep their unlabelled names, so single-shard dashboards are
    // untouched and sharded ones can sum or drill down.
    if !server.per_shard.is_empty() {
        type ShardSpec = (
            &'static str,
            &'static str,
            &'static str,
            fn(&crate::metrics::ShardMetrics) -> u64,
        );
        let per_shard: [ShardSpec; 4] = [
            (
                "prometheus_server_shard_lane_depth",
                "Writers holding or queued for this shard's lane.",
                "gauge",
                |s| s.lane_depth,
            ),
            (
                "prometheus_storage_shard_snapshot_swaps_total",
                "Immutable snapshot publications on this shard.",
                "counter",
                |s| s.snapshot_swaps,
            ),
            (
                "prometheus_storage_shard_image_bytes_copied_total",
                "Bytes copied cloning image nodes on this shard.",
                "counter",
                |s| s.image_bytes_copied,
            ),
            (
                "prometheus_storage_shard_units_2pc_total",
                "Two-phase units this shard participated in.",
                "counter",
                |s| s.units_2pc,
            ),
        ];
        for (name, help, kind, value) in per_shard {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for (k, s) in server.per_shard.iter().enumerate() {
                let _ = writeln!(out, "{name}{{shard=\"{k}\"}} {}", value(s));
            }
        }
    }

    let _ = writeln!(
        out,
        "# HELP prometheus_server_requests_total Requests processed, by kind."
    );
    let _ = writeln!(out, "# TYPE prometheus_server_requests_total counter");
    for (kind, n) in &server.requests_by_kind {
        let _ = writeln!(
            out,
            "prometheus_server_requests_total{{kind=\"{kind}\"}} {n}"
        );
    }

    let hist = &server.latency;
    let _ = writeln!(
        out,
        "# HELP prometheus_server_request_latency_us Per-request wall-clock latency (µs)."
    );
    let _ = writeln!(out, "# TYPE prometheus_server_request_latency_us histogram");
    let mut cumulative = 0u64;
    for (i, &n) in hist.counts.iter().enumerate() {
        cumulative += n;
        match hist.bounds_us.get(i) {
            Some(bound) => {
                let _ = writeln!(
                    out,
                    "prometheus_server_request_latency_us_bucket{{le=\"{bound}\"}} {cumulative}"
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "prometheus_server_request_latency_us_bucket{{le=\"+Inf\"}} {cumulative}"
                );
            }
        }
    }
    let _ = writeln!(
        out,
        "prometheus_server_request_latency_us_sum {}",
        hist.sum_us
    );
    let _ = writeln!(
        out,
        "prometheus_server_request_latency_us_count {}",
        hist.count
    );

    if !server.latency_by_class.is_empty() {
        let _ = writeln!(
            out,
            "# HELP prometheus_server_request_class_latency_us Request latency (µs) by request class."
        );
        let _ = writeln!(
            out,
            "# TYPE prometheus_server_request_class_latency_us histogram"
        );
        for (class, hist) in &server.latency_by_class {
            let mut cumulative = 0u64;
            for (i, &n) in hist.counts.iter().enumerate() {
                cumulative += n;
                let le = match hist.bounds_us.get(i) {
                    Some(bound) => bound.to_string(),
                    None => "+Inf".into(),
                };
                let _ = writeln!(
                    out,
                    "prometheus_server_request_class_latency_us_bucket{{class=\"{class}\",le=\"{le}\"}} {cumulative}"
                );
            }
            let _ = writeln!(
                out,
                "prometheus_server_request_class_latency_us_sum{{class=\"{class}\"}} {}",
                hist.sum_us
            );
            let _ = writeln!(
                out,
                "prometheus_server_request_class_latency_us_count{{class=\"{class}\"}} {}",
                hist.count
            );
        }
    }

    if !server.replication.is_empty() {
        type GaugeSpec = (
            &'static str,
            &'static str,
            fn(&crate::metrics::FollowerLag) -> u64,
        );
        let gauges: [GaugeSpec; 3] = [
            (
                "prometheus_server_replication_follower_lag_bytes",
                "Committed redo-log bytes a follower has not pulled yet.",
                |f| f.lag_bytes,
            ),
            (
                "prometheus_server_replication_follower_next_offset",
                "The log offset a follower will poll next.",
                |f| f.next_offset,
            ),
            (
                "prometheus_server_replication_follower_last_poll_age_us",
                "Micros since a follower last polled; large means it is gone.",
                |f| f.last_poll_age_us,
            ),
        ];
        for (name, help, value) in gauges {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            for f in &server.replication {
                let _ = writeln!(
                    out,
                    "{name}{{follower=\"{}\",shard=\"{}\"}} {}",
                    f.follower,
                    f.shard,
                    value(f)
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{FollowerLag, LATENCY_BOUNDS_US, LATENCY_BUCKETS};

    #[test]
    fn exposition_renders_counters_and_histogram() {
        let mut server = MetricsSnapshot {
            connections_accepted: 3,
            connections_active: 1,
            accept_queue_depth: 2,
            sessions_reaped: 4,
            requests_by_kind: vec![("query".into(), 12), ("ping".into(), 2)],
            plan_cache_hits: 9,
            ..MetricsSnapshot::default()
        };
        server.latency.bounds_us = LATENCY_BOUNDS_US.to_vec();
        server.latency.counts = vec![0; LATENCY_BUCKETS];
        server.latency.counts[0] = 5;
        server.latency.counts[LATENCY_BUCKETS - 1] = 1;
        server.latency.count = 6;
        server.latency.sum_us = 2_000_100;
        let mut query_hist = server.latency.clone();
        query_hist.counts[LATENCY_BUCKETS - 1] = 0;
        query_hist.count = 5;
        server.latency_by_class = vec![("query".into(), query_hist)];
        server.replication = vec![FollowerLag {
            follower: "replica-a".into(),
            shard: 0,
            next_offset: 100,
            log_len: 400,
            lag_bytes: 300,
            last_poll_age_us: 1_500,
        }];
        server.shards = 2;
        server.per_shard = vec![
            crate::metrics::ShardMetrics {
                lane_depth: 1,
                snapshot_swaps: 7,
                image_bytes_copied: 64,
                units_2pc: 2,
            },
            crate::metrics::ShardMetrics {
                lane_depth: 0,
                snapshot_swaps: 3,
                image_bytes_copied: 32,
                units_2pc: 2,
            },
        ];
        let storage = StatsSnapshot {
            commits: 4,
            units_2pc: 4,
            ..StatsSnapshot::default()
        };
        let text = render_prometheus_exposition(&server, &storage);
        assert!(text.contains("prometheus_server_connections_accepted_total 3"));
        assert!(text.contains("prometheus_server_connections_active 1"));
        assert!(text.contains("prometheus_server_accept_queue_depth 2"));
        assert!(text.contains("prometheus_server_sessions_reaped_total 4"));
        assert!(text.contains("prometheus_server_requests_total{kind=\"query\"} 12"));
        assert!(text.contains("prometheus_server_plan_cache_hits_total 9"));
        assert!(text.contains("prometheus_storage_commits_total 4"));
        // Histogram buckets are cumulative and end at +Inf = count.
        assert!(text.contains("prometheus_server_request_latency_us_bucket{le=\"50\"} 5"));
        assert!(text.contains("prometheus_server_request_latency_us_bucket{le=\"+Inf\"} 6"));
        assert!(text.contains("prometheus_server_request_latency_us_count 6"));
        // Per-class histograms and per-follower replication-lag gauges.
        assert!(text.contains(
            "prometheus_server_request_class_latency_us_bucket{class=\"query\",le=\"50\"} 5"
        ));
        assert!(
            text.contains("prometheus_server_request_class_latency_us_count{class=\"query\"} 5")
        );
        assert!(text.contains(
            "prometheus_server_replication_follower_lag_bytes{follower=\"replica-a\",shard=\"0\"} 300"
        ));
        assert!(text.contains(
            "prometheus_server_replication_follower_next_offset{follower=\"replica-a\",shard=\"0\"} 100"
        ));
        // Shard-labelled breakdowns alongside unlabelled aggregates.
        assert!(text.contains("prometheus_server_shards 2"));
        assert!(text.contains("prometheus_storage_units_2pc_total 4"));
        assert!(text.contains("prometheus_server_shard_lane_depth{shard=\"0\"} 1"));
        assert!(text.contains("prometheus_storage_shard_snapshot_swaps_total{shard=\"1\"} 3"));
        assert!(text.contains("prometheus_storage_shard_units_2pc_total{shard=\"0\"} 2"));
        assert!(text.contains("prometheus_storage_shard_image_bytes_copied_total{shard=\"1\"} 32"));
        // Every non-comment line is "name[{labels}] value".
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split_whitespace().count(), 2, "malformed line: {line}");
        }
    }
}
