//! Prometheus text-exposition rendering of the server + storage counters.
//!
//! One function, one format: [`render_prometheus_exposition`] turns a
//! [`MetricsSnapshot`] and a [`StatsSnapshot`] into the text format the
//! *monitoring system* Prometheus scrapes (a happy naming coincidence with
//! the database). It backs both consumers:
//!
//! * the HTTP `GET /metrics` scrape endpoint
//!   ([`crate::ServerConfig::metrics_http_addr`]), rendered inside the
//!   event loop from the live counters;
//! * `harness stats --format=prometheus`, rendered client-side from a wire
//!   `Request::Stats` snapshot.
//!
//! Both paths go through this function, so a scrape and a wire stats call
//! can never disagree about a counter's name or meaning.

use crate::metrics::MetricsSnapshot;
use prometheus_storage::StatsSnapshot;
use std::fmt::Write as _;

fn write_counter(out: &mut String, name: &str, help: &str, value: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {value}");
}

/// Render server + storage counters in the Prometheus text exposition
/// format, one metric per line, ready for a scrape endpoint or a
/// file-based collector. Counter names follow the convention
/// `prometheus_{server,storage}_<what>[_total]`; the latency histogram uses
/// the standard cumulative `_bucket{le=…}` / `_sum` / `_count` triple.
pub fn render_prometheus_exposition(server: &MetricsSnapshot, storage: &StatsSnapshot) -> String {
    let mut out = String::new();
    let mut counter = |name: &str, help: &str, value: u64| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    };
    counter(
        "prometheus_server_connections_accepted_total",
        "Connections handed to the worker pool.",
        server.connections_accepted,
    );
    counter(
        "prometheus_server_sessions_reaped_total",
        "Idle sessions closed by the reaper.",
        server.sessions_reaped,
    );
    counter(
        "prometheus_server_protocol_errors_total",
        "Frames that failed to decode or out-of-order requests.",
        server.protocol_errors,
    );
    counter(
        "prometheus_server_db_errors_total",
        "Requests the database layer rejected.",
        server.db_errors,
    );
    counter(
        "prometheus_server_units_committed_total",
        "Units of work committed over the wire.",
        server.units_committed,
    );
    counter(
        "prometheus_server_units_aborted_total",
        "Units rolled back on client request.",
        server.units_aborted,
    );
    counter(
        "prometheus_server_units_rolled_back_on_disconnect_total",
        "Units rolled back because the connection dropped mid-unit.",
        server.units_rolled_back_on_disconnect,
    );
    counter(
        "prometheus_server_units_timed_out_total",
        "Units rolled back at the idle deadline.",
        server.units_timed_out,
    );
    counter(
        "prometheus_server_plan_cache_hits_total",
        "Queries answered from the POOL plan cache.",
        server.plan_cache_hits,
    );
    counter(
        "prometheus_server_plan_cache_misses_total",
        "Queries that had to parse and plan.",
        server.plan_cache_misses,
    );
    counter(
        "prometheus_server_parallel_morsels_total",
        "Work morsels executed by parallel query workers.",
        server.parallel_morsels,
    );
    counter(
        "prometheus_storage_log_appends_total",
        "Redo-log records appended.",
        storage.log_appends,
    );
    counter(
        "prometheus_storage_bytes_written_total",
        "Bytes appended to the redo log.",
        storage.bytes_written,
    );
    counter(
        "prometheus_storage_syncs_total",
        "fsync calls on the redo log.",
        storage.syncs,
    );
    counter(
        "prometheus_storage_cache_hits_total",
        "Object-cache hits.",
        storage.cache_hits,
    );
    counter(
        "prometheus_storage_cache_misses_total",
        "Object-cache misses.",
        storage.cache_misses,
    );
    counter(
        "prometheus_storage_commits_total",
        "Transactions committed.",
        storage.commits,
    );
    counter(
        "prometheus_storage_aborts_total",
        "Transactions rolled back.",
        storage.aborts,
    );
    counter(
        "prometheus_storage_snapshot_swaps_total",
        "Immutable snapshot publications.",
        storage.snapshot_swaps,
    );
    counter(
        "prometheus_storage_image_nodes_cloned_total",
        "Persistent-map nodes path-copied while publishing commits.",
        storage.image_nodes_cloned,
    );
    counter(
        "prometheus_storage_image_bytes_copied_total",
        "Bytes copied cloning image nodes (structure only, not payloads).",
        storage.image_bytes_copied,
    );
    counter(
        "prometheus_storage_units_2pc_total",
        "Cross-shard units settled with a two-phase prepare/decide round.",
        storage.units_2pc,
    );

    let mut gauge = |name: &str, help: &str, value: u64| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    };
    gauge(
        "prometheus_server_connections_active",
        "Sessions currently being served.",
        server.connections_active,
    );
    gauge(
        "prometheus_server_accept_queue_depth",
        "Accepted connections waiting for a free worker (blocking mode) or a ready slot (event mode).",
        server.accept_queue_depth,
    );
    gauge(
        "prometheus_server_shards",
        "Writer lanes / shard logs this server runs (1 = unsharded).",
        server.shards as u64,
    );

    // Per-shard breakdowns, labelled shard="k". The aggregate counters
    // above keep their unlabelled names, so single-shard dashboards are
    // untouched and sharded ones can sum or drill down.
    if !server.per_shard.is_empty() {
        type ShardSpec = (
            &'static str,
            &'static str,
            &'static str,
            fn(&crate::metrics::ShardMetrics) -> u64,
        );
        let per_shard: [ShardSpec; 4] = [
            (
                "prometheus_server_shard_lane_depth",
                "Writers holding or queued for this shard's lane.",
                "gauge",
                |s| s.lane_depth,
            ),
            (
                "prometheus_storage_shard_snapshot_swaps_total",
                "Immutable snapshot publications on this shard.",
                "counter",
                |s| s.snapshot_swaps,
            ),
            (
                "prometheus_storage_shard_image_bytes_copied_total",
                "Bytes copied cloning image nodes on this shard.",
                "counter",
                |s| s.image_bytes_copied,
            ),
            (
                "prometheus_storage_shard_units_2pc_total",
                "Two-phase units this shard participated in.",
                "counter",
                |s| s.units_2pc,
            ),
        ];
        for (name, help, kind, value) in per_shard {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for (k, s) in server.per_shard.iter().enumerate() {
                let _ = writeln!(out, "{name}{{shard=\"{k}\"}} {}", value(s));
            }
        }
    }

    let _ = writeln!(
        out,
        "# HELP prometheus_server_requests_total Requests processed, by kind."
    );
    let _ = writeln!(out, "# TYPE prometheus_server_requests_total counter");
    for (kind, n) in &server.requests_by_kind {
        let _ = writeln!(
            out,
            "prometheus_server_requests_total{{kind=\"{kind}\"}} {n}"
        );
    }

    let hist = &server.latency;
    let _ = writeln!(
        out,
        "# HELP prometheus_server_request_latency_us Per-request wall-clock latency (µs)."
    );
    let _ = writeln!(out, "# TYPE prometheus_server_request_latency_us histogram");
    let mut cumulative = 0u64;
    for (i, &n) in hist.counts.iter().enumerate() {
        cumulative += n;
        match hist.bounds_us.get(i) {
            Some(bound) => {
                let _ = writeln!(
                    out,
                    "prometheus_server_request_latency_us_bucket{{le=\"{bound}\"}} {cumulative}"
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "prometheus_server_request_latency_us_bucket{{le=\"+Inf\"}} {cumulative}"
                );
            }
        }
    }
    let _ = writeln!(
        out,
        "prometheus_server_request_latency_us_sum {}",
        hist.sum_us
    );
    let _ = writeln!(
        out,
        "prometheus_server_request_latency_us_count {}",
        hist.count
    );

    if !server.latency_by_class.is_empty() {
        let _ = writeln!(
            out,
            "# HELP prometheus_server_request_class_latency_us Request latency (µs) by request class."
        );
        let _ = writeln!(
            out,
            "# TYPE prometheus_server_request_class_latency_us histogram"
        );
        for (class, hist) in &server.latency_by_class {
            let mut cumulative = 0u64;
            for (i, &n) in hist.counts.iter().enumerate() {
                cumulative += n;
                let le = match hist.bounds_us.get(i) {
                    Some(bound) => bound.to_string(),
                    None => "+Inf".into(),
                };
                let _ = writeln!(
                    out,
                    "prometheus_server_request_class_latency_us_bucket{{class=\"{class}\",le=\"{le}\"}} {cumulative}"
                );
            }
            let _ = writeln!(
                out,
                "prometheus_server_request_class_latency_us_sum{{class=\"{class}\"}} {}",
                hist.sum_us
            );
            let _ = writeln!(
                out,
                "prometheus_server_request_class_latency_us_count{{class=\"{class}\"}} {}",
                hist.count
            );
        }
    }

    // Process self-metrics: when the server started, how long it has been
    // up, and what build is running. `build_info` follows the Prometheus
    // convention of a constant `1` gauge whose labels carry the versions.
    let _ = writeln!(
        out,
        "# HELP prometheus_server_start_time_seconds Unix time the server started."
    );
    let _ = writeln!(out, "# TYPE prometheus_server_start_time_seconds gauge");
    let _ = writeln!(
        out,
        "prometheus_server_start_time_seconds {}",
        server.start_unix_s
    );
    let _ = writeln!(
        out,
        "# HELP prometheus_server_uptime_seconds Seconds since the server started."
    );
    let _ = writeln!(out, "# TYPE prometheus_server_uptime_seconds gauge");
    let _ = writeln!(out, "prometheus_server_uptime_seconds {}", server.uptime_s);
    if !server.build_info.is_empty() {
        let _ = writeln!(
            out,
            "# HELP prometheus_server_build_info Constant 1; labels carry crate and protocol versions."
        );
        let _ = writeln!(out, "# TYPE prometheus_server_build_info gauge");
        let labels: Vec<String> = server
            .build_info
            .iter()
            .map(|(k, v)| format!("{k}=\"{v}\""))
            .collect();
        let _ = writeln!(
            out,
            "prometheus_server_build_info{{{}}} 1",
            labels.join(",")
        );
    }

    // Flight-recorder health: how many span events the recorder has taken,
    // how many it honestly dropped, and how the bounded trace index is
    // coping. A rising drop rate means the ring is undersized for the load.
    write_counter(
        &mut out,
        "prometheus_trace_events_written_total",
        "Span events accepted by the flight recorder.",
        server.trace_events_written,
    );
    write_counter(
        &mut out,
        "prometheus_trace_events_dropped_total",
        "Span events dropped because the recorder ring was contended or full.",
        server.trace_dropped,
    );
    write_counter(
        &mut out,
        "prometheus_trace_index_evictions_total",
        "Trace-index buckets recycled to admit newer traces.",
        server.trace_index_evictions,
    );
    write_counter(
        &mut out,
        "prometheus_trace_index_overflows_total",
        "Span events not indexed because their trace's slot list was full.",
        server.trace_index_overflows,
    );

    // Per-stage rollup histograms aggregated lock-free from span events:
    // one `{stage=…}` family over fixed µs bounds. Only stages that have
    // observed at least one span are emitted, keeping quiet servers terse.
    let live: Vec<_> = server
        .trace_rollups
        .iter()
        .filter(|r| r.count > 0)
        .collect();
    if !live.is_empty() {
        let _ = writeln!(
            out,
            "# HELP prometheus_trace_stage_duration_us Span duration (µs) by pipeline stage."
        );
        let _ = writeln!(out, "# TYPE prometheus_trace_stage_duration_us histogram");
        for r in live {
            let stage = &r.stage;
            let mut cumulative = 0u64;
            for (i, &n) in r.counts.iter().enumerate() {
                cumulative += n;
                let le = match r.bounds_us.get(i) {
                    Some(bound) => bound.to_string(),
                    None => "+Inf".into(),
                };
                let _ = writeln!(
                    out,
                    "prometheus_trace_stage_duration_us_bucket{{stage=\"{stage}\",le=\"{le}\"}} {cumulative}"
                );
            }
            let _ = writeln!(
                out,
                "prometheus_trace_stage_duration_us_sum{{stage=\"{stage}\"}} {}",
                r.sum_us
            );
            let _ = writeln!(
                out,
                "prometheus_trace_stage_duration_us_count{{stage=\"{stage}\"}} {}",
                r.count
            );
        }
    }

    if !server.replication.is_empty() {
        type GaugeSpec = (
            &'static str,
            &'static str,
            fn(&crate::metrics::FollowerLag) -> u64,
        );
        let gauges: [GaugeSpec; 3] = [
            (
                "prometheus_server_replication_follower_lag_bytes",
                "Committed redo-log bytes a follower has not pulled yet.",
                |f| f.lag_bytes,
            ),
            (
                "prometheus_server_replication_follower_next_offset",
                "The log offset a follower will poll next.",
                |f| f.next_offset,
            ),
            (
                "prometheus_server_replication_follower_last_poll_age_us",
                "Micros since a follower last polled; large means it is gone.",
                |f| f.last_poll_age_us,
            ),
        ];
        for (name, help, value) in gauges {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            for f in &server.replication {
                let _ = writeln!(
                    out,
                    "{name}{{follower=\"{}\",shard=\"{}\"}} {}",
                    f.follower,
                    f.shard,
                    value(f)
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{FollowerLag, LATENCY_BOUNDS_US, LATENCY_BUCKETS};

    #[test]
    fn exposition_renders_counters_and_histogram() {
        let mut server = MetricsSnapshot {
            connections_accepted: 3,
            connections_active: 1,
            accept_queue_depth: 2,
            sessions_reaped: 4,
            requests_by_kind: vec![("query".into(), 12), ("ping".into(), 2)],
            plan_cache_hits: 9,
            ..MetricsSnapshot::default()
        };
        server.latency.bounds_us = LATENCY_BOUNDS_US.to_vec();
        server.latency.counts = vec![0; LATENCY_BUCKETS];
        server.latency.counts[0] = 5;
        server.latency.counts[LATENCY_BUCKETS - 1] = 1;
        server.latency.count = 6;
        server.latency.sum_us = 2_000_100;
        let mut query_hist = server.latency.clone();
        query_hist.counts[LATENCY_BUCKETS - 1] = 0;
        query_hist.count = 5;
        server.latency_by_class = vec![("query".into(), query_hist)];
        server.replication = vec![FollowerLag {
            follower: "replica-a".into(),
            shard: 0,
            next_offset: 100,
            log_len: 400,
            lag_bytes: 300,
            last_poll_age_us: 1_500,
        }];
        server.shards = 2;
        server.per_shard = vec![
            crate::metrics::ShardMetrics {
                lane_depth: 1,
                snapshot_swaps: 7,
                image_bytes_copied: 64,
                units_2pc: 2,
            },
            crate::metrics::ShardMetrics {
                lane_depth: 0,
                snapshot_swaps: 3,
                image_bytes_copied: 32,
                units_2pc: 2,
            },
        ];
        let storage = StatsSnapshot {
            commits: 4,
            units_2pc: 4,
            ..StatsSnapshot::default()
        };
        let text = render_prometheus_exposition(&server, &storage);
        assert!(text.contains("prometheus_server_connections_accepted_total 3"));
        assert!(text.contains("prometheus_server_connections_active 1"));
        assert!(text.contains("prometheus_server_accept_queue_depth 2"));
        assert!(text.contains("prometheus_server_sessions_reaped_total 4"));
        assert!(text.contains("prometheus_server_requests_total{kind=\"query\"} 12"));
        assert!(text.contains("prometheus_server_plan_cache_hits_total 9"));
        assert!(text.contains("prometheus_storage_commits_total 4"));
        // Histogram buckets are cumulative and end at +Inf = count.
        assert!(text.contains("prometheus_server_request_latency_us_bucket{le=\"50\"} 5"));
        assert!(text.contains("prometheus_server_request_latency_us_bucket{le=\"+Inf\"} 6"));
        assert!(text.contains("prometheus_server_request_latency_us_count 6"));
        // Per-class histograms and per-follower replication-lag gauges.
        assert!(text.contains(
            "prometheus_server_request_class_latency_us_bucket{class=\"query\",le=\"50\"} 5"
        ));
        assert!(
            text.contains("prometheus_server_request_class_latency_us_count{class=\"query\"} 5")
        );
        assert!(text.contains(
            "prometheus_server_replication_follower_lag_bytes{follower=\"replica-a\",shard=\"0\"} 300"
        ));
        assert!(text.contains(
            "prometheus_server_replication_follower_next_offset{follower=\"replica-a\",shard=\"0\"} 100"
        ));
        // Shard-labelled breakdowns alongside unlabelled aggregates.
        assert!(text.contains("prometheus_server_shards 2"));
        assert!(text.contains("prometheus_storage_units_2pc_total 4"));
        assert!(text.contains("prometheus_server_shard_lane_depth{shard=\"0\"} 1"));
        assert!(text.contains("prometheus_storage_shard_snapshot_swaps_total{shard=\"1\"} 3"));
        assert!(text.contains("prometheus_storage_shard_units_2pc_total{shard=\"0\"} 2"));
        assert!(text.contains("prometheus_storage_shard_image_bytes_copied_total{shard=\"1\"} 32"));
        // Every non-comment line is "name[{labels}] value".
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split_whitespace().count(), 2, "malformed line: {line}");
        }
    }

    /// A deterministic snapshot pair that exercises every family the
    /// renderer knows: plain counters, gauges, shard/follower labels,
    /// histograms, build_info, and the trace rollups.
    fn full_snapshots() -> (MetricsSnapshot, StatsSnapshot) {
        let mut server = MetricsSnapshot {
            connections_accepted: 7,
            connections_active: 2,
            accept_queue_depth: 1,
            sessions_reaped: 3,
            protocol_errors: 1,
            db_errors: 2,
            units_committed: 11,
            units_aborted: 1,
            units_rolled_back_on_disconnect: 1,
            units_timed_out: 1,
            plan_cache_hits: 20,
            plan_cache_misses: 4,
            parallel_morsels: 16,
            requests_by_kind: vec![("ping".into(), 2), ("query".into(), 24)],
            shards: 2,
            start_unix_s: 1_700_000_000,
            uptime_s: 3_600,
            build_info: vec![
                ("version".into(), "0.1.0".into()),
                ("protocol".into(), "8".into()),
            ],
            trace_events_written: 900,
            trace_dropped: 5,
            trace_index_evictions: 2,
            trace_index_overflows: 1,
            ..MetricsSnapshot::default()
        };
        server.latency.bounds_us = LATENCY_BOUNDS_US.to_vec();
        server.latency.counts = vec![0; LATENCY_BUCKETS];
        server.latency.counts[0] = 9;
        server.latency.count = 9;
        server.latency.sum_us = 450;
        server.per_shard = vec![
            crate::metrics::ShardMetrics {
                lane_depth: 1,
                snapshot_swaps: 6,
                image_bytes_copied: 640,
                units_2pc: 3,
            },
            crate::metrics::ShardMetrics {
                lane_depth: 0,
                snapshot_swaps: 5,
                image_bytes_copied: 320,
                units_2pc: 3,
            },
        ];
        server.replication = vec![FollowerLag {
            follower: "replica-a".into(),
            shard: 1,
            next_offset: 2_048,
            log_len: 4_096,
            lag_bytes: 2_048,
            last_poll_age_us: 500,
        }];
        server.trace_rollups = vec![
            prometheus_trace::StageRollup {
                stage: "lane_wait".into(),
                bounds_us: prometheus_trace::ROLLUP_BOUNDS_US.to_vec(),
                counts: vec![4, 2, 0, 0, 0, 0, 0, 0, 1],
                count: 7,
                sum_us: 1_234,
            },
            prometheus_trace::StageRollup {
                stage: "unit_prepare".into(),
                bounds_us: prometheus_trace::ROLLUP_BOUNDS_US.to_vec(),
                counts: vec![3, 0, 0, 0, 0, 0, 0, 0, 0],
                count: 3,
                sum_us: 90,
            },
            // A silent stage must be omitted from the exposition entirely.
            prometheus_trace::StageRollup {
                stage: "replica_apply".into(),
                bounds_us: prometheus_trace::ROLLUP_BOUNDS_US.to_vec(),
                counts: vec![0; 9],
                count: 0,
                sum_us: 0,
            },
        ];
        let storage = StatsSnapshot {
            log_appends: 40,
            bytes_written: 8_192,
            syncs: 12,
            cache_hits: 300,
            cache_misses: 30,
            commits: 11,
            aborts: 2,
            snapshot_swaps: 11,
            image_nodes_cloned: 88,
            image_bytes_copied: 960,
            units_2pc: 3,
            ..StatsSnapshot::default()
        };
        (server, storage)
    }

    /// Satellite 1: every exposed series has `# HELP` and `# TYPE` lines,
    /// verified by actually parsing the exposition rather than spot checks.
    /// The parser enforces the text-format grammar: HELP before TYPE, TYPE
    /// before samples, valid metric kinds, histogram suffix rules, and no
    /// sample without a preceding family declaration.
    #[test]
    fn every_series_is_declared_with_help_and_type() {
        use std::collections::HashMap;
        let (server, storage) = full_snapshots();
        let text = render_prometheus_exposition(&server, &storage);

        let mut helped: HashMap<String, bool> = HashMap::new(); // name -> typed?
        let mut types: HashMap<String, String> = HashMap::new();
        let mut sampled: Vec<String> = Vec::new();
        for line in text.lines() {
            assert!(!line.trim().is_empty(), "blank line in exposition");
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split_whitespace().next().expect("HELP has a name");
                assert!(
                    rest.len() > name.len() + 1,
                    "HELP without help text: {line}"
                );
                assert!(
                    helped.insert(name.to_string(), false).is_none(),
                    "duplicate HELP for {name}"
                );
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                let name = it.next().expect("TYPE has a name");
                let kind = it.next().expect("TYPE has a kind");
                assert!(
                    matches!(kind, "counter" | "gauge" | "histogram"),
                    "unknown metric kind: {line}"
                );
                assert_eq!(
                    helped.get(name),
                    Some(&false),
                    "TYPE without preceding HELP (or duplicate TYPE): {name}"
                );
                helped.insert(name.to_string(), true);
                types.insert(name.to_string(), kind.to_string());
            } else {
                let mut parts = line.split_whitespace();
                let series = parts.next().expect("sample has a series");
                let value = parts.next().expect("sample has a value");
                assert!(parts.next().is_none(), "trailing tokens: {line}");
                value.parse::<f64>().expect("sample value is numeric");
                let base = series.split('{').next().unwrap();
                // Histogram samples attach _bucket/_sum/_count to the family.
                let family = ["_bucket", "_sum", "_count"]
                    .iter()
                    .find_map(|suf| base.strip_suffix(suf))
                    .filter(|stripped| {
                        types.get(*stripped).map(String::as_str) == Some("histogram")
                    })
                    .unwrap_or(base);
                assert_eq!(
                    helped.get(family),
                    Some(&true),
                    "sample without HELP+TYPE declaration: {line}"
                );
                if types[family] != "histogram" {
                    assert_eq!(base, family, "suffix on non-histogram series: {line}");
                }
                sampled.push(family.to_string());
            }
        }
        // No family is declared and then never sampled.
        for name in helped.keys() {
            assert!(
                sampled.iter().any(|s| s == name),
                "family {name} declared but has no samples"
            );
        }
        // Sanity: the families this PR added are all present.
        for required in [
            "prometheus_server_start_time_seconds",
            "prometheus_server_uptime_seconds",
            "prometheus_server_build_info",
            "prometheus_trace_events_written_total",
            "prometheus_trace_events_dropped_total",
            "prometheus_trace_index_evictions_total",
            "prometheus_trace_index_overflows_total",
            "prometheus_trace_stage_duration_us",
        ] {
            assert!(types.contains_key(required), "missing family {required}");
        }
    }

    /// Satellite 4: golden-file test. The exposition of a fixed snapshot is
    /// byte-for-byte stable — ordering included — so dashboards and scrape
    /// configs never see series silently renamed or reordered. Regenerate
    /// with `UPDATE_GOLDEN=1 cargo test -p prometheus-server golden`.
    #[test]
    fn exposition_matches_golden_file() {
        let (server, storage) = full_snapshots();
        let text = render_prometheus_exposition(&server, &storage);
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("testdata")
            .join("exposition.golden.txt");
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &text).unwrap();
            return;
        }
        let golden = std::fs::read_to_string(&path)
            .expect("golden file missing; run with UPDATE_GOLDEN=1 to create it");
        assert_eq!(
            text, golden,
            "exposition drifted from the golden file; if intentional, \
             regenerate with UPDATE_GOLDEN=1"
        );
    }

    #[test]
    fn stage_rollups_render_cumulative_buckets() {
        let (server, storage) = full_snapshots();
        let text = render_prometheus_exposition(&server, &storage);
        // lane_wait counts [4,2,...,1] → cumulative 4, 6, …, +Inf = 7.
        assert!(text.contains(
            "prometheus_trace_stage_duration_us_bucket{stage=\"lane_wait\",le=\"50\"} 4"
        ));
        assert!(text.contains(
            "prometheus_trace_stage_duration_us_bucket{stage=\"lane_wait\",le=\"100\"} 6"
        ));
        assert!(text.contains(
            "prometheus_trace_stage_duration_us_bucket{stage=\"lane_wait\",le=\"+Inf\"} 7"
        ));
        assert!(text.contains("prometheus_trace_stage_duration_us_count{stage=\"lane_wait\"} 7"));
        assert!(text.contains("prometheus_trace_stage_duration_us_sum{stage=\"lane_wait\"} 1234"));
        // The silent replica_apply rollup is omitted.
        assert!(!text.contains("stage=\"replica_apply\""));
        // Self-metrics and build info.
        assert!(text.contains("prometheus_server_start_time_seconds 1700000000"));
        assert!(text.contains("prometheus_server_uptime_seconds 3600"));
        assert!(text.contains("prometheus_server_build_info{version=\"0.1.0\",protocol=\"8\"} 1"));
    }
}
