//! Follower-side replication status, shared between the puller and the
//! server.
//!
//! A read-only follower runs two loops: the **puller** (in
//! `prometheus-replica`) streams redo frames from the primary and applies
//! them, and the **server** answers read-only queries plus
//! [`crate::protocol::Request::ReplicaStatus`]. They meet in a
//! [`ReplicaStatusCell`]: a handful of atomics the puller writes after every
//! poll and the server reads when asked, so status requests never wait on
//! the replication socket.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Marks a server as a read-only replication follower.
///
/// Passed to [`crate::ServerConfig::replica`]: the server then rejects every
/// mutating verb with [`crate::ErrorKind::ReadOnlyReplica`] (the error
/// message names `primary`) and answers `ReplicaStatus` from `status`
/// instead of its own store.
#[derive(Debug, Clone)]
pub struct ReplicaInfo {
    /// Address of the primary that accepts writes, as clients should dial it.
    pub primary: String,
    /// Live replication progress, written by the puller thread.
    pub status: Arc<ReplicaStatusCell>,
}

/// Lock-free replication progress shared by the puller and the server.
///
/// All timestamps are microseconds since the cell was created, so readers
/// can turn them into ages without a wall clock. A follower that has never
/// caught up reports its age since start — honest, and it converges to the
/// real lag the moment the first catch-up lands.
#[derive(Debug)]
pub struct ReplicaStatusCell {
    /// Primary's log epoch as of the last successful poll.
    epoch: AtomicU64,
    /// How far the follower has durably applied, in primary log bytes.
    applied_offset: AtomicU64,
    /// The primary's committed log length as of the last successful poll.
    primary_log_len: AtomicU64,
    /// Micros-since-start of the last poll that left us fully caught up
    /// (`applied_offset == primary_log_len`).
    caught_up_at_us: AtomicU64,
    /// Times the follower discarded its state and resynced from offset 0
    /// (primary compacted, or the cursors diverged).
    resyncs: AtomicU64,
    /// Successful polls against the primary (0 = never reached it).
    polls: AtomicU64,
    origin: Instant,
}

impl Default for ReplicaStatusCell {
    fn default() -> Self {
        ReplicaStatusCell {
            epoch: AtomicU64::new(0),
            applied_offset: AtomicU64::new(0),
            primary_log_len: AtomicU64::new(0),
            caught_up_at_us: AtomicU64::new(0),
            resyncs: AtomicU64::new(0),
            polls: AtomicU64::new(0),
            origin: Instant::now(),
        }
    }
}

impl ReplicaStatusCell {
    fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    /// Record a successful poll: where we are, where the primary is.
    pub fn record_progress(&self, epoch: u64, applied_offset: u64, primary_log_len: u64) {
        self.epoch.store(epoch, Ordering::Relaxed);
        self.applied_offset.store(applied_offset, Ordering::Relaxed);
        self.primary_log_len
            .store(primary_log_len, Ordering::Relaxed);
        self.polls.fetch_add(1, Ordering::Relaxed);
        if applied_offset >= primary_log_len {
            self.caught_up_at_us.store(self.now_us(), Ordering::Relaxed);
        }
    }

    /// Record a forced resync (epoch change or cursor divergence).
    pub fn record_resync(&self) {
        self.resyncs.fetch_add(1, Ordering::Relaxed);
    }

    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    pub fn applied_offset(&self) -> u64 {
        self.applied_offset.load(Ordering::Relaxed)
    }

    pub fn primary_log_len(&self) -> u64 {
        self.primary_log_len.load(Ordering::Relaxed)
    }

    /// Bytes of primary log the follower has not applied yet, as of the
    /// last successful poll. Stale (too small) while the primary is
    /// unreachable — pair with [`ReplicaStatusCell::caught_up_age_us`].
    pub fn lag_bytes(&self) -> u64 {
        self.primary_log_len().saturating_sub(self.applied_offset())
    }

    /// Micros since the follower last observed itself fully caught up.
    /// Grows without bound while the primary is unreachable, which is
    /// exactly what staleness-bounded routing needs.
    pub fn caught_up_age_us(&self) -> u64 {
        self.now_us()
            .saturating_sub(self.caught_up_at_us.load(Ordering::Relaxed))
    }

    pub fn resyncs(&self) -> u64 {
        self.resyncs.load(Ordering::Relaxed)
    }

    pub fn polls(&self) -> u64 {
        self.polls.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_and_catch_up_accounting() {
        let cell = ReplicaStatusCell::default();
        assert_eq!(cell.lag_bytes(), 0);
        cell.record_progress(1, 100, 400);
        assert_eq!(cell.epoch(), 1);
        assert_eq!(cell.lag_bytes(), 300);
        let age_behind = cell.caught_up_age_us();
        cell.record_progress(1, 400, 400);
        assert_eq!(cell.lag_bytes(), 0);
        assert!(
            cell.caught_up_age_us() <= age_behind.max(1_000),
            "catching up must reset the staleness clock"
        );
        cell.record_resync();
        assert_eq!(cell.resyncs(), 1);
    }
}
