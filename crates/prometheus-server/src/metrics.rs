//! Server-side operation counters and latency histogram.
//!
//! Extends the `Stats`/`StatsSnapshot` pattern of `prometheus-storage` one
//! layer up: lock-free atomics bumped on the hot path, and a plain-data,
//! serialisable [`MetricsSnapshot`] that the `stats` wire request returns so
//! any client (the load generator, an operator's REPL) can observe a live
//! server.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bounds (µs, inclusive) of the latency histogram buckets; one
/// overflow bucket follows the last bound.
pub const LATENCY_BOUNDS_US: [u64; 9] =
    [50, 100, 250, 500, 1_000, 5_000, 25_000, 100_000, 1_000_000];

/// Number of histogram buckets (bounds + overflow).
pub const LATENCY_BUCKETS: usize = LATENCY_BOUNDS_US.len() + 1;

/// Request kinds tracked per-counter; mirrors `Request::kind_name`.
pub const REQUEST_KINDS: [&str; 14] = [
    "hello",
    "ping",
    "query",
    "set_context",
    "install_pcl",
    "unit_begin",
    "unit_op",
    "unit_commit",
    "unit_abort",
    "unit_batch",
    "compact",
    "stats",
    "shutdown",
    "bye",
];

/// Shared, lock-free counters for one running server.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Connections the accept loop has handed to the worker pool.
    pub connections_accepted: AtomicU64,
    /// Sessions currently being served.
    pub connections_active: AtomicU64,
    /// Requests processed, by kind (indexes follow [`REQUEST_KINDS`]).
    requests: [AtomicU64; REQUEST_KINDS.len()],
    /// Frames that failed to decode, or out-of-order requests.
    pub protocol_errors: AtomicU64,
    /// Requests the database layer rejected.
    pub db_errors: AtomicU64,
    /// Units of work committed over the wire.
    pub units_committed: AtomicU64,
    /// Units rolled back on client request (`UnitAbort`).
    pub units_aborted: AtomicU64,
    /// Units rolled back because the connection dropped mid-unit.
    pub units_rolled_back_on_disconnect: AtomicU64,
    /// Units rolled back because the client sat silent past the idle
    /// deadline while holding the writer lane.
    pub units_timed_out: AtomicU64,
    /// Per-request wall-clock latency histogram.
    latency: [AtomicU64; LATENCY_BUCKETS],
    /// Total requests timed (histogram population).
    pub latency_count: AtomicU64,
    /// Sum of all request latencies, µs (for the mean).
    pub latency_sum_us: AtomicU64,
}

impl ServerMetrics {
    /// Count one request of the given kind (by `Request::kind_name`).
    pub fn count_request(&self, kind_name: &str) {
        if let Some(i) = REQUEST_KINDS.iter().position(|k| *k == kind_name) {
            self.requests[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one request's wall-clock latency.
    pub fn record_latency_us(&self, us: u64) {
        let idx = LATENCY_BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(LATENCY_BUCKETS - 1);
        self.latency[idx].fetch_add(1, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Capture a point-in-time copy of all counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_active: self.connections_active.load(Ordering::Relaxed),
            requests_by_kind: REQUEST_KINDS
                .iter()
                .zip(self.requests.iter())
                .map(|(name, counter)| (name.to_string(), counter.load(Ordering::Relaxed)))
                .collect(),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            db_errors: self.db_errors.load(Ordering::Relaxed),
            units_committed: self.units_committed.load(Ordering::Relaxed),
            units_aborted: self.units_aborted.load(Ordering::Relaxed),
            units_rolled_back_on_disconnect: self
                .units_rolled_back_on_disconnect
                .load(Ordering::Relaxed),
            units_timed_out: self.units_timed_out.load(Ordering::Relaxed),
            // Executor counters live with the query executor, not here; the
            // server fills them in when it assembles a snapshot.
            plan_cache_hits: 0,
            plan_cache_misses: 0,
            parallel_morsels: 0,
            latency: LatencyHistogram {
                bounds_us: LATENCY_BOUNDS_US.to_vec(),
                counts: self
                    .latency
                    .iter()
                    .map(|c| c.load(Ordering::Relaxed))
                    .collect(),
                count: self.latency_count.load(Ordering::Relaxed),
                sum_us: self.latency_sum_us.load(Ordering::Relaxed),
            },
        }
    }
}

/// Plain-data snapshot of [`ServerMetrics`]; crosses the wire in
/// `Response::Stats`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub connections_accepted: u64,
    pub connections_active: u64,
    pub requests_by_kind: Vec<(String, u64)>,
    pub protocol_errors: u64,
    pub db_errors: u64,
    pub units_committed: u64,
    pub units_aborted: u64,
    pub units_rolled_back_on_disconnect: u64,
    pub units_timed_out: u64,
    /// Pinned queries answered from the POOL plan cache (protocol v2).
    pub plan_cache_hits: u64,
    /// Pinned queries that had to parse and plan: cold, evicted, or the
    /// schema version moved under the cached plan (protocol v2).
    pub plan_cache_misses: u64,
    /// Work morsels executed by parallel query workers — candidate filters,
    /// outer join loops and traversal frontiers (protocol v2).
    pub parallel_morsels: u64,
    pub latency: LatencyHistogram,
}

impl MetricsSnapshot {
    /// Total requests across all kinds.
    pub fn requests_total(&self) -> u64 {
        self.requests_by_kind.iter().map(|(_, n)| n).sum()
    }

    /// Count for one request kind.
    pub fn requests_of(&self, kind: &str) -> u64 {
        self.requests_by_kind
            .iter()
            .find(|(name, _)| name == kind)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }
}

/// Bucketed latency distribution.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Inclusive upper bounds (µs); one overflow bucket follows.
    pub bounds_us: Vec<u64>,
    /// Populations, `bounds_us.len() + 1` entries.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations, µs.
    pub sum_us: u64,
}

impl LatencyHistogram {
    /// Mean latency in µs (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Histogram-resolution percentile estimate (`p` in `[0, 1]`): the upper
    /// bound of the bucket containing the p-quantile observation. Client-side
    /// exact measurements (the load generator) are preferred for reporting;
    /// this is for quick server-side introspection.
    pub fn approx_percentile_us(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return self
                    .bounds_us
                    .get(i)
                    .copied()
                    .unwrap_or_else(|| self.bounds_us.last().copied().unwrap_or(0) * 10);
            }
        }
        self.bounds_us.last().copied().unwrap_or(0) * 10
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_kind_table_matches_protocol() {
        use crate::protocol::{MutationOp, Request};
        use prometheus_db::{Oid, Value};
        // Every Request variant's kind_name must have a metrics slot.
        let reqs = vec![
            Request::Hello {
                version: 1,
                client: "t".into(),
            },
            Request::Ping,
            Request::Query {
                pool: String::new(),
            },
            Request::SetContext {
                classification: None,
            },
            Request::InstallPcl {
                source: String::new(),
            },
            Request::UnitBegin,
            Request::UnitOp {
                op: MutationOp::SetAttr {
                    oid: Oid::NIL,
                    attr: String::new(),
                    value: Value::Null,
                },
            },
            Request::UnitCommit,
            Request::UnitAbort,
            Request::UnitBatch { ops: Vec::new() },
            Request::Compact,
            Request::Stats,
            Request::Shutdown,
            Request::Bye,
        ];
        assert_eq!(reqs.len(), REQUEST_KINDS.len());
        for r in reqs {
            assert!(
                REQUEST_KINDS.contains(&r.kind_name()),
                "unknown kind {}",
                r.kind_name()
            );
        }
    }

    #[test]
    fn latency_buckets_accumulate() {
        let m = ServerMetrics::default();
        m.record_latency_us(10); // bucket 0 (<=50)
        m.record_latency_us(80); // bucket 1 (<=100)
        m.record_latency_us(2_000_000); // overflow
        let snap = m.snapshot();
        assert_eq!(snap.latency.count, 3);
        assert_eq!(snap.latency.counts[0], 1);
        assert_eq!(snap.latency.counts[1], 1);
        assert_eq!(snap.latency.counts[LATENCY_BUCKETS - 1], 1);
        assert_eq!(snap.latency.sum_us, 2_000_090);
        assert!(snap.latency.mean_us() > 0.0);
    }

    #[test]
    fn percentile_walks_buckets() {
        let m = ServerMetrics::default();
        for _ in 0..99 {
            m.record_latency_us(40);
        }
        m.record_latency_us(900); // lands in the <=1000 bucket
        let snap = m.snapshot();
        assert_eq!(snap.latency.approx_percentile_us(0.50), 50);
        assert_eq!(snap.latency.approx_percentile_us(1.0), 1_000);
        assert_eq!(LatencyHistogram::default().approx_percentile_us(0.5), 0);
    }

    #[test]
    fn request_counters_by_kind() {
        let m = ServerMetrics::default();
        m.count_request("query");
        m.count_request("query");
        m.count_request("ping");
        let snap = m.snapshot();
        assert_eq!(snap.requests_of("query"), 2);
        assert_eq!(snap.requests_of("ping"), 1);
        assert_eq!(snap.requests_of("compact"), 0);
        assert_eq!(snap.requests_total(), 3);
    }
}
