//! Server-side operation counters and latency histogram.
//!
//! Extends the `Stats`/`StatsSnapshot` pattern of `prometheus-storage` one
//! layer up: lock-free atomics bumped on the hot path, and a plain-data,
//! serialisable [`MetricsSnapshot`] that the `stats` wire request returns so
//! any client (the load generator, an operator's REPL) can observe a live
//! server.

use prometheus_pool::ExecStatsSnapshot;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Upper bounds (µs, inclusive) of the latency histogram buckets; one
/// overflow bucket follows the last bound.
pub const LATENCY_BOUNDS_US: [u64; 9] =
    [50, 100, 250, 500, 1_000, 5_000, 25_000, 100_000, 1_000_000];

/// Number of histogram buckets (bounds + overflow).
pub const LATENCY_BUCKETS: usize = LATENCY_BOUNDS_US.len() + 1;

/// Request kinds tracked per-counter; mirrors `Request::kind_name`.
pub const REQUEST_KINDS: [&str; 19] = [
    "hello",
    "ping",
    "query",
    "set_context",
    "install_pcl",
    "unit_begin",
    "unit_op",
    "unit_commit",
    "unit_abort",
    "unit_batch",
    "compact",
    "stats",
    "trace",
    "slow_log",
    "shutdown",
    "bye",
    "replica_poll",
    "replica_status",
    "trace_get",
];

/// Coarse request classes, each with its own latency histogram: a query's
/// latency profile and a replication poll's have nothing in common, and one
/// merged histogram hides both.
pub const REQUEST_CLASSES: [&str; 5] = ["query", "unit", "observability", "replication", "other"];

/// Map a request kind (by `Request::kind_name`) to its [`REQUEST_CLASSES`]
/// index.
pub fn class_of_kind(kind_name: &str) -> usize {
    match kind_name {
        "query" => 0,
        "install_pcl" | "unit_begin" | "unit_op" | "unit_commit" | "unit_abort" | "unit_batch" => 1,
        "stats" | "trace" | "slow_log" | "trace_get" => 2,
        "replica_poll" | "replica_status" => 3,
        _ => 4,
    }
}

/// Shared, lock-free counters for one running server.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Connections the accept loop has handed to the worker pool.
    pub connections_accepted: AtomicU64,
    /// Sessions currently being served.
    pub connections_active: AtomicU64,
    /// Accepted connections (blocking mode) or ready connections (event
    /// mode) currently queued for a worker. A persistently non-zero gauge
    /// means the worker pool is the bottleneck — accepted-but-unserved
    /// sessions used to wait here invisibly.
    pub accept_queued: AtomicU64,
    /// Sessions closed by the idle-connection reaper
    /// ([`crate::ServerConfig::idle_timeout`]): socket closed, any open unit
    /// rolled back.
    pub sessions_reaped: AtomicU64,
    /// Requests processed, by kind (indexes follow [`REQUEST_KINDS`]).
    requests: [AtomicU64; REQUEST_KINDS.len()],
    /// Frames that failed to decode, or out-of-order requests.
    pub protocol_errors: AtomicU64,
    /// Requests the database layer rejected.
    pub db_errors: AtomicU64,
    /// Units of work committed over the wire.
    pub units_committed: AtomicU64,
    /// Units rolled back on client request (`UnitAbort`).
    pub units_aborted: AtomicU64,
    /// Units rolled back because the connection dropped mid-unit.
    pub units_rolled_back_on_disconnect: AtomicU64,
    /// Units rolled back because the client sat silent past the idle
    /// deadline while holding the writer lane.
    pub units_timed_out: AtomicU64,
    /// Per-request wall-clock latency histogram (all kinds merged).
    latency: [AtomicU64; LATENCY_BUCKETS],
    /// Total requests timed (histogram population).
    pub latency_count: AtomicU64,
    /// Sum of all request latencies, µs (for the mean).
    pub latency_sum_us: AtomicU64,
    /// Per-class latency histograms (indexes follow [`REQUEST_CLASSES`]).
    class_latency: [[AtomicU64; LATENCY_BUCKETS]; REQUEST_CLASSES.len()],
    class_count: [AtomicU64; REQUEST_CLASSES.len()],
    class_sum_us: [AtomicU64; REQUEST_CLASSES.len()],
    /// Replication followers by (name, shard): cursor and horizon at their
    /// last poll of that shard's log, for per-follower lag in `stats` and
    /// the prometheus exposition. Cold path (one update per poll), so a
    /// plain mutex is fine here.
    followers: Mutex<HashMap<(String, u32), FollowerTrack>>,
}

#[derive(Debug)]
struct FollowerTrack {
    next_offset: u64,
    log_len: u64,
    last_poll: Instant,
}

impl ServerMetrics {
    /// Count one request of the given kind (by `Request::kind_name`).
    pub fn count_request(&self, kind_name: &str) {
        if let Some(i) = REQUEST_KINDS.iter().position(|k| *k == kind_name) {
            self.requests[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one request's wall-clock latency, both in the merged histogram
    /// and in the request-class histogram `kind_name` maps to.
    pub fn record_latency_us(&self, kind_name: &str, us: u64) {
        let idx = LATENCY_BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(LATENCY_BUCKETS - 1);
        self.latency[idx].fetch_add(1, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        let class = class_of_kind(kind_name);
        self.class_latency[class][idx].fetch_add(1, Ordering::Relaxed);
        self.class_count[class].fetch_add(1, Ordering::Relaxed);
        self.class_sum_us[class].fetch_add(us, Ordering::Relaxed);
    }

    /// Record a replication follower's poll of one shard's log: its cursor
    /// after the batch and the committed horizon it was served against.
    pub fn record_follower_poll(&self, follower: &str, shard: u32, next_offset: u64, log_len: u64) {
        let mut followers = self.followers.lock().expect("follower map poisoned");
        followers.insert(
            (follower.to_string(), shard),
            FollowerTrack {
                next_offset,
                log_len,
                last_poll: Instant::now(),
            },
        );
    }

    /// Capture a point-in-time copy of all counters.
    ///
    /// The executor's counters (plan cache, parallel morsels) live with the
    /// query executor, not here — the caller passes its snapshot in, so a
    /// wire-ready [`MetricsSnapshot`] can never ship zeroed executor fields
    /// by accident. Standalone callers (tests, exposition of a metrics-only
    /// object) pass `&ExecStatsSnapshot::default()`.
    pub fn snapshot(&self, exec: &ExecStatsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_active: self.connections_active.load(Ordering::Relaxed),
            accept_queue_depth: self.accept_queued.load(Ordering::Relaxed),
            sessions_reaped: self.sessions_reaped.load(Ordering::Relaxed),
            requests_by_kind: REQUEST_KINDS
                .iter()
                .zip(self.requests.iter())
                .map(|(name, counter)| (name.to_string(), counter.load(Ordering::Relaxed)))
                .collect(),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            db_errors: self.db_errors.load(Ordering::Relaxed),
            units_committed: self.units_committed.load(Ordering::Relaxed),
            units_aborted: self.units_aborted.load(Ordering::Relaxed),
            units_rolled_back_on_disconnect: self
                .units_rolled_back_on_disconnect
                .load(Ordering::Relaxed),
            units_timed_out: self.units_timed_out.load(Ordering::Relaxed),
            plan_cache_hits: exec.plan_cache_hits,
            plan_cache_misses: exec.plan_cache_misses,
            parallel_morsels: exec.parallel_morsels,
            latency: LatencyHistogram {
                bounds_us: LATENCY_BOUNDS_US.to_vec(),
                counts: self
                    .latency
                    .iter()
                    .map(|c| c.load(Ordering::Relaxed))
                    .collect(),
                count: self.latency_count.load(Ordering::Relaxed),
                sum_us: self.latency_sum_us.load(Ordering::Relaxed),
            },
            latency_by_class: REQUEST_CLASSES
                .iter()
                .enumerate()
                .map(|(i, name)| {
                    (
                        name.to_string(),
                        LatencyHistogram {
                            bounds_us: LATENCY_BOUNDS_US.to_vec(),
                            counts: self.class_latency[i]
                                .iter()
                                .map(|c| c.load(Ordering::Relaxed))
                                .collect(),
                            count: self.class_count[i].load(Ordering::Relaxed),
                            sum_us: self.class_sum_us[i].load(Ordering::Relaxed),
                        },
                    )
                })
                .collect(),
            replication: {
                let followers = self.followers.lock().expect("follower map poisoned");
                let mut lags: Vec<FollowerLag> = followers
                    .iter()
                    .map(|((name, shard), t)| FollowerLag {
                        follower: name.clone(),
                        shard: *shard,
                        next_offset: t.next_offset,
                        log_len: t.log_len,
                        lag_bytes: t.log_len.saturating_sub(t.next_offset),
                        last_poll_age_us: t.last_poll.elapsed().as_micros() as u64,
                    })
                    .collect();
                lags.sort_by(|a, b| (&a.follower, a.shard).cmp(&(&b.follower, b.shard)));
                lags
            },
            shards: 1,
            per_shard: Vec::new(),
            start_unix_s: 0,
            uptime_s: 0,
            build_info: Vec::new(),
            trace_rollups: Vec::new(),
            trace_events_written: 0,
            trace_dropped: 0,
            trace_index_evictions: 0,
            trace_index_overflows: 0,
        }
    }
}

/// Plain-data snapshot of [`ServerMetrics`]; crosses the wire in
/// `Response::Stats`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub connections_accepted: u64,
    pub connections_active: u64,
    /// Connections queued for a worker at snapshot time (protocol v6).
    pub accept_queue_depth: u64,
    /// Sessions closed by the idle-connection reaper (protocol v6).
    pub sessions_reaped: u64,
    pub requests_by_kind: Vec<(String, u64)>,
    pub protocol_errors: u64,
    pub db_errors: u64,
    pub units_committed: u64,
    pub units_aborted: u64,
    pub units_rolled_back_on_disconnect: u64,
    pub units_timed_out: u64,
    /// Pinned queries answered from the POOL plan cache (protocol v2).
    pub plan_cache_hits: u64,
    /// Pinned queries that had to parse and plan: cold, evicted, or the
    /// schema version moved under the cached plan (protocol v2).
    pub plan_cache_misses: u64,
    /// Work morsels executed by parallel query workers — candidate filters,
    /// outer join loops and traversal frontiers (protocol v2).
    pub parallel_morsels: u64,
    pub latency: LatencyHistogram,
    /// Per-request-class latency histograms, in [`REQUEST_CLASSES`] order
    /// (protocol v4).
    pub latency_by_class: Vec<(String, LatencyHistogram)>,
    /// Per-follower replication lag as of each follower's last poll, sorted
    /// by (follower name, shard) (protocol v4; one entry per polled shard
    /// since v7; empty when nothing replicates).
    pub replication: Vec<FollowerLag>,
    /// Number of store shards behind this server (protocol v7).
    pub shards: u32,
    /// Per-shard observability, one entry per shard in shard order
    /// (protocol v7). Aggregate counters above and in the storage snapshot
    /// are totals across shards; these break the contended ones down.
    pub per_shard: Vec<ShardMetrics>,
    /// Server process start time, seconds since the Unix epoch
    /// (protocol v8).
    pub start_unix_s: u64,
    /// Seconds this server has been up at snapshot time (protocol v8).
    pub uptime_s: u64,
    /// Build identity as (key, value) label pairs — crate name and version
    /// — for the `build_info` gauge (protocol v8).
    pub build_info: Vec<(String, String)>,
    /// Flight-recorder per-stage rollup histograms, in `Stage::ALL` order;
    /// empty when tracing is disabled (protocol v8).
    pub trace_rollups: Vec<prometheus_trace::StageRollup>,
    /// Span events the trace ring accepted (protocol v8).
    pub trace_events_written: u64,
    /// Span events dropped to a lapped-writer collision (protocol v8).
    pub trace_dropped: u64,
    /// Trace-index buckets evicted by colliding traces (protocol v8).
    pub trace_index_evictions: u64,
    /// Spans recorded past a trace's index capacity (protocol v8).
    pub trace_index_overflows: u64,
}

/// One shard's slice of the contended counters (protocol v7).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ShardMetrics {
    /// Sessions queued or holding this shard's writer lane right now.
    pub lane_depth: u64,
    /// Snapshot publications on this shard's store.
    pub snapshot_swaps: u64,
    /// Bytes copied publishing this shard's image.
    pub image_bytes_copied: u64,
    /// Cross-shard (two-phase) units this shard participated in.
    pub units_2pc: u64,
}

/// One replication follower's position on one shard's log, as the primary
/// last saw it.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FollowerLag {
    /// The follower's self-chosen stable name.
    pub follower: String,
    /// The member shard this cursor tracks (protocol v7).
    pub shard: u32,
    /// Byte cursor the follower will poll from next.
    pub next_offset: u64,
    /// Committed log length it was last served against.
    pub log_len: u64,
    /// `log_len - next_offset`: bytes the follower had not yet applied.
    pub lag_bytes: u64,
    /// Microseconds since the follower's last poll.
    pub last_poll_age_us: u64,
}

impl MetricsSnapshot {
    /// Total requests across all kinds.
    pub fn requests_total(&self) -> u64 {
        self.requests_by_kind.iter().map(|(_, n)| n).sum()
    }

    /// Count for one request kind.
    pub fn requests_of(&self, kind: &str) -> u64 {
        self.requests_by_kind
            .iter()
            .find(|(name, _)| name == kind)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }
}

/// Bucketed latency distribution.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Inclusive upper bounds (µs); one overflow bucket follows.
    pub bounds_us: Vec<u64>,
    /// Populations, `bounds_us.len() + 1` entries.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations, µs.
    pub sum_us: u64,
}

impl LatencyHistogram {
    /// Mean latency in µs (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Histogram-resolution percentile estimate (`p` in `[0, 1]`): the upper
    /// bound of the bucket containing the p-quantile observation, or `None`
    /// when that observation fell in the unbounded overflow bucket (or the
    /// histogram is empty) — the histogram genuinely does not know how slow
    /// those requests were, and a fabricated number would be worse than an
    /// honest "over the last bound". Client-side exact measurements (the
    /// load generator) are preferred for reporting; this is for quick
    /// server-side introspection.
    pub fn approx_percentile_us(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // The last bucket has no upper bound: get() misses and the
                // estimate is honestly unavailable.
                return self.bounds_us.get(i).copied();
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_kind_table_matches_protocol() {
        use crate::protocol::{MutationOp, Request};
        use prometheus_db::{Oid, Value};
        // Every Request variant's kind_name must have a metrics slot.
        let reqs = vec![
            Request::Hello {
                version: 1,
                client: "t".into(),
            },
            Request::Ping,
            Request::Query {
                pool: String::new(),
            },
            Request::SetContext {
                classification: None,
            },
            Request::InstallPcl {
                source: String::new(),
            },
            Request::UnitBegin,
            Request::UnitOp {
                op: MutationOp::SetAttr {
                    oid: Oid::NIL,
                    attr: String::new(),
                    value: Value::Null,
                },
            },
            Request::UnitCommit,
            Request::UnitAbort,
            Request::UnitBatch { ops: Vec::new() },
            Request::Compact,
            Request::Stats,
            Request::Trace { n: 1 },
            Request::SlowLog { n: 1 },
            Request::Shutdown,
            Request::Bye,
            Request::ReplicaPoll {
                follower: String::new(),
                shard: 0,
                epoch: 0,
                offset: 0,
                max_bytes: 0,
            },
            Request::ReplicaStatus,
            Request::TraceGet {
                trace_id: prometheus_trace::TraceId::NONE,
            },
        ];
        assert_eq!(reqs.len(), REQUEST_KINDS.len());
        for r in reqs {
            assert!(
                REQUEST_KINDS.contains(&r.kind_name()),
                "unknown kind {}",
                r.kind_name()
            );
            assert!(
                class_of_kind(r.kind_name()) < REQUEST_CLASSES.len(),
                "kind {} has no class",
                r.kind_name()
            );
        }
    }

    #[test]
    fn latency_buckets_accumulate() {
        let m = ServerMetrics::default();
        m.record_latency_us("query", 10); // bucket 0 (<=50)
        m.record_latency_us("query", 80); // bucket 1 (<=100)
        m.record_latency_us("query", 2_000_000); // overflow
        let snap = m.snapshot(&ExecStatsSnapshot::default());
        assert_eq!(snap.latency.count, 3);
        assert_eq!(snap.latency.counts[0], 1);
        assert_eq!(snap.latency.counts[1], 1);
        assert_eq!(snap.latency.counts[LATENCY_BUCKETS - 1], 1);
        assert_eq!(snap.latency.sum_us, 2_000_090);
        assert!(snap.latency.mean_us() > 0.0);
    }

    #[test]
    fn per_class_histograms_split_by_request_kind() {
        let m = ServerMetrics::default();
        m.record_latency_us("query", 10);
        m.record_latency_us("query", 80);
        m.record_latency_us("unit_batch", 600);
        m.record_latency_us("replica_poll", 30);
        m.record_latency_us("trace", 40);
        m.record_latency_us("ping", 5);
        let snap = m.snapshot(&ExecStatsSnapshot::default());
        let of = |class: &str| {
            snap.latency_by_class
                .iter()
                .find(|(name, _)| name == class)
                .map(|(_, h)| h.clone())
                .unwrap()
        };
        assert_eq!(of("query").count, 2);
        assert_eq!(of("unit").count, 1);
        assert_eq!(of("replication").count, 1);
        assert_eq!(of("observability").count, 1);
        assert_eq!(of("other").count, 1);
        // The merged histogram still sees everything.
        assert_eq!(snap.latency.count, 6);
        // Every class observation lands in exactly one bucket of its class.
        assert_eq!(of("query").counts.iter().sum::<u64>(), 2);
        assert_eq!(of("unit").counts[4], 1); // 600µs → <=1000 bucket
    }

    #[test]
    fn follower_polls_surface_as_lag() {
        let m = ServerMetrics::default();
        m.record_follower_poll("replica-b", 0, 100, 400);
        m.record_follower_poll("replica-a", 0, 400, 400);
        let snap = m.snapshot(&ExecStatsSnapshot::default());
        assert_eq!(snap.replication.len(), 2);
        // Sorted by (follower, shard) for stable exposition output.
        assert_eq!(snap.replication[0].follower, "replica-a");
        assert_eq!(snap.replication[0].lag_bytes, 0);
        assert_eq!(snap.replication[1].follower, "replica-b");
        assert_eq!(snap.replication[1].lag_bytes, 300);
        // A later poll replaces the entry, never duplicates it.
        m.record_follower_poll("replica-b", 0, 400, 400);
        let snap = m.snapshot(&ExecStatsSnapshot::default());
        assert_eq!(snap.replication.len(), 2);
        assert_eq!(snap.replication[1].lag_bytes, 0);
        // One cursor per polled shard: the same follower on another shard
        // is its own entry, in shard order.
        m.record_follower_poll("replica-b", 1, 10, 50);
        let snap = m.snapshot(&ExecStatsSnapshot::default());
        assert_eq!(snap.replication.len(), 3);
        assert_eq!(snap.replication[2].shard, 1);
        assert_eq!(snap.replication[2].lag_bytes, 40);
    }

    #[test]
    fn percentile_walks_buckets() {
        let m = ServerMetrics::default();
        for _ in 0..99 {
            m.record_latency_us("query", 40);
        }
        m.record_latency_us("query", 900); // lands in the <=1000 bucket
        let snap = m.snapshot(&ExecStatsSnapshot::default());
        assert_eq!(snap.latency.approx_percentile_us(0.50), Some(50));
        assert_eq!(snap.latency.approx_percentile_us(1.0), Some(1_000));
        assert_eq!(LatencyHistogram::default().approx_percentile_us(0.5), None);
    }

    #[test]
    fn percentile_in_the_overflow_bucket_is_honestly_unknown() {
        let m = ServerMetrics::default();
        m.record_latency_us("query", 40);
        m.record_latency_us("query", 2_000_000); // past the last bound
        let snap = m.snapshot(&ExecStatsSnapshot::default());
        // The median is still known…
        assert_eq!(snap.latency.approx_percentile_us(0.50), Some(50));
        // …but the max fell off the end of the bounds: no fabricated
        // `last_bound * 10`, just an explicit absence.
        assert_eq!(snap.latency.approx_percentile_us(1.0), None);
    }

    #[test]
    fn snapshot_carries_the_executor_counters() {
        let m = ServerMetrics::default();
        let exec = ExecStatsSnapshot {
            plan_cache_hits: 7,
            plan_cache_misses: 2,
            parallel_morsels: 31,
        };
        let snap = m.snapshot(&exec);
        assert_eq!(snap.plan_cache_hits, 7);
        assert_eq!(snap.plan_cache_misses, 2);
        assert_eq!(snap.parallel_morsels, 31);
    }

    #[test]
    fn request_counters_by_kind() {
        let m = ServerMetrics::default();
        m.count_request("query");
        m.count_request("query");
        m.count_request("ping");
        let snap = m.snapshot(&ExecStatsSnapshot::default());
        assert_eq!(snap.requests_of("query"), 2);
        assert_eq!(snap.requests_of("ping"), 1);
        assert_eq!(snap.requests_of("compact"), 0);
        assert_eq!(snap.requests_total(), 3);
    }

    /// Satellite coverage: hammer the server counters and the trace ring
    /// from many threads at once. Snapshot totals must come out exact (no
    /// lost updates), and concurrent ring reads must never block or return
    /// a torn event — the seqlock either yields a consistent payload or
    /// skips the slot.
    #[test]
    fn metrics_and_trace_ring_survive_concurrent_hammering() {
        use prometheus_db::{Recorder, Stage, TraceEvent};
        use std::sync::atomic::{AtomicBool, Ordering};

        const THREADS: u64 = 8;
        const OPS: u64 = 2_000;

        let metrics = ServerMetrics::default();
        let recorder = Recorder::new(256); // small ring: force heavy lapping
        let stop = AtomicBool::new(false);

        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let metrics = &metrics;
                let recorder = &recorder;
                scope.spawn(move || {
                    for i in 0..OPS {
                        metrics.count_request("query");
                        metrics.record_latency_us("query", i % 3_000);
                        // Self-consistent payload: every word equals the
                        // marker, so a torn read is detectable.
                        let marker = t * OPS + i + 1;
                        recorder.record(TraceEvent {
                            trace_id: prometheus_trace::TraceId::from_words(marker, marker),
                            span_id: marker,
                            parent_id: marker,
                            stage: Stage::Scan,
                            start_us: marker,
                            dur_us: marker,
                            c0: marker,
                            c1: marker,
                        });
                    }
                });
            }
            // A reader racing the writers: every event it sees must be
            // internally consistent.
            let reader = scope.spawn(|| {
                let mut seen = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    for ev in recorder.recent(64) {
                        assert_eq!(ev.trace_id.lo, ev.span_id, "torn event: {ev:?}");
                        assert_eq!(ev.trace_id.hi, ev.start_us, "torn event: {ev:?}");
                        assert_eq!(ev.trace_id.lo, ev.c1, "torn event: {ev:?}");
                        seen += 1;
                    }
                }
                seen
            });
            // Scope drops writer handles first; signal the reader once the
            // writers are done by spawning a watcher that joins them via the
            // scope's implicit join — simplest is to let the main thread
            // wait on the metrics totals.
            while metrics.latency_count.load(Ordering::Relaxed) < THREADS * OPS {
                std::thread::yield_now();
            }
            stop.store(true, Ordering::Relaxed);
            let seen = reader.join().unwrap();
            assert!(seen > 0, "reader must observe events while racing");
        });

        let snap = metrics.snapshot(&ExecStatsSnapshot::default());
        assert_eq!(snap.requests_of("query"), THREADS * OPS);
        assert_eq!(snap.latency.count, THREADS * OPS);
        assert_eq!(
            snap.latency.counts.iter().sum::<u64>(),
            THREADS * OPS,
            "every latency observation lands in exactly one bucket"
        );
        // The ring either kept an event or counted it dropped — none vanish.
        assert_eq!(
            recorder.events_written() + recorder.dropped(),
            THREADS * OPS
        );
        assert!(recorder.recent(256).len() <= 256);
    }
}
