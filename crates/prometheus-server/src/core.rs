//! The sans-io session protocol core.
//!
//! [`SessionCore`] is the per-connection protocol state machine with every
//! byte of I/O removed: it consumes decoded [`Request`]s and answers with a
//! [`Step`] — either a ready-made [`Response`] or a typed [`Work`] item for
//! the driver to execute against the database. Both transports drive the
//! same core, so the wire protocol cannot drift between them:
//!
//! * the **blocking** path (`server.rs`, one worker thread per live
//!   session) reads frames with [`crate::frame::read_msg`] and executes
//!   work inline;
//! * the **event-driven** path (`event.rs`, a readiness loop over
//!   non-blocking sockets) feeds bytes through a
//!   [`crate::frame::FrameDecoder`] and schedules work on a small pool,
//!   parking lane-bound work until the FIFO writer lane grants its ticket.
//!
//! ## State machine
//!
//! ```text
//!             Hello(v==N)                    UnitBegin (ack first,
//!  ┌───────┐ ───────────► ┌───────┐          then the writer lane)
//!  │ Fresh │              │ Ready │ ─────────────────────► ┌─────────┐
//!  └───────┘ ───────────► └───────┘ ◄───────────────────── │ In unit │
//!    Hello(v≠N) → close      │  ▲    UnitCommit/UnitAbort/ └─────────┘
//!    anything else → close   │  │    idle deadline (flag)
//!                            │  └── next request after a timed-out unit
//!                            ▼      answers `unit-timed-out`, then Ready
//!                       Bye/Shutdown → close
//! ```
//!
//! The core never touches sockets, clocks, metrics or the database — which
//! is exactly what makes it reusable: the driver owns time (idle deadlines),
//! I/O (framing, backpressure) and effects ([`Work`] execution), while the
//! core owns ordering and protocol legality.
//!
//! ```
//! use prometheus_server::{Request, Response, SessionCore, Step, Work, PROTOCOL_VERSION};
//!
//! let mut core = SessionCore::new(7, None);
//! // Handshake gates everything.
//! let step = core.on_request(Request::Hello {
//!     version: PROTOCOL_VERSION,
//!     client: "example".into(),
//! });
//! assert!(matches!(step, Step::Reply(Response::Welcome { session: 7, .. })));
//! // Pure protocol answers come back as `Reply`…
//! assert!(matches!(core.on_request(Request::Ping), Step::Reply(Response::Pong)));
//! // …requests that need the database come back as typed work items.
//! match core.on_request(Request::Query { pool: "select t from CT t".into() }) {
//!     Step::Do(Work::Query { pinned, .. }) => assert!(pinned), // out of unit → snapshot
//!     other => panic!("expected query work, got {other:?}"),
//! }
//! ```

use crate::error::ErrorKind;
use crate::protocol::{MutationOp, Request, Response, PROTOCOL_VERSION};
use crate::session::Session;

/// What the transport driver must do with one request, as decided by the
/// sans-io [`SessionCore`].
#[derive(Debug)]
pub enum Step {
    /// Send this response; the session continues.
    Reply(Response),
    /// Send this response, then close the connection.
    ReplyClose(Response),
    /// `UnitBegin` was accepted: send [`Response::Ack`] immediately, then
    /// acquire the writer lane (FIFO; possibly queueing), open a database
    /// unit, and call [`SessionCore::unit_opened`]. The ack precedes the
    /// lane on purpose — a queued writer learns it is queued by its *next*
    /// response stalling, exactly like the in-process API blocking on the
    /// lane.
    OpenUnit,
    /// Execute this work item against the database / observability state
    /// and send whatever response it produces.
    Do(Work),
    /// Send this response, then initiate server-wide graceful shutdown and
    /// close this connection.
    ShutdownAfter(Response),
}

/// A request the core cannot answer by itself: the driver executes it (in a
/// worker thread, holding the writer lane where [`Work::needs_lane`] says
/// so) and writes the resulting response.
#[derive(Debug, Clone, PartialEq)]
pub enum Work {
    /// Evaluate a POOL statement. `pinned` is true outside a unit (run on an
    /// immutable snapshot) and false inside one (run on the live database so
    /// the session observes its own uncommitted writes).
    Query { pool: String, pinned: bool },
    /// Validate and set (or clear) the session's classification context.
    SetContext { classification: Option<String> },
    /// Translate and install a PCL document. Holds the writer lane.
    InstallPcl { source: String },
    /// Run a whole batch atomically in one unit. Holds the writer lane.
    UnitBatch { ops: Vec<MutationOp> },
    /// Compact the redo log. Holds the writer lane.
    Compact,
    /// Server + storage counters.
    Stats,
    /// Recent trace-ring events.
    Trace { n: u32 },
    /// Recent slow-query log entries.
    SlowLog { n: u32 },
    /// Serve committed redo-log frames of one member shard to a
    /// replication follower.
    ReplicaPoll {
        follower: String,
        shard: u32,
        epoch: u64,
        offset: u64,
        max_bytes: u64,
    },
    /// Replication role and position.
    ReplicaStatus,
    /// Assemble one distributed trace's span tree from the flight
    /// recorder(s). Read-only: works on primaries and followers alike.
    TraceGet { trace_id: prometheus_trace::TraceId },
    /// One mutation inside the open unit.
    UnitOp { op: MutationOp },
    /// Commit the open unit; the driver settles its token and then calls
    /// [`SessionCore::unit_closed`].
    UnitCommit,
    /// Abort the open unit; the driver settles its token and then calls
    /// [`SessionCore::unit_closed`].
    UnitAbort,
}

impl Work {
    /// Whether the driver must hold the writer lane while executing this —
    /// the engine's single-writer discipline, enforced at the scheduling
    /// layer. (`UnitOp`/`UnitCommit`/`UnitAbort` don't appear here: the lane
    /// is already held for the whole streamed unit.)
    pub fn needs_lane(&self) -> bool {
        matches!(
            self,
            Work::InstallPcl { .. } | Work::UnitBatch { .. } | Work::Compact
        )
    }
}

/// The sans-io protocol state machine for one session.
///
/// Owns the session's protocol position (handshake done? unit open? timed
/// out?) and classification context; makes every ordering/legality decision
/// the blocking `dispatch` used to make inline. See the [module
/// docs](self) for the state diagram and a usage example.
#[derive(Debug)]
pub struct SessionCore {
    session: Session,
    /// Whether a streamed unit of work is currently open.
    in_unit: bool,
    /// `Some(primary_addr)` when serving as a read-only replication
    /// follower: every mutating verb is refused with a typed error naming
    /// the primary.
    replica_primary: Option<String>,
}

impl SessionCore {
    /// A fresh, pre-handshake session core. `replica_primary` is the
    /// primary's address when this server is a read-only follower.
    pub fn new(id: u64, replica_primary: Option<String>) -> SessionCore {
        SessionCore {
            session: Session::new(id),
            in_unit: false,
            replica_primary,
        }
    }

    /// Server-assigned session id (echoed in `Welcome`).
    pub fn id(&self) -> u64 {
        self.session.id
    }

    /// Whether the handshake has completed.
    pub fn is_ready(&self) -> bool {
        self.session.ready
    }

    /// Whether a streamed unit of work is open on this session.
    pub fn in_unit(&self) -> bool {
        self.in_unit
    }

    /// The session's classification context.
    pub fn context(&self) -> Option<&str> {
        self.session.context.as_deref()
    }

    /// Set (or clear) the session's classification context. Drivers call
    /// this after [`Work::SetContext`] validated the name against the
    /// database.
    pub fn set_context(&mut self, context: Option<String>) {
        self.session.context = context;
    }

    /// Resolve the effective context for a parsed query (the query's own
    /// clause wins over the session context).
    pub fn effective_context(&self, query_context: Option<String>) -> Option<String> {
        self.session.effective_context(query_context)
    }

    /// The driver opened a database unit for this session (after `OpenUnit`
    /// acquired the lane).
    pub fn unit_opened(&mut self) {
        self.in_unit = true;
    }

    /// The driver settled the open unit (commit, abort, or rollback on
    /// disconnect).
    pub fn unit_closed(&mut self) {
        self.in_unit = false;
    }

    /// The driver rolled the open unit back at the idle deadline: the next
    /// request — whatever it asks — answers with a typed
    /// [`ErrorKind::UnitTimedOut`] error, then the session is back to
    /// normal.
    pub fn note_unit_timed_out(&mut self) {
        self.in_unit = false;
        self.session.unit_timed_out = true;
    }

    /// Advance the state machine by one request.
    pub fn on_request(&mut self, req: Request) -> Step {
        if !self.session.ready {
            return match req {
                Request::Hello { version, client } => {
                    if version != PROTOCOL_VERSION {
                        Step::ReplyClose(Response::Error {
                            kind: ErrorKind::ProtocolMismatch,
                            message: format!(
                                "protocol version {version} unsupported (server speaks {PROTOCOL_VERSION})"
                            ),
                        })
                    } else {
                        self.session.ready = true;
                        self.session.client = client;
                        Step::Reply(Response::Welcome {
                            version: PROTOCOL_VERSION,
                            session: self.session.id,
                        })
                    }
                }
                _ => Step::ReplyClose(Response::Error {
                    kind: ErrorKind::Protocol,
                    message: "handshake required: send Hello first".into(),
                }),
            };
        }
        if self.session.unit_timed_out {
            // The unit this session was streaming hit the idle deadline and
            // was rolled back. Answer the next frame — whatever it asked —
            // with the typed error, so the client never acts on the
            // assumption that the unit is still open; then the session is
            // back to normal.
            self.session.unit_timed_out = false;
            return Step::Reply(Response::Error {
                kind: ErrorKind::UnitTimedOut,
                message: "unit of work idled past the server deadline and was rolled back".into(),
            });
        }
        if self.in_unit {
            return match req {
                Request::UnitOp { op } => Step::Do(Work::UnitOp { op }),
                // In-unit reads stay on the live database: the session must
                // see its own uncommitted operations.
                Request::Query { pool } => Step::Do(Work::Query {
                    pool,
                    pinned: false,
                }),
                Request::Ping => Step::Reply(Response::Pong),
                Request::Stats => Step::Do(Work::Stats),
                Request::UnitCommit => Step::Do(Work::UnitCommit),
                Request::UnitAbort => Step::Do(Work::UnitAbort),
                other => Step::Reply(Response::Error {
                    kind: ErrorKind::Protocol,
                    message: format!(
                        "request '{}' is not allowed inside a unit of work",
                        other.kind_name()
                    ),
                }),
            };
        }
        // A follower is a full query endpoint but owns no redo log of its
        // own — its store is a replay of the primary's. Letting a write
        // through would fork the histories, so every mutating verb gets a
        // typed error that names where writes actually go.
        if let Some(primary) = &self.replica_primary {
            if is_mutating(&req) {
                return Step::Reply(Response::Error {
                    kind: ErrorKind::ReadOnlyReplica,
                    message: format!(
                        "this server is a read-only replica; send writes to the primary at {primary}"
                    ),
                });
            }
        }
        match req {
            Request::Hello { .. } => Step::Reply(Response::Error {
                kind: ErrorKind::Protocol,
                message: "duplicate handshake".into(),
            }),
            Request::Ping => Step::Reply(Response::Pong),
            Request::Query { pool } => Step::Do(Work::Query { pool, pinned: true }),
            Request::SetContext { classification } => Step::Do(Work::SetContext { classification }),
            Request::InstallPcl { source } => Step::Do(Work::InstallPcl { source }),
            Request::UnitBegin => Step::OpenUnit,
            Request::UnitOp { .. } | Request::UnitCommit | Request::UnitAbort => {
                Step::Reply(Response::Error {
                    kind: ErrorKind::Protocol,
                    message: "no unit of work is open on this session".into(),
                })
            }
            Request::UnitBatch { ops } => Step::Do(Work::UnitBatch { ops }),
            Request::Compact => Step::Do(Work::Compact),
            Request::Stats => Step::Do(Work::Stats),
            Request::Trace { n } => Step::Do(Work::Trace { n }),
            Request::SlowLog { n } => Step::Do(Work::SlowLog { n }),
            Request::TraceGet { trace_id } => Step::Do(Work::TraceGet { trace_id }),
            Request::ReplicaPoll {
                follower,
                shard,
                epoch,
                offset,
                max_bytes,
            } => Step::Do(Work::ReplicaPoll {
                follower,
                shard,
                epoch,
                offset,
                max_bytes,
            }),
            Request::ReplicaStatus => Step::Do(Work::ReplicaStatus),
            Request::Shutdown => Step::ShutdownAfter(Response::Ack),
            Request::Bye => Step::ReplyClose(Response::Goodbye),
        }
    }
}

/// Whether a request would mutate the database — the set a read-only
/// replication follower must reject. `Compact` counts: it rewrites the redo
/// log, and a follower's log is owned by its replication puller.
pub fn is_mutating(req: &Request) -> bool {
    matches!(
        req,
        Request::InstallPcl { .. }
            | Request::UnitBegin
            | Request::UnitOp { .. }
            | Request::UnitCommit
            | Request::UnitAbort
            | Request::UnitBatch { .. }
            | Request::Compact
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ready_core() -> SessionCore {
        let mut core = SessionCore::new(1, None);
        let step = core.on_request(Request::Hello {
            version: PROTOCOL_VERSION,
            client: "test".into(),
        });
        assert!(matches!(step, Step::Reply(Response::Welcome { .. })));
        core
    }

    #[test]
    fn handshake_gates_everything() {
        let mut core = SessionCore::new(1, None);
        match core.on_request(Request::Ping) {
            Step::ReplyClose(Response::Error { kind, .. }) => {
                assert_eq!(kind, ErrorKind::Protocol)
            }
            other => panic!("expected close, got {other:?}"),
        }
        let mut core = SessionCore::new(1, None);
        match core.on_request(Request::Hello {
            version: 999,
            client: "old".into(),
        }) {
            Step::ReplyClose(Response::Error { kind, message }) => {
                assert_eq!(kind, ErrorKind::ProtocolMismatch);
                assert!(message.contains("999"));
            }
            other => panic!("expected mismatch close, got {other:?}"),
        }
    }

    #[test]
    fn unit_state_restricts_the_request_set() {
        let mut core = ready_core();
        assert!(matches!(
            core.on_request(Request::UnitBegin),
            Step::OpenUnit
        ));
        core.unit_opened();
        assert!(core.in_unit());
        // Allowed inside a unit: ops, queries (unpinned), ping, stats,
        // settle verbs.
        match core.on_request(Request::Query { pool: "q".into() }) {
            Step::Do(Work::Query { pinned, .. }) => assert!(!pinned),
            other => panic!("expected unpinned query, got {other:?}"),
        }
        // Everything else is protocol misuse but keeps the session alive.
        match core.on_request(Request::Compact) {
            Step::Reply(Response::Error { kind, .. }) => assert_eq!(kind, ErrorKind::Protocol),
            other => panic!("expected protocol error, got {other:?}"),
        }
        assert!(matches!(
            core.on_request(Request::UnitCommit),
            Step::Do(Work::UnitCommit)
        ));
        core.unit_closed();
        assert!(!core.in_unit());
        // Settle verbs outside a unit are misuse.
        match core.on_request(Request::UnitCommit) {
            Step::Reply(Response::Error { kind, .. }) => assert_eq!(kind, ErrorKind::Protocol),
            other => panic!("expected protocol error, got {other:?}"),
        }
    }

    #[test]
    fn timed_out_flag_answers_exactly_one_request() {
        let mut core = ready_core();
        assert!(matches!(
            core.on_request(Request::UnitBegin),
            Step::OpenUnit
        ));
        core.unit_opened();
        core.note_unit_timed_out();
        match core.on_request(Request::Ping) {
            Step::Reply(Response::Error { kind, .. }) => {
                assert_eq!(kind, ErrorKind::UnitTimedOut)
            }
            other => panic!("expected timed-out error, got {other:?}"),
        }
        // The flag clears; the session is back to normal.
        assert!(matches!(
            core.on_request(Request::Ping),
            Step::Reply(Response::Pong)
        ));
    }

    #[test]
    fn replica_refuses_mutations_and_names_the_primary() {
        let mut core = SessionCore::new(1, Some("10.0.0.1:7070".into()));
        core.on_request(Request::Hello {
            version: PROTOCOL_VERSION,
            client: "t".into(),
        });
        match core.on_request(Request::UnitBegin) {
            Step::Reply(Response::Error { kind, message }) => {
                assert_eq!(kind, ErrorKind::ReadOnlyReplica);
                assert!(message.contains("10.0.0.1:7070"));
            }
            other => panic!("expected read-only error, got {other:?}"),
        }
        // Reads pass through untouched.
        assert!(matches!(
            core.on_request(Request::Query { pool: "q".into() }),
            Step::Do(Work::Query { pinned: true, .. })
        ));
    }

    #[test]
    fn shutdown_and_bye_close_politely() {
        let mut core = ready_core();
        assert!(matches!(
            core.on_request(Request::Shutdown),
            Step::ShutdownAfter(Response::Ack)
        ));
        let mut core = ready_core();
        assert!(matches!(
            core.on_request(Request::Bye),
            Step::ReplyClose(Response::Goodbye)
        ));
    }

    #[test]
    fn lane_bound_work_is_marked() {
        assert!(Work::Compact.needs_lane());
        assert!(Work::InstallPcl {
            source: String::new()
        }
        .needs_lane());
        assert!(Work::UnitBatch { ops: vec![] }.needs_lane());
        assert!(!Work::Stats.needs_lane());
        assert!(!Work::Query {
            pool: String::new(),
            pinned: true
        }
        .needs_lane());
        assert!(!Work::UnitOp {
            op: MutationOp::DeleteObject {
                oid: prometheus_db::Oid::NIL
            }
        }
        .needs_lane());
    }
}
