//! Per-session state.
//!
//! Each accepted connection becomes one [`Session`]: an identifier, the
//! client's self-reported name, and the session's classification context —
//! the server-side analogue of a taxonomist "working inside" one
//! classification (§4.6.2). Contexts are per-session, so two clients can
//! query the same database through different classifications concurrently
//! (see `examples/remote_repl.rs`).

/// State carried for the lifetime of one connection.
#[derive(Debug)]
pub struct Session {
    /// Server-assigned identifier, echoed in `Welcome`.
    pub id: u64,
    /// Client-reported name from the handshake (for diagnostics).
    pub client: String,
    /// Classification context applied to queries without their own
    /// `in classification` clause.
    pub context: Option<String>,
    /// Whether the handshake completed.
    pub ready: bool,
    /// Set when the session's streamed unit was rolled back by the idle
    /// deadline; the next request is answered with a
    /// [`crate::ErrorKind::UnitTimedOut`] error instead of being processed,
    /// then the flag clears.
    pub unit_timed_out: bool,
}

impl Session {
    /// A fresh, pre-handshake session.
    pub fn new(id: u64) -> Session {
        Session {
            id,
            client: String::new(),
            context: None,
            ready: false,
            unit_timed_out: false,
        }
    }

    /// Resolve the effective classification context for a parsed query: the
    /// query's own clause wins; otherwise the session context applies.
    pub fn effective_context(&self, query_context: Option<String>) -> Option<String> {
        query_context.or_else(|| self.context.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_clause_overrides_session_context() {
        let mut s = Session::new(1);
        assert_eq!(s.effective_context(None), None);
        s.context = Some("Linnaeus 1753".into());
        assert_eq!(s.effective_context(None).as_deref(), Some("Linnaeus 1753"));
        assert_eq!(
            s.effective_context(Some("Koch 1824".into())).as_deref(),
            Some("Koch 1824")
        );
    }
}
