//! Lock-free span tracing for the Prometheus engine.
//!
//! Every layer of the engine — storage commits and fsyncs, the writer lane,
//! the plan cache, morsel execution, rule firing, request framing — records
//! [`TraceEvent`]s through a shared [`Recorder`]. Events land in a bounded,
//! lock-free ring buffer: writers claim slots with one `fetch_add` and
//! publish with a per-slot sequence word (a seqlock), so recording never
//! blocks a query and readers detect and skip torn slots instead of waiting.
//!
//! ## Span model
//!
//! A *trace* is one request's tree of spans. The server allocates a fresh
//! `trace_id` per request and opens a root span; nested stages (plan-cache
//! lookup, per-source scans, the morsel fan-out, commits, fsyncs…) record
//! child spans pointing at their parent's `span_id`. Because one request is
//! handled by one server thread, the current `(trace_id, span_id)` pair
//! travels in a thread-local set by the RAII [`TraceScope`] guard — deep
//! layers (the storage engine, the rule engine) attach to the active trace
//! without any signature plumbing. Parallel morsel workers do not record
//! individually; the coordinating thread records one aggregate span with
//! worker/morsel counters.
//!
//! ## Overwrite semantics
//!
//! The ring holds the most recent `capacity` events. Overwrite is the
//! *design*, not a failure mode: a long-lived server wraps continuously and
//! `recent(n)` always returns the newest complete events. An event being
//! written exactly while read is detected by its odd/changed sequence and
//! skipped — readers never observe half an event.
//!
//! Events are plain scalars (no heap) so a slot is a fixed array of atomic
//! words; query *text* intentionally lives elsewhere (the server's
//! slow-query log), keyed back to the ring by `trace_id`.

use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The pipeline stage a span measures.
///
/// Stored in the ring as a `u64` discriminant; [`Stage::from_code`] is the
/// inverse for readers. The set mirrors the engine's layers end to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u16)]
pub enum Stage {
    /// One wire request, end to end (root span). c0 = request kind ordinal.
    Request = 0,
    /// Time spent queued on the writer lane. c0 = ticket distance at draw
    /// (holders ahead in the FIFO), c1 = 1 for a real acquisition
    /// (0 = the synthetic zero-wait span a pinned-query profile records).
    LaneWait = 1,
    /// Plan-cache lookup. c0 = 1 on hit / 0 on miss, c1 = plan fingerprint.
    PlanCache = 2,
    /// One source's candidate enumeration. c0 = candidate rows,
    /// c1 = 1 when an index seeded the scan (0 = class-extent walk).
    Scan = 3,
    /// The morsel-parallel filter pass over one source's candidates.
    /// c0 = rows surviving the filter, c1 = workers used.
    Filter = 4,
    /// Joining source rows. c0 = rows out, c1 = workers used.
    Join = 5,
    /// Ordering / distinct / limit / projection. c0 = rows out.
    Emit = 6,
    /// One storage transaction commit. c0 = ops applied, c1 = bytes written.
    Commit = 7,
    /// One fsync of the redo log. c0 = 1 when deferred to unit seal.
    Fsync = 8,
    /// One log compaction. c0 = live records kept, c1 = bytes after.
    Compact = 9,
    /// One ECA/PCL rule evaluation batch. c0 = rules checked, c1 = events.
    Rule = 10,
    /// One replication poll answered by the primary. c0 = frames served,
    /// c1 = follower byte lag after the batch.
    ReplicaPoll = 11,
    /// One replicated frame batch applied by a follower. c0 = frames
    /// appended, c1 = records of settled groups applied to the image.
    ReplicaApply = 12,
    /// Folding one commit's records into the persistent image. c0 = map
    /// nodes cloned by the path-copy, c1 = bytes copied cloning them.
    Publish = 13,
}

impl Stage {
    /// All stages, in discriminant order.
    pub const ALL: [Stage; 14] = [
        Stage::Request,
        Stage::LaneWait,
        Stage::PlanCache,
        Stage::Scan,
        Stage::Filter,
        Stage::Join,
        Stage::Emit,
        Stage::Commit,
        Stage::Fsync,
        Stage::Compact,
        Stage::Rule,
        Stage::ReplicaPoll,
        Stage::ReplicaApply,
        Stage::Publish,
    ];

    /// Decode a discriminant stored in the ring.
    pub fn from_code(code: u64) -> Option<Stage> {
        Stage::ALL.get(code as usize).copied()
    }

    /// Stable lower-case name (wire/doc/Prometheus-label friendly).
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Request => "request",
            Stage::LaneWait => "lane_wait",
            Stage::PlanCache => "plan_cache",
            Stage::Scan => "scan",
            Stage::Filter => "filter",
            Stage::Join => "join",
            Stage::Emit => "emit",
            Stage::Commit => "commit",
            Stage::Fsync => "fsync",
            Stage::Compact => "compact",
            Stage::Rule => "rule",
            Stage::ReplicaPoll => "replica_poll",
            Stage::ReplicaApply => "replica_apply",
            Stage::Publish => "publish",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded span: plain scalars only, so the ring can hold it in
/// atomic words and the wire can carry it without escaping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// The request tree this span belongs to (0 = recorded outside any
    /// request scope, e.g. background compaction).
    pub trace_id: u64,
    /// This span's id, unique within the recorder.
    pub span_id: u64,
    /// Parent span id (0 = root).
    pub parent_id: u64,
    /// What was measured.
    pub stage: Stage,
    /// Span start, µs since the recorder was created.
    pub start_us: u64,
    /// Span duration, µs.
    pub dur_us: u64,
    /// First stage-specific counter (see [`Stage`] docs).
    pub c0: u64,
    /// Second stage-specific counter.
    pub c1: u64,
}

/// Words per ring slot: sequence + the 8 event scalars.
const SLOT_WORDS: usize = 9;

/// One seqlock-guarded slot. `seq` is odd while a writer owns the slot and
/// even once the payload is stable; a reader that sees the same even value
/// before and after copying the payload got a consistent event.
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; SLOT_WORDS - 1],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            words: Default::default(),
        }
    }
}

struct Inner {
    slots: Vec<Slot>,
    /// Total events ever written; `cursor % capacity` is the next slot.
    cursor: AtomicU64,
    next_trace: AtomicU64,
    next_span: AtomicU64,
    dropped: AtomicU64,
    epoch: Instant,
}

thread_local! {
    /// The active `(trace_id, span_id)` for this thread, managed by
    /// [`TraceScope`]. `(0, 0)` = no active trace.
    static CURRENT: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

/// Cheap, cloneable handle on the shared trace ring.
///
/// Cloning is an `Arc` bump; recording is a handful of relaxed atomic
/// stores. A recorder built with [`Recorder::disabled`] has no ring and
/// every record is a no-op, so instrumented code never needs a
/// `if tracing_enabled` branch.
#[derive(Clone)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => f
                .debug_struct("Recorder")
                .field("capacity", &inner.slots.len())
                .field("written", &inner.cursor.load(Ordering::Relaxed))
                .finish(),
            None => f.write_str("Recorder(disabled)"),
        }
    }
}

impl Recorder {
    /// Default ring capacity: enough for several thousand requests' spans
    /// without measurable memory cost (each slot is 72 bytes).
    pub const DEFAULT_CAPACITY: usize = 8192;

    /// A recorder over a fresh ring of `capacity` events (rounded up to 1).
    pub fn new(capacity: usize) -> Recorder {
        let capacity = capacity.max(1);
        Recorder {
            inner: Some(Arc::new(Inner {
                slots: (0..capacity).map(|_| Slot::new()).collect(),
                cursor: AtomicU64::new(0),
                next_trace: AtomicU64::new(1),
                next_span: AtomicU64::new(1),
                dropped: AtomicU64::new(0),
                epoch: Instant::now(),
            })),
        }
    }

    /// A recorder that records nothing and allocates nothing.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// Whether this recorder actually records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Ring capacity (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.slots.len())
    }

    /// Microseconds since this recorder was created.
    pub fn now_us(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.epoch.elapsed().as_micros() as u64)
    }

    /// Allocate a fresh trace id (never 0).
    pub fn new_trace_id(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.next_trace.fetch_add(1, Ordering::Relaxed))
    }

    /// Allocate a fresh span id (never 0).
    pub fn new_span_id(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.next_span.fetch_add(1, Ordering::Relaxed))
    }

    /// The `(trace_id, span_id)` pair active on this thread, `(0, 0)` when
    /// no [`TraceScope`] is open.
    pub fn current() -> (u64, u64) {
        CURRENT.with(|c| c.get())
    }

    /// Start a timed span as a child of the thread's active span (or as an
    /// orphan with `trace_id = 0` outside any scope). The span is recorded
    /// when [`Span::finish`] is called or the guard drops.
    pub fn span(&self, stage: Stage) -> Span {
        let (trace_id, parent_id) = Recorder::current();
        self.span_in(stage, trace_id, parent_id)
    }

    /// Start a timed span with an explicit parent.
    pub fn span_in(&self, stage: Stage, trace_id: u64, parent_id: u64) -> Span {
        Span {
            recorder: self.clone(),
            trace_id,
            span_id: self.new_span_id(),
            parent_id,
            stage,
            start_us: self.now_us(),
            started: Instant::now(),
            c0: 0,
            c1: 0,
            recorded: !self.is_enabled(),
        }
    }

    /// Record a fully-formed event into the ring. Lock-free: one
    /// `fetch_add` draws a slot, a compare-exchange on the slot's seqlock
    /// word claims it, and the final even store publishes it.
    pub fn record(&self, ev: TraceEvent) {
        let Some(inner) = &self.inner else { return };
        let ticket = inner.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &inner.slots[(ticket % inner.slots.len() as u64) as usize];
        // Claim: advance the sequence even -> odd with a CAS, so the odd
        // state only ever has a single owner. A blind fetch_add would let a
        // lapped loser transiently restore an even sequence while the winner
        // is still storing payload words, and a reader could then accept a
        // torn event. Losers (slot already odd, or the CAS raced) drop the
        // event without touching the sequence.
        let seq = slot.seq.load(Ordering::Relaxed);
        if seq % 2 == 1
            || slot
                .seq
                .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            inner.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let w = &slot.words;
        w[0].store(ev.trace_id, Ordering::Relaxed);
        w[1].store(ev.span_id, Ordering::Relaxed);
        w[2].store(ev.parent_id, Ordering::Relaxed);
        w[3].store(ev.stage as u64, Ordering::Relaxed);
        w[4].store(ev.start_us, Ordering::Relaxed);
        w[5].store(ev.dur_us, Ordering::Relaxed);
        w[6].store(ev.c0, Ordering::Relaxed);
        w[7].store(ev.c1, Ordering::Relaxed);
        // Publish: back to even, one generation later.
        slot.seq.fetch_add(1, Ordering::Release);
    }

    /// Events written minus events dropped to a lapped-writer collision.
    pub fn events_written(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| {
            i.cursor.load(Ordering::Relaxed) - i.dropped.load(Ordering::Relaxed)
        })
    }

    /// Events dropped because a lapped writer was mid-flight on the claimed
    /// slot. `events_written() + dropped()` is the total offered load.
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.dropped.load(Ordering::Relaxed))
    }

    /// Snapshot the newest `n` events, oldest first. Torn or mid-write
    /// slots are skipped, never waited on.
    pub fn recent(&self, n: usize) -> Vec<TraceEvent> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let cap = inner.slots.len() as u64;
        let end = inner.cursor.load(Ordering::Acquire);
        let want = (n as u64).min(cap).min(end);
        let mut out = Vec::with_capacity(want as usize);
        for ticket in end.saturating_sub(want)..end {
            let slot = &inner.slots[(ticket % cap) as usize];
            if let Some(ev) = read_slot(slot) {
                out.push(ev);
            }
        }
        out
    }

    /// All ring events belonging to one trace, oldest first.
    pub fn events_for(&self, trace_id: u64) -> Vec<TraceEvent> {
        let mut evs = self.recent(self.capacity());
        evs.retain(|e| e.trace_id == trace_id);
        evs
    }
}

/// Seqlock read: copy the payload between two stable reads of the sequence.
fn read_slot(slot: &Slot) -> Option<TraceEvent> {
    let before = slot.seq.load(Ordering::Acquire);
    if before == 0 || before % 2 == 1 {
        return None; // never written, or a writer is mid-flight
    }
    let w = &slot.words;
    let words = [
        w[0].load(Ordering::Relaxed),
        w[1].load(Ordering::Relaxed),
        w[2].load(Ordering::Relaxed),
        w[3].load(Ordering::Relaxed),
        w[4].load(Ordering::Relaxed),
        w[5].load(Ordering::Relaxed),
        w[6].load(Ordering::Relaxed),
        w[7].load(Ordering::Relaxed),
    ];
    // Standard seqlock reader protocol: an acquire *load* of `after` only
    // orders later accesses, so on weakly ordered targets the relaxed
    // payload loads above could sink past it. The fence pins them before
    // the re-check.
    std::sync::atomic::fence(Ordering::Acquire);
    let after = slot.seq.load(Ordering::Acquire);
    if before != after {
        return None; // torn: a writer replaced the slot while we copied
    }
    Some(TraceEvent {
        trace_id: words[0],
        span_id: words[1],
        parent_id: words[2],
        stage: Stage::from_code(words[3])?,
        start_us: words[4],
        dur_us: words[5],
        c0: words[6],
        c1: words[7],
    })
}

/// RAII guard installing `(trace_id, span_id)` as this thread's active
/// trace position; restores the previous position on drop, so scopes nest.
pub struct TraceScope {
    prev: (u64, u64),
}

impl TraceScope {
    /// Enter a trace scope on the current thread.
    pub fn enter(trace_id: u64, span_id: u64) -> TraceScope {
        let prev = CURRENT.with(|c| c.replace((trace_id, span_id)));
        TraceScope { prev }
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        let prev = self.prev;
        CURRENT.with(|c| c.set(prev));
    }
}

/// A running timed span; records itself on [`Span::finish`] or on drop.
pub struct Span {
    recorder: Recorder,
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    stage: Stage,
    start_us: u64,
    started: Instant,
    c0: u64,
    c1: u64,
    recorded: bool,
}

impl Span {
    /// This span's id — pass to [`TraceScope::enter`] or [`Recorder::span_in`]
    /// to parent children under it.
    pub fn id(&self) -> u64 {
        self.span_id
    }

    /// This span's trace id.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Set the stage-specific counters (see [`Stage`] docs).
    pub fn set_counters(&mut self, c0: u64, c1: u64) {
        self.c0 = c0;
        self.c1 = c1;
    }

    /// Stop the clock and record the event with the given counters.
    pub fn finish(mut self, c0: u64, c1: u64) {
        self.c0 = c0;
        self.c1 = c1;
        self.record_now();
    }

    /// Discard the span without recording anything — for instrumentation
    /// that only learns after the fact that nothing happened (e.g. a rule
    /// dispatch where no rule matched).
    pub fn cancel(mut self) {
        self.recorded = true;
    }

    fn record_now(&mut self) {
        if self.recorded {
            return;
        }
        self.recorded = true;
        self.recorder.record(TraceEvent {
            trace_id: self.trace_id,
            span_id: self.span_id,
            parent_id: self.parent_id,
            stage: self.stage,
            start_us: self.start_us,
            dur_us: self.started.elapsed().as_micros() as u64,
            c0: self.c0,
            c1: self.c1,
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record_now();
    }
}

/// Render one trace's events as an indented tree, one line per span:
/// `stage  dur  counters`, children indented under their parent.
/// Events are matched to parents by `span_id`; orphans print at the root.
pub fn render_tree(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    let roots: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| !events.iter().any(|p| p.span_id == e.parent_id))
        .collect();
    for root in roots {
        render_subtree(events, root, 0, &mut out);
    }
    out
}

fn render_subtree(events: &[TraceEvent], node: &TraceEvent, depth: usize, out: &mut String) {
    use std::fmt::Write;
    let _ = writeln!(
        out,
        "{:indent$}{:<10} {:>8} µs  c0={} c1={}",
        "",
        node.stage.name(),
        node.dur_us,
        node.c0,
        node.c1,
        indent = depth * 2
    );
    let mut children: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| e.parent_id == node.span_id && e.span_id != node.span_id)
        .collect();
    children.sort_by_key(|e| e.start_us);
    for child in children {
        render_subtree(events, child, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_codes_round_trip() {
        for stage in Stage::ALL {
            assert_eq!(Stage::from_code(stage as u64), Some(stage));
        }
        assert_eq!(Stage::from_code(999), None);
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        let span = r.span(Stage::Commit);
        span.finish(1, 2);
        assert!(r.recent(10).is_empty());
        assert_eq!(r.events_written(), 0);
    }

    #[test]
    fn spans_record_on_finish_and_on_drop() {
        let r = Recorder::new(16);
        r.span(Stage::Commit).finish(3, 4);
        {
            let mut s = r.span(Stage::Fsync);
            s.set_counters(1, 0);
        } // drop records
        let evs = r.recent(10);
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].stage, Stage::Commit);
        assert_eq!((evs[0].c0, evs[0].c1), (3, 4));
        assert_eq!(evs[1].stage, Stage::Fsync);
        assert_eq!(evs[1].c0, 1);
    }

    #[test]
    fn ring_keeps_only_newest_capacity_events() {
        let r = Recorder::new(4);
        for i in 0..10u64 {
            r.record(TraceEvent {
                trace_id: 1,
                span_id: i + 1,
                parent_id: 0,
                stage: Stage::Scan,
                start_us: i,
                dur_us: 1,
                c0: i,
                c1: 0,
            });
        }
        let evs = r.recent(100);
        assert_eq!(evs.len(), 4);
        let c0s: Vec<u64> = evs.iter().map(|e| e.c0).collect();
        assert_eq!(c0s, vec![6, 7, 8, 9]);
    }

    #[test]
    fn trace_scope_nests_and_restores() {
        assert_eq!(Recorder::current(), (0, 0));
        {
            let _outer = TraceScope::enter(7, 1);
            assert_eq!(Recorder::current(), (7, 1));
            {
                let _inner = TraceScope::enter(7, 2);
                assert_eq!(Recorder::current(), (7, 2));
            }
            assert_eq!(Recorder::current(), (7, 1));
        }
        assert_eq!(Recorder::current(), (0, 0));
    }

    #[test]
    fn spans_inherit_the_thread_scope() {
        let r = Recorder::new(16);
        let trace = r.new_trace_id();
        let root = r.span_in(Stage::Request, trace, 0);
        let root_id = root.id();
        {
            let _scope = TraceScope::enter(trace, root_id);
            r.span(Stage::PlanCache).finish(1, 0);
        }
        root.finish(0, 0);
        let evs = r.events_for(trace);
        assert_eq!(evs.len(), 2);
        let pc = evs.iter().find(|e| e.stage == Stage::PlanCache).unwrap();
        assert_eq!(pc.parent_id, root_id);
        assert_eq!(pc.trace_id, trace);
    }

    #[test]
    fn events_for_filters_by_trace() {
        let r = Recorder::new(32);
        let t1 = r.new_trace_id();
        let t2 = r.new_trace_id();
        r.span_in(Stage::Scan, t1, 0).finish(10, 0);
        r.span_in(Stage::Scan, t2, 0).finish(20, 0);
        r.span_in(Stage::Join, t1, 0).finish(30, 0);
        let evs = r.events_for(t1);
        assert_eq!(evs.len(), 2);
        assert!(evs.iter().all(|e| e.trace_id == t1));
    }

    #[test]
    fn render_tree_indents_children() {
        let evs = vec![
            TraceEvent {
                trace_id: 1,
                span_id: 1,
                parent_id: 0,
                stage: Stage::Request,
                start_us: 0,
                dur_us: 100,
                c0: 0,
                c1: 0,
            },
            TraceEvent {
                trace_id: 1,
                span_id: 2,
                parent_id: 1,
                stage: Stage::PlanCache,
                start_us: 5,
                dur_us: 10,
                c0: 1,
                c1: 42,
            },
        ];
        let tree = render_tree(&evs);
        assert!(tree.contains("request"));
        assert!(tree.contains("  plan_cache"));
    }

    #[test]
    fn events_serialize_through_serde() {
        let ev = TraceEvent {
            trace_id: 9,
            span_id: 8,
            parent_id: 7,
            stage: Stage::Join,
            start_us: 100,
            dur_us: 50,
            c0: 3,
            c1: 2,
        };
        // The storage codec lives a crate up; plain serde round-trip here.
        let tokens = format!("{ev:?}");
        assert!(tokens.contains("Join"));
    }

    #[test]
    fn concurrent_writers_never_tear_reads() {
        let r = Recorder::new(64);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let r = r.clone();
                scope.spawn(move || {
                    for i in 0..2000u64 {
                        // Write a self-consistent event: all payload words
                        // derived from one value, so tearing is detectable.
                        let v = t * 1_000_000 + i;
                        r.record(TraceEvent {
                            trace_id: v,
                            span_id: v,
                            parent_id: v,
                            stage: Stage::Scan,
                            start_us: v,
                            dur_us: v,
                            c0: v,
                            c1: v,
                        });
                    }
                });
            }
            let reader = r.clone();
            scope.spawn(move || {
                for _ in 0..200 {
                    for ev in reader.recent(64) {
                        assert_eq!(ev.trace_id, ev.span_id);
                        assert_eq!(ev.trace_id, ev.start_us);
                        assert_eq!(ev.trace_id, ev.c0);
                        assert_eq!(ev.trace_id, ev.c1);
                    }
                }
            });
        });
        // Everything written (minus any lapped-writer drops) is accounted.
        assert!(r.events_written() <= 8000);
        assert!(!r.recent(64).is_empty());
    }
}
