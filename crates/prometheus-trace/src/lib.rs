//! Lock-free span tracing for the Prometheus engine.
//!
//! Every layer of the engine — storage commits and fsyncs, the writer lane,
//! the plan cache, morsel execution, rule firing, request framing — records
//! [`TraceEvent`]s through a shared [`Recorder`]. Events land in a bounded,
//! lock-free ring buffer: writers claim slots with one `fetch_add` and
//! publish with a per-slot sequence word (a seqlock), so recording never
//! blocks a query and readers detect and skip torn slots instead of waiting.
//!
//! ## Span model
//!
//! A *trace* is one request's tree of spans, named by a 128-bit
//! [`TraceId`]. The id travels on the wire (frame envelope, protocol v8),
//! so the client can stamp one, the primary propagates it into shard lane
//! claims and 2PC rounds, and a follower replaying the unit records spans
//! under the *same* id — one distributed request, one id. Within a process
//! the current `(TraceId, span_id)` pair travels in a thread-local set by
//! the RAII [`TraceScope`] guard — deep layers (the storage engine, the
//! rule engine) attach to the active trace without any signature plumbing.
//! Parallel morsel workers do not record individually; the coordinating
//! thread records one aggregate span with worker/morsel counters.
//!
//! ## Flight recorder
//!
//! Beyond the raw ring, the recorder keeps two always-on aggregations fed
//! from the same `record()` call, both lock-free:
//!
//! * **per-stage rollup histograms** ([`Recorder::stage_rollups`]) — for
//!   every [`Stage`], a duration histogram plus count/sum, so `/metrics`
//!   and `harness top` can show where time goes without replaying spans;
//! * **a bounded trace index** — a fixed table of buckets keyed by
//!   trace id remembering which ring slots a trace wrote, making
//!   [`Recorder::events_for`] O(spans) instead of O(capacity). The index
//!   is best-effort by design: buckets are evicted when traces collide and
//!   overflow past [`INDEX_TICKETS`] spans falls back to a full ring scan;
//!   both are counted honestly ([`Recorder::index_evictions`],
//!   [`Recorder::index_overflows`]) rather than hidden.
//!
//! ## Overwrite semantics
//!
//! The ring holds the most recent `capacity` events. Overwrite is the
//! *design*, not a failure mode: a long-lived server wraps continuously and
//! `recent(n)` always returns the newest complete events. An event being
//! written exactly while read is detected by its odd/changed sequence and
//! skipped — readers never observe half an event.
//!
//! Events are plain scalars (no heap) so a slot is a fixed array of atomic
//! words; query *text* intentionally lives elsewhere (the server's
//! slow-query log), keyed back to the ring by trace id.

use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A 128-bit trace identifier, carried as two `u64` words (the storage
/// codec has no native u128). `hi` is an entropy word drawn when the
/// recorder is created, `lo` a per-recorder counter — so ids minted by
/// different processes (client, primary, follower) almost surely differ
/// while staying cheap to allocate.
///
/// Renders as 32 lowercase hex digits; [`std::str::FromStr`] accepts any
/// 1–32 hex digits (shorter strings parse into the low word), so operators
/// can paste ids from logs into `harness trace <id>` or REPL `\trace <id>`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TraceId {
    /// High 64 bits (per-process entropy).
    pub hi: u64,
    /// Low 64 bits (per-recorder counter, never 0 for a minted id).
    pub lo: u64,
}

impl TraceId {
    /// The absent trace: no request scope. All-zero on the wire.
    pub const NONE: TraceId = TraceId { hi: 0, lo: 0 };

    /// Build from two words.
    pub const fn from_words(hi: u64, lo: u64) -> TraceId {
        TraceId { hi, lo }
    }

    /// Whether this is [`TraceId::NONE`].
    pub fn is_none(&self) -> bool {
        self.hi == 0 && self.lo == 0
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

impl std::str::FromStr for TraceId {
    type Err = String;

    fn from_str(s: &str) -> Result<TraceId, String> {
        let s = s.trim();
        if s.is_empty() || s.len() > 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(format!("not a trace id (1-32 hex digits): {s:?}"));
        }
        let (hi, lo) = if s.len() > 16 {
            let split = s.len() - 16;
            (
                u64::from_str_radix(&s[..split], 16).map_err(|e| e.to_string())?,
                u64::from_str_radix(&s[split..], 16).map_err(|e| e.to_string())?,
            )
        } else {
            (0, u64::from_str_radix(s, 16).map_err(|e| e.to_string())?)
        };
        Ok(TraceId { hi, lo })
    }
}

/// The pipeline stage a span measures.
///
/// Stored in the ring as a `u64` discriminant; [`Stage::from_code`] is the
/// inverse for readers. The set mirrors the engine's layers end to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u16)]
pub enum Stage {
    /// One wire request, end to end (root span). c0 = request kind ordinal.
    Request = 0,
    /// Time spent queued on the writer lane. c0 = ticket distance at draw
    /// (holders ahead in the FIFO), c1 = 1 for a real acquisition
    /// (0 = the synthetic zero-wait span a pinned-query profile records).
    LaneWait = 1,
    /// Plan-cache lookup. c0 = 1 on hit / 0 on miss, c1 = plan fingerprint.
    PlanCache = 2,
    /// One source's candidate enumeration. c0 = candidate rows,
    /// c1 = 1 when an index seeded the scan (0 = class-extent walk).
    Scan = 3,
    /// The morsel-parallel filter pass over one source's candidates.
    /// c0 = rows surviving the filter, c1 = workers used.
    Filter = 4,
    /// Joining source rows. c0 = rows out, c1 = workers used.
    Join = 5,
    /// Ordering / distinct / limit / projection. c0 = rows out.
    Emit = 6,
    /// One storage transaction commit. c0 = ops applied, c1 = bytes written.
    Commit = 7,
    /// One fsync of the redo log. c0 = 1 when deferred to unit seal.
    Fsync = 8,
    /// One log compaction. c0 = live records kept, c1 = bytes after.
    Compact = 9,
    /// One ECA/PCL rule evaluation batch. c0 = rules checked, c1 = events.
    Rule = 10,
    /// One replication poll answered by the primary. c0 = frames served,
    /// c1 = follower byte lag after the batch.
    ReplicaPoll = 11,
    /// One replicated frame batch applied by a follower. c0 = frames
    /// appended, c1 = records of settled groups applied to the image.
    ReplicaApply = 12,
    /// Folding one commit's records into the persistent image. c0 = map
    /// nodes cloned by the path-copy, c1 = bytes copied cloning them.
    Publish = 13,
    /// One shard voting in a cross-shard unit's prepare round.
    /// c0 = shard index, c1 = 1 when this shard is the coordinator.
    UnitPrepare = 14,
    /// The coordinator's decision record for a cross-shard unit.
    /// c0 = participant count, c1 = 1 committed / 0 aborted.
    UnitDecide = 15,
}

impl Stage {
    /// All stages, in discriminant order.
    pub const ALL: [Stage; 16] = [
        Stage::Request,
        Stage::LaneWait,
        Stage::PlanCache,
        Stage::Scan,
        Stage::Filter,
        Stage::Join,
        Stage::Emit,
        Stage::Commit,
        Stage::Fsync,
        Stage::Compact,
        Stage::Rule,
        Stage::ReplicaPoll,
        Stage::ReplicaApply,
        Stage::Publish,
        Stage::UnitPrepare,
        Stage::UnitDecide,
    ];

    /// Decode a discriminant stored in the ring.
    pub fn from_code(code: u64) -> Option<Stage> {
        Stage::ALL.get(code as usize).copied()
    }

    /// Stable lower-case name (wire/doc/Prometheus-label friendly).
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Request => "request",
            Stage::LaneWait => "lane_wait",
            Stage::PlanCache => "plan_cache",
            Stage::Scan => "scan",
            Stage::Filter => "filter",
            Stage::Join => "join",
            Stage::Emit => "emit",
            Stage::Commit => "commit",
            Stage::Fsync => "fsync",
            Stage::Compact => "compact",
            Stage::Rule => "rule",
            Stage::ReplicaPoll => "replica_poll",
            Stage::ReplicaApply => "replica_apply",
            Stage::Publish => "publish",
            Stage::UnitPrepare => "unit_prepare",
            Stage::UnitDecide => "unit_decide",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded span: plain scalars only, so the ring can hold it in
/// atomic words and the wire can carry it without escaping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// The request tree this span belongs to ([`TraceId::NONE`] = recorded
    /// outside any request scope, e.g. background compaction).
    pub trace_id: TraceId,
    /// This span's id, unique within the recorder.
    pub span_id: u64,
    /// Parent span id (0 = root).
    pub parent_id: u64,
    /// What was measured.
    pub stage: Stage,
    /// Span start, µs since the recorder was created.
    pub start_us: u64,
    /// Span duration, µs.
    pub dur_us: u64,
    /// First stage-specific counter (see [`Stage`] docs).
    pub c0: u64,
    /// Second stage-specific counter.
    pub c1: u64,
}

/// Words per ring slot: sequence + the 9 event scalars (the 128-bit trace
/// id takes two words).
const SLOT_WORDS: usize = 10;

/// Duration bucket upper bounds (µs) for the per-stage rollup histograms.
pub const ROLLUP_BOUNDS_US: [u64; 8] = [50, 100, 250, 1_000, 5_000, 25_000, 100_000, 1_000_000];

/// Rollup bucket count: one per bound plus the overflow bucket.
pub const ROLLUP_BUCKETS: usize = ROLLUP_BOUNDS_US.len() + 1;

/// Ring tickets remembered per trace-index bucket; a trace recording more
/// spans than this overflows to a full ring scan (counted, not hidden).
pub const INDEX_TICKETS: usize = 32;

/// One seqlock-guarded slot. `seq` is odd while a writer owns the slot and
/// even once the payload is stable; a reader that sees the same even value
/// before and after copying the payload got a consistent event.
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; SLOT_WORDS - 1],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            words: Default::default(),
        }
    }
}

/// Per-stage duration histogram cells, updated relaxed from `record()`.
struct StageCells {
    counts: [AtomicU64; ROLLUP_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl StageCells {
    fn new() -> StageCells {
        StageCells {
            counts: Default::default(),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }

    fn observe(&self, dur_us: u64) {
        let bucket = ROLLUP_BOUNDS_US
            .iter()
            .position(|&b| dur_us <= b)
            .unwrap_or(ROLLUP_BOUNDS_US.len());
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(dur_us, Ordering::Relaxed);
    }
}

/// Wire/scrape snapshot of one stage's rollup histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StageRollup {
    /// Stable stage name ([`Stage::name`]).
    pub stage: String,
    /// Bucket upper bounds, µs ([`ROLLUP_BOUNDS_US`]).
    pub bounds_us: Vec<u64>,
    /// Per-bucket observation counts (`bounds_us.len() + 1` entries, the
    /// last being the overflow bucket).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed durations, µs.
    pub sum_us: u64,
}

impl StageRollup {
    /// Mean duration in µs (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }
}

/// One bucket of the bounded trace index: the trace key (two words) plus a
/// tiny ring of ring-buffer tickets the trace wrote. Updates are relaxed
/// and deliberately racy — two traces hashing to the same bucket evict each
/// other (counted) and a torn bucket only costs the reader a fallback scan,
/// because every ticket is re-verified against the main ring's trace id.
struct IndexBucket {
    hi: AtomicU64,
    lo: AtomicU64,
    cursor: AtomicU64,
    tickets: [AtomicU64; INDEX_TICKETS],
}

impl IndexBucket {
    fn new() -> IndexBucket {
        IndexBucket {
            hi: AtomicU64::new(0),
            lo: AtomicU64::new(0),
            cursor: AtomicU64::new(0),
            tickets: Default::default(),
        }
    }
}

struct TraceIndex {
    buckets: Vec<IndexBucket>,
    evictions: AtomicU64,
    overflows: AtomicU64,
}

impl TraceIndex {
    fn new(ring_capacity: usize) -> TraceIndex {
        let n = (ring_capacity / 8).next_power_of_two().clamp(64, 4096);
        TraceIndex {
            buckets: (0..n).map(|_| IndexBucket::new()).collect(),
            evictions: AtomicU64::new(0),
            overflows: AtomicU64::new(0),
        }
    }

    fn bucket_of(&self, trace: TraceId) -> &IndexBucket {
        // splitmix64 finalizer over both words — cheap, well mixed.
        let mut h = trace.hi ^ trace.lo.rotate_left(32);
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58476d1ce4e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d049bb133111eb);
        h ^= h >> 31;
        &self.buckets[(h as usize) & (self.buckets.len() - 1)]
    }

    fn note(&self, trace: TraceId, ticket: u64) {
        let b = self.bucket_of(trace);
        if b.hi.load(Ordering::Relaxed) != trace.hi || b.lo.load(Ordering::Relaxed) != trace.lo {
            if b.lo.load(Ordering::Relaxed) != 0 || b.hi.load(Ordering::Relaxed) != 0 {
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
            b.cursor.store(0, Ordering::Relaxed);
            b.hi.store(trace.hi, Ordering::Relaxed);
            b.lo.store(trace.lo, Ordering::Relaxed);
        }
        let t = b.cursor.fetch_add(1, Ordering::Relaxed);
        if t as usize >= INDEX_TICKETS {
            self.overflows.fetch_add(1, Ordering::Relaxed);
        }
        // Stored +1 so 0 means "empty".
        b.tickets[(t as usize) % INDEX_TICKETS].store(ticket + 1, Ordering::Relaxed);
    }

    /// The ring tickets recorded for `trace`, or `None` when the bucket
    /// was evicted or overflowed (caller falls back to a full scan).
    fn lookup(&self, trace: TraceId) -> Option<Vec<u64>> {
        let b = self.bucket_of(trace);
        if b.hi.load(Ordering::Relaxed) != trace.hi || b.lo.load(Ordering::Relaxed) != trace.lo {
            return None;
        }
        let n = b.cursor.load(Ordering::Relaxed);
        if n as usize > INDEX_TICKETS {
            return None;
        }
        let mut out = Vec::with_capacity(n as usize);
        for slot in b.tickets.iter().take(n as usize) {
            let v = slot.load(Ordering::Relaxed);
            if v != 0 {
                out.push(v - 1);
            }
        }
        Some(out)
    }
}

struct Inner {
    slots: Vec<Slot>,
    /// Total events ever written; `cursor % capacity` is the next slot.
    cursor: AtomicU64,
    /// Entropy word stamped into the high half of minted trace ids.
    trace_hi: u64,
    next_trace: AtomicU64,
    next_span: AtomicU64,
    dropped: AtomicU64,
    rollups: Vec<StageCells>,
    index: TraceIndex,
    epoch: Instant,
}

thread_local! {
    /// The active `(TraceId, span_id)` for this thread, managed by
    /// [`TraceScope`]. `(TraceId::NONE, 0)` = no active trace.
    static CURRENT: Cell<(TraceId, u64)> = const { Cell::new((TraceId::NONE, 0)) };
}

/// Per-process entropy for trace-id high words: wall clock mixed with a
/// process-wide counter through the splitmix64 finalizer, so concurrently
/// created recorders (and different processes) get distinct words without
/// any OS randomness dependency.
fn entropy_word() -> u64 {
    static SALT: AtomicU64 = AtomicU64::new(0x9e37_79b9_7f4a_7c15);
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    let mut h = t ^ SALT.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58476d1ce4e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d049bb133111eb);
    h ^= h >> 31;
    h
}

/// Cheap, cloneable handle on the shared trace ring.
///
/// Cloning is an `Arc` bump; recording is a handful of relaxed atomic
/// stores. A recorder built with [`Recorder::disabled`] has no ring and
/// every record is a no-op, so instrumented code never needs a
/// `if tracing_enabled` branch.
#[derive(Clone)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => f
                .debug_struct("Recorder")
                .field("capacity", &inner.slots.len())
                .field("written", &inner.cursor.load(Ordering::Relaxed))
                .finish(),
            None => f.write_str("Recorder(disabled)"),
        }
    }
}

impl Recorder {
    /// Default ring capacity: enough for several thousand requests' spans
    /// without measurable memory cost (each slot is 80 bytes).
    pub const DEFAULT_CAPACITY: usize = 8192;

    /// A recorder over a fresh ring of `capacity` events (rounded up to 1).
    pub fn new(capacity: usize) -> Recorder {
        let capacity = capacity.max(1);
        Recorder {
            inner: Some(Arc::new(Inner {
                slots: (0..capacity).map(|_| Slot::new()).collect(),
                cursor: AtomicU64::new(0),
                trace_hi: entropy_word(),
                next_trace: AtomicU64::new(1),
                next_span: AtomicU64::new(1),
                dropped: AtomicU64::new(0),
                rollups: Stage::ALL.iter().map(|_| StageCells::new()).collect(),
                index: TraceIndex::new(capacity),
                epoch: Instant::now(),
            })),
        }
    }

    /// A recorder that records nothing and allocates nothing.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// Whether this recorder actually records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Ring capacity (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.slots.len())
    }

    /// Microseconds since this recorder was created.
    pub fn now_us(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.epoch.elapsed().as_micros() as u64)
    }

    /// Allocate a fresh trace id ([`TraceId::NONE`] when disabled): this
    /// recorder's entropy word over a never-zero counter.
    pub fn new_trace_id(&self) -> TraceId {
        self.inner.as_ref().map_or(TraceId::NONE, |i| TraceId {
            hi: i.trace_hi,
            lo: i.next_trace.fetch_add(1, Ordering::Relaxed),
        })
    }

    /// Allocate a fresh span id (never 0).
    pub fn new_span_id(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.next_span.fetch_add(1, Ordering::Relaxed))
    }

    /// The `(TraceId, span_id)` pair active on this thread,
    /// `(TraceId::NONE, 0)` when no [`TraceScope`] is open.
    pub fn current() -> (TraceId, u64) {
        CURRENT.with(|c| c.get())
    }

    /// Start a timed span as a child of the thread's active span (or as an
    /// orphan with `trace_id = NONE` outside any scope). The span is
    /// recorded when [`Span::finish`] is called or the guard drops.
    pub fn span(&self, stage: Stage) -> Span {
        let (trace_id, parent_id) = Recorder::current();
        self.span_in(stage, trace_id, parent_id)
    }

    /// Start a timed span with an explicit parent.
    pub fn span_in(&self, stage: Stage, trace_id: TraceId, parent_id: u64) -> Span {
        Span {
            recorder: self.clone(),
            trace_id,
            span_id: self.new_span_id(),
            parent_id,
            stage,
            start_us: self.now_us(),
            started: Instant::now(),
            c0: 0,
            c1: 0,
            recorded: !self.is_enabled(),
        }
    }

    /// Record a fully-formed event into the ring. Lock-free: one
    /// `fetch_add` draws a slot, a compare-exchange on the slot's seqlock
    /// word claims it, and the final even store publishes it. The event is
    /// also folded into the stage rollup histogram and (for events with a
    /// real trace id) noted in the trace index.
    pub fn record(&self, ev: TraceEvent) {
        let Some(inner) = &self.inner else { return };
        inner.rollups[ev.stage as usize].observe(ev.dur_us);
        let ticket = inner.cursor.fetch_add(1, Ordering::Relaxed);
        if !ev.trace_id.is_none() {
            inner.index.note(ev.trace_id, ticket);
        }
        let slot = &inner.slots[(ticket % inner.slots.len() as u64) as usize];
        // Claim: advance the sequence even -> odd with a CAS, so the odd
        // state only ever has a single owner. A blind fetch_add would let a
        // lapped loser transiently restore an even sequence while the winner
        // is still storing payload words, and a reader could then accept a
        // torn event. Losers (slot already odd, or the CAS raced) drop the
        // event without touching the sequence.
        let seq = slot.seq.load(Ordering::Relaxed);
        if seq % 2 == 1
            || slot
                .seq
                .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            inner.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let w = &slot.words;
        w[0].store(ev.trace_id.hi, Ordering::Relaxed);
        w[1].store(ev.trace_id.lo, Ordering::Relaxed);
        w[2].store(ev.span_id, Ordering::Relaxed);
        w[3].store(ev.parent_id, Ordering::Relaxed);
        w[4].store(ev.stage as u64, Ordering::Relaxed);
        w[5].store(ev.start_us, Ordering::Relaxed);
        w[6].store(ev.dur_us, Ordering::Relaxed);
        w[7].store(ev.c0, Ordering::Relaxed);
        w[8].store(ev.c1, Ordering::Relaxed);
        // Publish: back to even, one generation later.
        slot.seq.fetch_add(1, Ordering::Release);
    }

    /// Events written minus events dropped to a lapped-writer collision.
    pub fn events_written(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| {
            i.cursor.load(Ordering::Relaxed) - i.dropped.load(Ordering::Relaxed)
        })
    }

    /// Events dropped because a lapped writer was mid-flight on the claimed
    /// slot. `events_written() + dropped()` is the total offered load.
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.dropped.load(Ordering::Relaxed))
    }

    /// Trace-index buckets reassigned to a newer trace (the old trace falls
    /// back to a full ring scan).
    pub fn index_evictions(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.index.evictions.load(Ordering::Relaxed))
    }

    /// Spans recorded past a trace's [`INDEX_TICKETS`] index capacity
    /// (lookups for such traces fall back to a full ring scan).
    pub fn index_overflows(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.index.overflows.load(Ordering::Relaxed))
    }

    /// Snapshot the per-stage rollup histograms, in [`Stage::ALL`] order.
    /// Empty when disabled.
    pub fn stage_rollups(&self) -> Vec<StageRollup> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        Stage::ALL
            .iter()
            .map(|stage| {
                let cells = &inner.rollups[*stage as usize];
                StageRollup {
                    stage: stage.name().to_string(),
                    bounds_us: ROLLUP_BOUNDS_US.to_vec(),
                    counts: cells
                        .counts
                        .iter()
                        .map(|c| c.load(Ordering::Relaxed))
                        .collect(),
                    count: cells.count.load(Ordering::Relaxed),
                    sum_us: cells.sum_us.load(Ordering::Relaxed),
                }
            })
            .collect()
    }

    /// Snapshot the newest `n` events, oldest first. Torn or mid-write
    /// slots are skipped, never waited on.
    pub fn recent(&self, n: usize) -> Vec<TraceEvent> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let cap = inner.slots.len() as u64;
        let end = inner.cursor.load(Ordering::Acquire);
        let want = (n as u64).min(cap).min(end);
        let mut out = Vec::with_capacity(want as usize);
        for ticket in end.saturating_sub(want)..end {
            let slot = &inner.slots[(ticket % cap) as usize];
            if let Some(ev) = read_slot(slot) {
                out.push(ev);
            }
        }
        out
    }

    /// All ring events belonging to one trace, oldest first. Served from
    /// the bounded trace index when it still holds the trace (O(spans));
    /// falls back to a full ring scan after an eviction or overflow.
    pub fn events_for(&self, trace_id: TraceId) -> Vec<TraceEvent> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        if !trace_id.is_none() {
            if let Some(tickets) = inner.index.lookup(trace_id) {
                let cap = inner.slots.len() as u64;
                let end = inner.cursor.load(Ordering::Acquire);
                let mut out: Vec<TraceEvent> = tickets
                    .iter()
                    // A ticket lapped by `capacity` newer events no longer
                    // names this trace's slot.
                    .filter(|&&t| t + cap >= end)
                    .filter_map(|&t| read_slot(&inner.slots[(t % cap) as usize]))
                    // Re-verify: the index is racy, the ring is the truth.
                    .filter(|e| e.trace_id == trace_id)
                    .collect();
                out.sort_by_key(|e| (e.start_us, e.span_id));
                out.dedup_by_key(|e| e.span_id);
                return out;
            }
        }
        let mut evs = self.recent(self.capacity());
        evs.retain(|e| e.trace_id == trace_id);
        evs
    }
}

/// Seqlock read: copy the payload between two stable reads of the sequence.
fn read_slot(slot: &Slot) -> Option<TraceEvent> {
    let before = slot.seq.load(Ordering::Acquire);
    if before == 0 || before % 2 == 1 {
        return None; // never written, or a writer is mid-flight
    }
    let w = &slot.words;
    let words = [
        w[0].load(Ordering::Relaxed),
        w[1].load(Ordering::Relaxed),
        w[2].load(Ordering::Relaxed),
        w[3].load(Ordering::Relaxed),
        w[4].load(Ordering::Relaxed),
        w[5].load(Ordering::Relaxed),
        w[6].load(Ordering::Relaxed),
        w[7].load(Ordering::Relaxed),
        w[8].load(Ordering::Relaxed),
    ];
    // Standard seqlock reader protocol: an acquire *load* of `after` only
    // orders later accesses, so on weakly ordered targets the relaxed
    // payload loads above could sink past it. The fence pins them before
    // the re-check.
    std::sync::atomic::fence(Ordering::Acquire);
    let after = slot.seq.load(Ordering::Acquire);
    if before != after {
        return None; // torn: a writer replaced the slot while we copied
    }
    Some(TraceEvent {
        trace_id: TraceId {
            hi: words[0],
            lo: words[1],
        },
        span_id: words[2],
        parent_id: words[3],
        stage: Stage::from_code(words[4])?,
        start_us: words[5],
        dur_us: words[6],
        c0: words[7],
        c1: words[8],
    })
}

/// RAII guard installing `(TraceId, span_id)` as this thread's active
/// trace position; restores the previous position on drop, so scopes nest.
pub struct TraceScope {
    prev: (TraceId, u64),
}

impl TraceScope {
    /// Enter a trace scope on the current thread.
    pub fn enter(trace_id: TraceId, span_id: u64) -> TraceScope {
        let prev = CURRENT.with(|c| c.replace((trace_id, span_id)));
        TraceScope { prev }
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        let prev = self.prev;
        CURRENT.with(|c| c.set(prev));
    }
}

/// A running timed span; records itself on [`Span::finish`] or on drop.
pub struct Span {
    recorder: Recorder,
    trace_id: TraceId,
    span_id: u64,
    parent_id: u64,
    stage: Stage,
    start_us: u64,
    started: Instant,
    c0: u64,
    c1: u64,
    recorded: bool,
}

impl Span {
    /// This span's id — pass to [`TraceScope::enter`] or [`Recorder::span_in`]
    /// to parent children under it.
    pub fn id(&self) -> u64 {
        self.span_id
    }

    /// This span's trace id.
    pub fn trace_id(&self) -> TraceId {
        self.trace_id
    }

    /// Set the stage-specific counters (see [`Stage`] docs).
    pub fn set_counters(&mut self, c0: u64, c1: u64) {
        self.c0 = c0;
        self.c1 = c1;
    }

    /// Stop the clock and record the event with the given counters.
    pub fn finish(mut self, c0: u64, c1: u64) {
        self.c0 = c0;
        self.c1 = c1;
        self.record_now();
    }

    /// Discard the span without recording anything — for instrumentation
    /// that only learns after the fact that nothing happened (e.g. a rule
    /// dispatch where no rule matched).
    pub fn cancel(mut self) {
        self.recorded = true;
    }

    fn record_now(&mut self) {
        if self.recorded {
            return;
        }
        self.recorded = true;
        self.recorder.record(TraceEvent {
            trace_id: self.trace_id,
            span_id: self.span_id,
            parent_id: self.parent_id,
            stage: self.stage,
            start_us: self.start_us,
            dur_us: self.started.elapsed().as_micros() as u64,
            c0: self.c0,
            c1: self.c1,
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record_now();
    }
}

/// Render one trace's events as an indented tree, one line per span:
/// `stage  dur  counters`, children indented under their parent.
/// Events are matched to parents by `span_id`; orphans print at the root.
pub fn render_tree(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    let roots: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| !events.iter().any(|p| p.span_id == e.parent_id))
        .collect();
    for root in roots {
        render_subtree(events, root, 0, &mut out);
    }
    out
}

fn render_subtree(events: &[TraceEvent], node: &TraceEvent, depth: usize, out: &mut String) {
    use std::fmt::Write;
    let _ = writeln!(
        out,
        "{:indent$}{:<10} {:>8} µs  c0={} c1={}",
        "",
        node.stage.name(),
        node.dur_us,
        node.c0,
        node.c1,
        indent = depth * 2
    );
    let mut children: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| e.parent_id == node.span_id && e.span_id != node.span_id)
        .collect();
    children.sort_by_key(|e| e.start_us);
    for child in children {
        render_subtree(events, child, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(lo: u64) -> TraceId {
        TraceId { hi: 0, lo }
    }

    #[test]
    fn stage_codes_round_trip() {
        for stage in Stage::ALL {
            assert_eq!(Stage::from_code(stage as u64), Some(stage));
        }
        assert_eq!(Stage::from_code(999), None);
    }

    #[test]
    fn trace_ids_render_and_parse() {
        let id = TraceId {
            hi: 0x0123_4567_89ab_cdef,
            lo: 0xfedc_ba98_7654_3210,
        };
        let text = id.to_string();
        assert_eq!(text, "0123456789abcdeffedcba9876543210");
        assert_eq!(text.parse::<TraceId>().unwrap(), id);
        // Short forms land in the low word.
        assert_eq!(
            "2a".parse::<TraceId>().unwrap(),
            TraceId { hi: 0, lo: 0x2a }
        );
        assert!("".parse::<TraceId>().is_err());
        assert!("zz".parse::<TraceId>().is_err());
        assert!(TraceId::NONE.is_none());
        assert!(!id.is_none());
    }

    #[test]
    fn minted_trace_ids_carry_process_entropy() {
        let r = Recorder::new(8);
        let a = r.new_trace_id();
        let b = r.new_trace_id();
        assert!(!a.is_none());
        assert_ne!(a, b);
        assert_eq!(a.hi, b.hi); // same recorder, same entropy word
        assert_eq!(b.lo, a.lo + 1);
        let other = Recorder::new(8);
        assert_ne!(other.new_trace_id().hi, 0);
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        let span = r.span(Stage::Commit);
        span.finish(1, 2);
        assert!(r.recent(10).is_empty());
        assert_eq!(r.events_written(), 0);
        assert!(r.stage_rollups().is_empty());
        assert_eq!(r.new_trace_id(), TraceId::NONE);
    }

    #[test]
    fn spans_record_on_finish_and_on_drop() {
        let r = Recorder::new(16);
        r.span(Stage::Commit).finish(3, 4);
        {
            let mut s = r.span(Stage::Fsync);
            s.set_counters(1, 0);
        } // drop records
        let evs = r.recent(10);
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].stage, Stage::Commit);
        assert_eq!((evs[0].c0, evs[0].c1), (3, 4));
        assert_eq!(evs[1].stage, Stage::Fsync);
        assert_eq!(evs[1].c0, 1);
    }

    #[test]
    fn ring_keeps_only_newest_capacity_events() {
        let r = Recorder::new(4);
        for i in 0..10u64 {
            r.record(TraceEvent {
                trace_id: tid(1),
                span_id: i + 1,
                parent_id: 0,
                stage: Stage::Scan,
                start_us: i,
                dur_us: 1,
                c0: i,
                c1: 0,
            });
        }
        let evs = r.recent(100);
        assert_eq!(evs.len(), 4);
        let c0s: Vec<u64> = evs.iter().map(|e| e.c0).collect();
        assert_eq!(c0s, vec![6, 7, 8, 9]);
    }

    #[test]
    fn trace_scope_nests_and_restores() {
        assert_eq!(Recorder::current(), (TraceId::NONE, 0));
        {
            let _outer = TraceScope::enter(tid(7), 1);
            assert_eq!(Recorder::current(), (tid(7), 1));
            {
                let _inner = TraceScope::enter(tid(7), 2);
                assert_eq!(Recorder::current(), (tid(7), 2));
            }
            assert_eq!(Recorder::current(), (tid(7), 1));
        }
        assert_eq!(Recorder::current(), (TraceId::NONE, 0));
    }

    #[test]
    fn spans_inherit_the_thread_scope() {
        let r = Recorder::new(16);
        let trace = r.new_trace_id();
        let root = r.span_in(Stage::Request, trace, 0);
        let root_id = root.id();
        {
            let _scope = TraceScope::enter(trace, root_id);
            r.span(Stage::PlanCache).finish(1, 0);
        }
        root.finish(0, 0);
        let evs = r.events_for(trace);
        assert_eq!(evs.len(), 2);
        let pc = evs.iter().find(|e| e.stage == Stage::PlanCache).unwrap();
        assert_eq!(pc.parent_id, root_id);
        assert_eq!(pc.trace_id, trace);
    }

    #[test]
    fn events_for_filters_by_trace() {
        let r = Recorder::new(32);
        let t1 = r.new_trace_id();
        let t2 = r.new_trace_id();
        r.span_in(Stage::Scan, t1, 0).finish(10, 0);
        r.span_in(Stage::Scan, t2, 0).finish(20, 0);
        r.span_in(Stage::Join, t1, 0).finish(30, 0);
        let evs = r.events_for(t1);
        assert_eq!(evs.len(), 2);
        assert!(evs.iter().all(|e| e.trace_id == t1));
    }

    #[test]
    fn index_overflow_falls_back_to_the_ring_scan() {
        let r = Recorder::new(256);
        let t = r.new_trace_id();
        let n = INDEX_TICKETS as u64 + 5;
        for i in 0..n {
            r.record(TraceEvent {
                trace_id: t,
                span_id: i + 1,
                parent_id: 0,
                stage: Stage::Scan,
                start_us: i,
                dur_us: 1,
                c0: i,
                c1: 0,
            });
        }
        assert!(r.index_overflows() > 0);
        // All spans still come back, via the full-scan fallback.
        assert_eq!(r.events_for(t).len(), n as usize);
    }

    #[test]
    fn stage_rollups_aggregate_durations() {
        let r = Recorder::new(32);
        for dur in [10u64, 60, 2_000_000] {
            r.record(TraceEvent {
                trace_id: TraceId::NONE,
                span_id: r.new_span_id(),
                parent_id: 0,
                stage: Stage::Commit,
                start_us: 0,
                dur_us: dur,
                c0: 0,
                c1: 0,
            });
        }
        let rollups = r.stage_rollups();
        assert_eq!(rollups.len(), Stage::ALL.len());
        let commit = rollups.iter().find(|s| s.stage == "commit").unwrap();
        assert_eq!(commit.count, 3);
        assert_eq!(commit.sum_us, 2_000_070);
        assert_eq!(commit.counts[0], 1); // 10 ≤ 50
        assert_eq!(commit.counts[1], 1); // 60 ≤ 100
        assert_eq!(commit.counts[ROLLUP_BUCKETS - 1], 1); // overflow
        assert_eq!(commit.counts.iter().sum::<u64>(), commit.count);
        let scan = rollups.iter().find(|s| s.stage == "scan").unwrap();
        assert_eq!(scan.count, 0);
    }

    #[test]
    fn render_tree_indents_children() {
        let evs = vec![
            TraceEvent {
                trace_id: tid(1),
                span_id: 1,
                parent_id: 0,
                stage: Stage::Request,
                start_us: 0,
                dur_us: 100,
                c0: 0,
                c1: 0,
            },
            TraceEvent {
                trace_id: tid(1),
                span_id: 2,
                parent_id: 1,
                stage: Stage::PlanCache,
                start_us: 5,
                dur_us: 10,
                c0: 1,
                c1: 42,
            },
        ];
        let tree = render_tree(&evs);
        assert!(tree.contains("request"));
        assert!(tree.contains("  plan_cache"));
    }

    #[test]
    fn events_serialize_through_serde() {
        let ev = TraceEvent {
            trace_id: tid(9),
            span_id: 8,
            parent_id: 7,
            stage: Stage::Join,
            start_us: 100,
            dur_us: 50,
            c0: 3,
            c1: 2,
        };
        // The storage codec lives a crate up; plain serde round-trip here.
        let tokens = format!("{ev:?}");
        assert!(tokens.contains("Join"));
    }

    #[test]
    fn concurrent_writers_never_tear_reads() {
        let r = Recorder::new(64);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let r = r.clone();
                scope.spawn(move || {
                    for i in 0..2000u64 {
                        // Write a self-consistent event: all payload words
                        // derived from one value, so tearing is detectable.
                        let v = t * 1_000_000 + i;
                        r.record(TraceEvent {
                            trace_id: tid(v),
                            span_id: v,
                            parent_id: v,
                            stage: Stage::Scan,
                            start_us: v,
                            dur_us: v,
                            c0: v,
                            c1: v,
                        });
                    }
                });
            }
            let reader = r.clone();
            scope.spawn(move || {
                for _ in 0..200 {
                    for ev in reader.recent(64) {
                        assert_eq!(ev.trace_id.lo, ev.span_id);
                        assert_eq!(ev.trace_id.lo, ev.start_us);
                        assert_eq!(ev.trace_id.lo, ev.c0);
                        assert_eq!(ev.trace_id.lo, ev.c1);
                    }
                }
            });
        });
        // Everything written (minus any lapped-writer drops) is accounted.
        assert!(r.events_written() <= 8000);
        assert!(!r.recent(64).is_empty());
    }
}
