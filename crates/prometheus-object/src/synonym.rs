//! Instance synonyms (thesis §4.5).
//!
//! Two instances may be declared *synonymous*: they denote the same
//! real-world entity even though they are distinct database objects (for
//! example, the same herbarium specimen recorded by two institutions, or a
//! node reused conceptually across classifications). Synonymy is an
//! equivalence relation, implemented as a union–find structure persisted in
//! the meta keyspace.
//!
//! Queries and traversals choose a [`crate::traversal::SynonymMode`]:
//! `Ignore` treats instances literally; `Transparent` makes every operation
//! see a synonym set as one logical instance.

use prometheus_storage::Oid;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Persistent union–find over OIDs.
///
/// Only non-singleton sets are stored; an OID absent from `parent` is its own
/// representative.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SynonymTable {
    parent: BTreeMap<Oid, Oid>,
}

impl SynonymTable {
    /// Empty table.
    pub fn new() -> Self {
        SynonymTable::default()
    }

    /// Canonical representative of `oid`'s synonym set.
    pub fn find(&self, oid: Oid) -> Oid {
        let mut current = oid;
        while let Some(&p) = self.parent.get(&current) {
            if p == current {
                break;
            }
            current = p;
        }
        current
    }

    /// Declare `a` and `b` synonymous (merging their sets). Returns `true`
    /// if the sets were previously distinct.
    pub fn declare(&mut self, a: Oid, b: Oid) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        // Keep the smaller OID as representative for determinism.
        let (root, child) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent.insert(child, root);
        // Path-compress the inputs.
        if a != root {
            self.parent.insert(a, root);
        }
        if b != root {
            self.parent.insert(b, root);
        }
        true
    }

    /// Whether two instances are synonymous.
    pub fn same(&self, a: Oid, b: Oid) -> bool {
        a == b || self.find(a) == self.find(b)
    }

    /// Every member of `oid`'s synonym set, including itself.
    pub fn set_of(&self, oid: Oid) -> BTreeSet<Oid> {
        let root = self.find(oid);
        let mut out: BTreeSet<Oid> = BTreeSet::new();
        out.insert(root);
        for &child in self.parent.keys() {
            if self.find(child) == root {
                out.insert(child);
            }
        }
        out.insert(oid);
        out
    }

    /// Remove `oid` from its synonym set (e.g. when the instance is deleted).
    pub fn dissolve(&mut self, oid: Oid) {
        // Collect the set, drop every link in it, then relink the remainder.
        // Sets are tiny in practice (a handful of duplicates).
        let members: Vec<Oid> = self.set_of(oid).into_iter().filter(|&m| m != oid).collect();
        let root = self.find(oid);
        let stale: Vec<Oid> = self
            .parent
            .keys()
            .copied()
            .filter(|&child| self.find(child) == root)
            .collect();
        for child in stale {
            self.parent.remove(&child);
        }
        self.parent.remove(&oid);
        for pair in members.windows(2) {
            self.declare(pair[0], pair[1]);
        }
    }

    /// Number of stored (non-singleton) links.
    pub fn link_count(&self) -> usize {
        self.parent.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(n: u64) -> Oid {
        Oid::from_raw(n)
    }

    #[test]
    fn singletons_are_their_own_representative() {
        let table = SynonymTable::new();
        assert_eq!(table.find(oid(5)), oid(5));
        assert!(table.same(oid(5), oid(5)));
        assert!(!table.same(oid(5), oid(6)));
    }

    #[test]
    fn declare_merges_sets() {
        let mut table = SynonymTable::new();
        assert!(table.declare(oid(1), oid(2)));
        assert!(!table.declare(oid(2), oid(1)), "already synonymous");
        assert!(table.same(oid(1), oid(2)));
        table.declare(oid(3), oid(4));
        assert!(!table.same(oid(1), oid(3)));
        table.declare(oid(2), oid(3));
        assert!(
            table.same(oid(1), oid(4)),
            "transitivity across merged sets"
        );
    }

    #[test]
    fn representative_is_smallest_oid() {
        let mut table = SynonymTable::new();
        table.declare(oid(9), oid(4));
        table.declare(oid(4), oid(7));
        assert_eq!(table.find(oid(9)), oid(4));
        assert_eq!(table.find(oid(7)), oid(4));
    }

    #[test]
    fn set_of_lists_all_members() {
        let mut table = SynonymTable::new();
        table.declare(oid(1), oid(2));
        table.declare(oid(2), oid(3));
        let set = table.set_of(oid(2));
        assert_eq!(
            set.into_iter().collect::<Vec<_>>(),
            vec![oid(1), oid(2), oid(3)]
        );
        assert_eq!(table.set_of(oid(10)).len(), 1);
    }

    #[test]
    fn dissolve_removes_only_the_target() {
        let mut table = SynonymTable::new();
        table.declare(oid(1), oid(2));
        table.declare(oid(2), oid(3));
        table.dissolve(oid(2));
        assert!(!table.same(oid(2), oid(1)));
        assert!(!table.same(oid(2), oid(3)));
        assert!(
            table.same(oid(1), oid(3)),
            "remaining members stay synonymous"
        );
    }

    #[test]
    fn serde_round_trip() {
        let mut table = SynonymTable::new();
        table.declare(oid(1), oid(2));
        let bytes = prometheus_storage::codec::to_bytes(&table).unwrap();
        let back: SynonymTable = prometheus_storage::codec::from_bytes(&bytes).unwrap();
        assert!(back.same(oid(1), oid(2)));
    }
}
