//! The Prometheus object layer: the [`Database`] facade.
//!
//! Wires the storage substrate, schema registry, index layer, event layer,
//! synonym table and unit-of-work journal into the API the query language,
//! rule engine and applications use.
//!
//! ## Units of work and what-if scenarios
//!
//! Every mutation runs inside a *unit of work*. Explicit units are opened
//! with [`Database::begin_unit`]; a mutation outside any unit gets an
//! implicit single-operation unit. Each unit keeps an undo journal; aborting
//! (or a failed deferred constraint at commit) rolls every operation back by
//! applying inverse operations. This is the mechanism behind the thesis'
//! what-if scenarios (§7.1.4): a taxonomist opens a unit, reorganises a
//! classification speculatively, inspects the result, then commits or
//! abandons it.
//!
//! ## Relationship semantics
//!
//! [`Database::create_relationship`] enforces every built-in behaviour of
//! §4.4.3 at creation time: endpoint class conformance, exclusivity,
//! sharability, cardinality on both sides and acyclicity. Lifetime
//! dependency and constancy are enforced on deletion. Violations surface as
//! typed [`DbError`] variants.

use crate::error::{DbError, DbResult};
use crate::events::{Event, EventListener};
use crate::index::{
    self, KS_ATTR, KS_CLS_EDGES, KS_EDGE_CLS, KS_EXTENT, KS_META, KS_REL_FROM, KS_REL_TO,
};
use crate::instance::{ClassificationMeta, ObjectInstance, RelInstance, StoredEntity};
use crate::read::{ReadView, Reader};
use crate::schema::{RelKind, SchemaRegistry, OBJECT_CLASS};
use crate::synonym::SynonymTable;
use crate::value::Value;
use parking_lot::{Condvar, Mutex, RwLock};
use prometheus_storage::cache::LruCache;
use prometheus_storage::{codec, Oid, ShardedStore, Stats, Store};
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Reserved extent name under which classification metadata is indexed.
pub const CLASSIFICATION_EXTENT: &str = "__classification";

/// Default number of decoded entities kept in the object cache. Sized so
/// that the chapter-7 benchmark databases stay cache-resident, matching the
/// thesis' warm-cache measurement conditions.
const DEFAULT_CACHE_CAPACITY: usize = 131_072;

/// Number of independently locked object-cache shards. Concurrent readers
/// hash to different shards by OID, so the cache never serialises the read
/// path behind one mutex.
const CACHE_SHARDS: usize = 16;

/// Token returned by [`Database::begin_unit`]; must be passed back to
/// [`Database::commit_unit`] or [`Database::abort_unit`].
#[derive(Debug)]
#[must_use = "a unit of work must be committed or aborted"]
pub struct UnitToken {
    unit: u64,
    depth: u32,
}

/// One inverse operation in a unit's undo journal.
#[derive(Debug)]
enum UndoOp {
    DeleteObject(Oid),
    RestoreObject(ObjectInstance),
    DeleteRel(Oid),
    RestoreRel(RelInstance),
    RestoreObjectAttr { oid: Oid, attr: String, old: Value },
    RestoreRelAttr { oid: Oid, attr: String, old: Value },
    RemoveClsEdge { cls: Oid, rel: Oid },
    RestoreClsEdge { cls: Oid, rel: Oid },
    DeleteClassification(Oid),
    RestoreClassification(ClassificationMeta, Vec<Oid>),
    RestoreSynonyms(SynonymTable),
}

#[derive(Debug, Default)]
struct UnitState {
    journal: Vec<UndoOp>,
    events: Vec<Event>,
    depth: u32,
    /// Bitmask of the shards this unit claimed at open.
    claim: u64,
}

/// All live units of work plus the per-shard ownership map that keeps their
/// shard claims disjoint. Units with disjoint claims run (and seal)
/// concurrently; a unit whose claim overlaps a held shard waits on
/// [`Database::units_freed`].
#[derive(Debug, Default)]
struct UnitTable {
    states: HashMap<u64, UnitState>,
    /// Owning unit id per shard; 0 = free.
    owners: Vec<u64>,
    next_id: u64,
}

thread_local! {
    /// Id of the unit of work bound to this thread (0 = none). Operations
    /// journal into — and storage claims resolve against — the bound unit,
    /// so independent units on different threads no longer share one global
    /// journal. [`Database::with_unit_bound`] carries a binding across
    /// threads for the server's event transport.
    static CURRENT_UNIT: Cell<u64> = const { Cell::new(0) };
}

/// The Prometheus database.
///
/// Schema and synonym state are kept behind `Arc` so that a [`ReadView`] can
/// pin them alongside a storage snapshot with two pointer bumps; mutations
/// copy-on-write via [`Arc::make_mut`].
pub struct Database {
    store: Arc<ShardedStore>,
    schema: RwLock<Arc<SchemaRegistry>>,
    synonyms: RwLock<Arc<SynonymTable>>,
    listeners: RwLock<Vec<Arc<dyn EventListener>>>,
    units: Mutex<UnitTable>,
    units_freed: Condvar,
    cache: Vec<Mutex<LruCache<Oid, StoredEntity>>>,
}

impl Database {
    /// Open a database over a single (unsharded) `store`, loading any
    /// persisted schema and synonym state.
    pub fn open(store: Arc<Store>) -> DbResult<Self> {
        Self::open_sharded(Arc::new(ShardedStore::from_single(store)))
    }

    /// Open a database over an already-assembled sharded store. Use
    /// [`crate::index::shard_routing`] when opening the store so index
    /// entries land on the shard their trailing/leading OID maps to.
    pub fn open_sharded(store: Arc<ShardedStore>) -> DbResult<Self> {
        let schema = match store.kv_get(KS_META, index::META_SCHEMA) {
            Some(bytes) => {
                let mut reg: SchemaRegistry = codec::from_bytes(&bytes)?;
                reg.rebuild_closures();
                reg
            }
            None => SchemaRegistry::new(),
        };
        let synonyms = match store.kv_get(KS_META, index::META_SYNONYMS) {
            Some(bytes) => codec::from_bytes(&bytes)?,
            None => SynonymTable::new(),
        };
        let shard_count = store.shard_count();
        Ok(Database {
            store,
            schema: RwLock::new(Arc::new(schema)),
            synonyms: RwLock::new(Arc::new(synonyms)),
            listeners: RwLock::new(Vec::new()),
            units: Mutex::new(UnitTable {
                states: HashMap::new(),
                owners: vec![0; shard_count],
                next_id: 0,
            }),
            units_freed: Condvar::new(),
            cache: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(LruCache::new(DEFAULT_CACHE_CAPACITY / CACHE_SHARDS)))
                .collect(),
        })
    }

    /// The underlying store (exposed for the benchmark harness).
    pub fn store(&self) -> &Arc<ShardedStore> {
        &self.store
    }

    /// Run `f` with read access to the schema registry.
    pub fn with_schema<T>(&self, f: impl FnOnce(&SchemaRegistry) -> T) -> T {
        f(&self.schema.read())
    }

    /// Run `f` with read access to the synonym table.
    pub fn with_synonyms<T>(&self, f: impl FnOnce(&SynonymTable) -> T) -> T {
        f(&self.synonyms.read())
    }

    /// Pin an immutable view of the latest settled committed state.
    ///
    /// The view holds the published storage snapshot plus the schema and
    /// synonym state current at pin time; its reads never take the store
    /// mutex or the object-cache locks. Mutations committed after the pin
    /// (and operations of any unit still streaming) are invisible — pin a
    /// fresh view for fresh state.
    pub fn read_view(&self) -> ReadView {
        ReadView::new(
            self.store.snapshot(),
            Arc::clone(&self.schema.read()),
            Arc::clone(&self.synonyms.read()),
        )
    }

    /// Register an event listener (the rule engine).
    pub fn add_listener(&self, listener: Arc<dyn EventListener>) {
        self.listeners.write().push(listener);
    }

    // -----------------------------------------------------------------
    // Schema
    // -----------------------------------------------------------------

    /// Define an ordinary class and persist the schema.
    pub fn define_class(&self, def: crate::schema::ClassDef) -> DbResult<()> {
        {
            let mut schema = self.schema.write();
            Arc::make_mut(&mut *schema).define_class(def)?;
        }
        self.persist_schema()
    }

    /// Define a relationship class and persist the schema.
    pub fn define_relationship(&self, def: crate::schema::RelClassDef) -> DbResult<()> {
        {
            let mut schema = self.schema.write();
            Arc::make_mut(&mut *schema).define_relationship(def)?;
        }
        self.persist_schema()
    }

    // -----------------------------------------------------------------
    // Replication
    // -----------------------------------------------------------------

    /// Refresh derived state after a replication follower applied a batch of
    /// primary frames directly to the store (bypassing this facade's write
    /// path): drop cached decoded entities for every touched OID, and — when
    /// the batch touched the meta keyspace — reload the schema registry and
    /// synonym table the primary persisted, so `read_view()` pins current
    /// definitions and the plan cache sees the new schema version.
    pub fn refresh_replicated(&self, summary: &prometheus_storage::ReplicaApply) -> DbResult<()> {
        for oid in &summary.touched_oids {
            self.cache_shard(*oid).lock().remove(oid);
        }
        if summary.touched_keyspaces.contains(&KS_META) {
            self.reload_meta()?;
        }
        Ok(())
    }

    /// Drop every derived cache and reload schema/synonym state from the
    /// store. A follower calls this after a full resync
    /// (`Store::reset_to_empty` + re-replay), when per-OID invalidation
    /// would be meaningless.
    pub fn refresh_all(&self) -> DbResult<()> {
        for shard in &self.cache {
            shard.lock().clear();
        }
        self.reload_meta()
    }

    fn reload_meta(&self) -> DbResult<()> {
        let schema = match self.store.kv_get(KS_META, index::META_SCHEMA) {
            Some(bytes) => {
                let mut reg: SchemaRegistry = codec::from_bytes(&bytes)?;
                reg.rebuild_closures();
                reg
            }
            None => SchemaRegistry::new(),
        };
        *self.schema.write() = Arc::new(schema);
        let synonyms = match self.store.kv_get(KS_META, index::META_SYNONYMS) {
            Some(bytes) => codec::from_bytes(&bytes)?,
            None => SynonymTable::new(),
        };
        *self.synonyms.write() = Arc::new(synonyms);
        Ok(())
    }

    fn persist_schema(&self) -> DbResult<()> {
        let bytes = codec::to_bytes(&**self.schema.read())?;
        self.store.with_txn(|t| {
            t.kv_put(KS_META, index::META_SCHEMA.to_vec(), bytes.clone());
            Ok(())
        })?;
        Ok(())
    }

    // -----------------------------------------------------------------
    // Units of work
    // -----------------------------------------------------------------

    /// Open a (possibly nested) unit of work claiming every shard.
    ///
    /// Opening the outermost unit also opens a store-level unit scope on
    /// each claimed shard: those shards keep publishing snapshots of the
    /// pre-unit state until the unit settles, so concurrent readers never
    /// observe a torn unit, and a crash mid-unit replays to the pre-unit
    /// state. If this thread is already inside a unit, the new unit nests
    /// inside it (sharing its claim) regardless of the mask requested.
    pub fn begin_unit(&self) -> UnitToken {
        self.begin_unit_on(self.store.all_shards_mask())
    }

    /// Open a unit of work claiming only the shards in `mask`. Units with
    /// disjoint claims proceed concurrently through their own writer lanes;
    /// a unit whose claim overlaps a shard held by another unit blocks until
    /// that unit settles. Writes routed outside the claim fail loudly at
    /// commit rather than silently escaping the unit's atomicity.
    pub fn begin_unit_on(&self, mask: u64) -> UnitToken {
        let current = CURRENT_UNIT.with(|c| c.get());
        if current != 0 {
            // Nested unit: share the enclosing unit's claim and journal.
            let mut table = self.units.lock();
            let state = table
                .states
                .get_mut(&current)
                .expect("thread-bound unit must exist");
            state.depth += 1;
            return UnitToken {
                unit: current,
                depth: state.depth,
            };
        }
        let all = self.store.all_shards_mask();
        let mask = match mask & all {
            0 => all,
            m => m,
        };
        let mut table = self.units.lock();
        loop {
            let free = table
                .owners
                .iter()
                .enumerate()
                .all(|(i, owner)| mask & (1u64 << i) == 0 || *owner == 0);
            if free {
                break;
            }
            self.units_freed.wait(&mut table);
        }
        table.next_id += 1;
        let id = table.next_id;
        for (i, owner) in table.owners.iter_mut().enumerate() {
            if mask & (1u64 << i) != 0 {
                *owner = id;
            }
        }
        table.states.insert(
            id,
            UnitState {
                claim: mask,
                depth: 1,
                ..UnitState::default()
            },
        );
        drop(table);
        // The claimed shards are exclusively ours (owners map), so opening
        // their scopes outside the table lock cannot interleave with another
        // unit's scopes on the same shards.
        self.store.begin_unit_scope_on(mask);
        Self::bind_thread(id, mask);
        UnitToken { unit: id, depth: 1 }
    }

    /// Open a unit claiming every shard *without* leaving it bound to the
    /// calling thread. The event transport opens units on whichever worker
    /// happens to process the `UnitBegin` frame; that worker goes on to
    /// serve other sessions, so a lingering binding would route their
    /// journaling into this unit (or panic once it settles). Callers run
    /// each of the unit's request slices under
    /// [`Database::with_unit_bound`] instead.
    pub fn begin_unit_detached(&self) -> UnitToken {
        let token = self.begin_unit();
        if CURRENT_UNIT.with(|c| c.get()) == token.unit {
            Self::restore_thread((0, 0));
        }
        token
    }

    /// Bind this thread to `unit`: journaling and storage-claim resolution
    /// route to it until the binding is cleared or replaced.
    fn bind_thread(unit: u64, claim: u64) -> (u64, u64) {
        let prev_unit = CURRENT_UNIT.with(|c| {
            let prev = c.get();
            c.set(unit);
            prev
        });
        let prev_claim = prometheus_storage::shard::set_thread_claim(claim);
        (prev_unit, prev_claim)
    }

    fn restore_thread(prev: (u64, u64)) {
        CURRENT_UNIT.with(|c| c.set(prev.0));
        prometheus_storage::shard::set_thread_claim(prev.1);
    }

    /// Run `f` with this thread bound to `token`'s unit. The server's event
    /// transport executes one unit's requests across readiness callbacks on
    /// one thread interleaved with other sessions' work; each slice is
    /// wrapped in this so journaling and claim routing follow the token, not
    /// the thread. If `f` settles the unit (commit/abort), the binding it
    /// cleared stays cleared.
    pub fn with_unit_bound<T>(&self, token: &UnitToken, f: impl FnOnce(&Database) -> T) -> T {
        let claim = {
            let table = self.units.lock();
            table.states.get(&token.unit).map(|s| s.claim).unwrap_or(0)
        };
        let prev = Self::bind_thread(token.unit, claim);
        let out = f(self);
        if CURRENT_UNIT.with(|c| c.get()) == token.unit {
            Self::restore_thread(prev);
        }
        out
    }

    /// Commit a unit of work. Committing the outermost unit fires deferred
    /// (`at_commit`) listeners; if any fails, the whole unit is rolled back
    /// and the error returned. May be called from a thread other than the
    /// one that opened the unit (the event transport's reaper does this);
    /// the thread is bound to the unit for the listeners' benefit.
    pub fn commit_unit(&self, token: UnitToken) -> DbResult<()> {
        let id = token.unit;
        let (outermost, events, claim) = {
            let mut table = self.units.lock();
            let state = table
                .states
                .get_mut(&id)
                .ok_or_else(|| DbError::Unit("commit without active unit".into()))?;
            if state.depth != token.depth {
                return Err(DbError::Unit(format!(
                    "unit commit out of order: depth {} vs token {}",
                    state.depth, token.depth
                )));
            }
            state.depth -= 1;
            if state.depth == 0 {
                (true, std::mem::take(&mut state.events), state.claim)
            } else {
                (false, Vec::new(), 0)
            }
        };
        if !outermost {
            return Ok(());
        }
        let _bound = Self::bind_thread(id, claim);
        // Deferred listeners run while the unit is still rollback-able; any
        // mutation they perform (repair actions) joins the journal.
        let listeners = self.listeners.read().clone();
        for listener in &listeners {
            if let Err(e) = listener.at_commit(self, &events) {
                self.rollback_unit(id);
                return Err(e);
            }
        }
        // Seal the store-level unit scopes: one fsync per touched shard for
        // the whole unit (with a prepare/decide round first when more than
        // one shard participated), publishing its final state as the next
        // readable snapshot. The claimed shards stay owned until the seal
        // lands, so a concurrently opened unit cannot interleave its scopes
        // with this one's; disjoint units seal in parallel.
        {
            let mut table = self.units.lock();
            table.states.remove(&id);
        }
        let sealed = self.store.end_unit_scope_on(claim, true);
        self.release_unit(id);
        sealed?;
        Ok(())
    }

    /// Abort a unit of work, rolling back everything it (and any nested
    /// units) changed.
    pub fn abort_unit(&self, token: UnitToken) {
        self.rollback_unit(token.unit);
    }

    /// Whether a unit of work is bound to the calling thread.
    pub fn in_unit(&self) -> bool {
        CURRENT_UNIT.with(|c| c.get()) != 0
    }

    /// Release `id`'s shard claims and thread binding after its scopes have
    /// settled, waking units waiting for the freed shards.
    fn release_unit(&self, id: u64) {
        let mut table = self.units.lock();
        for owner in table.owners.iter_mut() {
            if *owner == id {
                *owner = 0;
            }
        }
        drop(table);
        self.units_freed.notify_all();
        if CURRENT_UNIT.with(|c| c.get()) == id {
            Self::restore_thread((0, 0));
        }
    }

    fn rollback_unit(&self, id: u64) {
        let state = {
            let mut table = self.units.lock();
            match table.states.remove(&id) {
                Some(state) => state,
                None => return,
            }
        };
        // Bind the thread so the inverse appliers read the unit's own
        // working state on its claimed shards (rollback may run on the
        // event transport's reaper thread, not the opener's).
        let _bound = Self::bind_thread(id, state.claim);
        for op in state.journal.into_iter().rev() {
            // Rollback applies raw inverse operations; failures here would
            // mean the log itself is failing, which we surface by panicking
            // rather than silently half-rolling-back.
            self.apply_undo(op).expect("rollback must not fail");
        }
        // Discard the store-level unit scopes: recovery skips the whole unit
        // (forward ops and inverses alike) and readers keep seeing the
        // pre-unit snapshot throughout.
        self.store
            .end_unit_scope_on(state.claim, false)
            .expect("rollback must not fail");
        self.release_unit(id);
    }

    fn apply_undo(&self, op: UndoOp) -> DbResult<()> {
        match op {
            UndoOp::DeleteObject(oid) => {
                let obj = self.object(oid)?;
                self.raw_delete_object(&obj)
            }
            UndoOp::RestoreObject(obj) => self.raw_put_object(&obj),
            UndoOp::DeleteRel(oid) => {
                let rel = self.rel(oid)?;
                self.raw_delete_rel(&rel)
            }
            UndoOp::RestoreRel(rel) => self.raw_put_rel(&rel),
            UndoOp::RestoreObjectAttr { oid, attr, old } => {
                let mut obj = self.object(oid)?;
                self.raw_update_object_attr(&mut obj, &attr, old)
            }
            UndoOp::RestoreRelAttr { oid, attr, old } => {
                let mut rel = self.rel(oid)?;
                rel.attrs.insert(attr, old);
                self.raw_put_rel(&rel)
            }
            UndoOp::RemoveClsEdge { cls, rel } => self.raw_remove_cls_edge(cls, rel),
            UndoOp::RestoreClsEdge { cls, rel } => self.raw_add_cls_edge(cls, rel),
            UndoOp::DeleteClassification(oid) => self.raw_delete_classification(oid),
            UndoOp::RestoreClassification(meta, edges) => {
                let oid = meta.oid;
                let bytes = codec::to_bytes(&StoredEntity::Classification(meta.clone()))?;
                self.store.with_txn(|t| {
                    t.put(oid, bytes.clone());
                    t.kv_put(
                        KS_EXTENT,
                        index::extent_key(CLASSIFICATION_EXTENT, oid),
                        Vec::new(),
                    );
                    Ok(())
                })?;
                self.cache_shard(oid)
                    .lock()
                    .put(oid, StoredEntity::Classification(meta));
                for rel in edges {
                    self.raw_add_cls_edge(oid, rel)?;
                }
                Ok(())
            }
            UndoOp::RestoreSynonyms(table) => {
                *self.synonyms.write() = Arc::new(table);
                self.persist_synonyms()
            }
        }
    }

    /// Record an undo op and an event in the unit bound to this thread (if
    /// any). During rollback the state has already been removed from the
    /// table, so inverse appliers journal nowhere — matching the pre-shard
    /// behaviour of journaling into a taken-out unit.
    fn journal(&self, undo: UndoOp, event: Option<Event>) {
        let id = CURRENT_UNIT.with(|c| c.get());
        if id == 0 {
            return;
        }
        let mut table = self.units.lock();
        if let Some(state) = table.states.get_mut(&id) {
            state.journal.push(undo);
            if let Some(e) = event {
                state.events.push(e);
            }
        }
    }

    /// Run `f` inside a unit (reusing the active one if present).
    pub fn in_unit_scope<T>(&self, f: impl FnOnce(&Database) -> DbResult<T>) -> DbResult<T> {
        let token = self.begin_unit();
        match f(self) {
            Ok(v) => {
                self.commit_unit(token)?;
                Ok(v)
            }
            Err(e) => {
                self.abort_unit(token);
                Err(e)
            }
        }
    }

    /// [`Database::in_unit_scope`] claiming only the shards in `mask` (see
    /// [`Database::begin_unit_on`]). A write `f` routes outside the claim
    /// fails the commit and rolls the whole unit back.
    pub fn in_unit_scope_on<T>(
        &self,
        mask: u64,
        f: impl FnOnce(&Database) -> DbResult<T>,
    ) -> DbResult<T> {
        let token = self.begin_unit_on(mask);
        match f(self) {
            Ok(v) => {
                self.commit_unit(token)?;
                Ok(v)
            }
            Err(e) => {
                self.abort_unit(token);
                Err(e)
            }
        }
    }

    fn dispatch_before(&self, event: &Event) -> DbResult<()> {
        let listeners = self.listeners.read().clone();
        for listener in &listeners {
            listener.before(self, event)?;
        }
        Ok(())
    }

    fn dispatch_after(&self, event: &Event) -> DbResult<()> {
        let listeners = self.listeners.read().clone();
        for listener in &listeners {
            listener.after(self, event)?;
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Entity access
    // -----------------------------------------------------------------

    fn cache_shard(&self, oid: Oid) -> &Mutex<LruCache<Oid, StoredEntity>> {
        &self.cache[(oid.raw() as usize) % CACHE_SHARDS]
    }

    pub(crate) fn entity_cached(&self, oid: Oid) -> DbResult<StoredEntity> {
        let claim = prometheus_storage::shard::thread_claim();
        if claim != 0
            && !prometheus_storage::shard::claim_covers(claim, self.store.shard_of_oid(oid))
        {
            // A unit is bound but this OID lives on a shard outside its
            // claim: read the published snapshot directly and skip the
            // shared cache, which may hold another unit's (or this unit's
            // stale) working-state entries for that shard.
            let bytes = self.store.get(oid).ok_or(DbError::NotFound(oid))?;
            return Ok(codec::from_bytes(&bytes)?);
        }
        {
            let mut cache = self.cache_shard(oid).lock();
            if let Some(entity) = cache.get(&oid) {
                Stats::bump(&self.store.stats().cache_hits);
                return Ok(entity.clone());
            }
        }
        Stats::bump(&self.store.stats().cache_misses);
        let bytes = self.store.get(oid).ok_or(DbError::NotFound(oid))?;
        let entity: StoredEntity = codec::from_bytes(&bytes)?;
        self.cache_shard(oid).lock().put(oid, entity.clone());
        Ok(entity)
    }

    // The read API below delegates to the [`Reader`] trait (see
    // `crate::read`), which holds the single definition of every read
    // operation; these inherent shims keep existing `Database` callers
    // working without importing the trait. `Database` reads resolve against
    // the working image, so code inside a unit of work sees its own
    // operations — only [`ReadView`] pins a published snapshot.

    /// Fetch an object instance.
    pub fn object(&self, oid: Oid) -> DbResult<ObjectInstance> {
        Reader::object(self, oid)
    }

    /// Fetch a relationship instance.
    pub fn rel(&self, oid: Oid) -> DbResult<RelInstance> {
        Reader::rel(self, oid)
    }

    /// Fetch classification metadata.
    pub fn classification_meta(&self, oid: Oid) -> DbResult<ClassificationMeta> {
        Reader::classification_meta(self, oid)
    }

    /// Whether any entity with this OID exists.
    pub fn exists(&self, oid: Oid) -> bool {
        Reader::exists(self, oid)
    }

    /// Most-specific class of the entity (`"__classification"` for
    /// classification metadata).
    pub fn class_of(&self, oid: Oid) -> DbResult<String> {
        Reader::class_of(self, oid)
    }

    // -----------------------------------------------------------------
    // Object CRUD
    // -----------------------------------------------------------------

    /// Create an object of `class` with the given attributes.
    ///
    /// Validates the class (must exist, not abstract), attribute names and
    /// types, applies declared defaults, fires `ObjectCreated`.
    pub fn create_object(
        &self,
        class: &str,
        attrs: impl IntoIterator<Item = (String, Value)>,
    ) -> DbResult<Oid> {
        let attrs: BTreeMap<String, Value> = attrs.into_iter().collect();
        if !self.in_unit() {
            // Implicit single-operation unit: failures (including immediate
            // rule violations raised after the insert) roll back cleanly.
            return self.in_unit_scope(|db| db.create_object(class, attrs.clone()));
        }
        let checked = {
            let schema = self.schema.read();
            let def = schema
                .class(class)
                .ok_or_else(|| DbError::Schema(format!("unknown class '{class}'")))?;
            if def.is_abstract {
                return Err(DbError::Schema(format!("class '{class}' is abstract")));
            }
            let declared = schema.all_attrs(class)?;
            validate_attrs(class, &declared, attrs, true)?
        };
        let oid = self.store.allocate_oid();
        let event = Event::ObjectCreated {
            oid,
            class: class.to_string(),
        };
        self.dispatch_before(&event)?;
        let obj = ObjectInstance {
            oid,
            class: class.to_string(),
            attrs: checked,
        };
        self.raw_put_object(&obj)?;
        self.journal(UndoOp::DeleteObject(oid), Some(event.clone()));
        self.finish_op(event)?;
        Ok(oid)
    }

    /// Update one attribute of an object.
    pub fn set_attr(&self, oid: Oid, attr: &str, value: impl Into<Value>) -> DbResult<()> {
        let value = value.into();
        if !self.in_unit() {
            return self.in_unit_scope(|db| db.set_attr(oid, attr, value.clone()));
        }
        let mut obj = self.object(oid)?;
        {
            let schema = self.schema.read();
            let declared = schema.all_attrs(&obj.class)?;
            let def =
                declared
                    .iter()
                    .find(|a| a.name == attr)
                    .ok_or_else(|| DbError::UnknownAttr {
                        class: obj.class.clone(),
                        attr: attr.into(),
                    })?;
            check_type(&obj.class, def, &value)?;
        }
        let old = obj.attr(attr);
        if old == value {
            return Ok(());
        }
        let event = Event::ObjectUpdated {
            oid,
            class: obj.class.clone(),
            attr: attr.to_string(),
            old: old.clone(),
            new: value.clone(),
        };
        self.dispatch_before(&event)?;
        self.raw_update_object_attr(&mut obj, attr, value)?;
        self.journal(
            UndoOp::RestoreObjectAttr {
                oid,
                attr: attr.to_string(),
                old,
            },
            Some(event.clone()),
        );
        self.finish_op(event)
    }

    /// Delete an object.
    ///
    /// All incident relationship instances are deleted first (firing their
    /// own events and leaving their classifications). For each outgoing
    /// *dependent* aggregation, the destination is recursively deleted if no
    /// other incoming aggregation still claims it.
    pub fn delete_object(&self, oid: Oid) -> DbResult<()> {
        if !self.in_unit() {
            return self.in_unit_scope(|db| db.delete_object(oid));
        }
        let obj = self.object(oid)?;
        let event = Event::ObjectDeleted {
            oid,
            class: obj.class.clone(),
        };
        self.dispatch_before(&event)?;

        // Incident edges.
        let outgoing = self.rels_from(oid, None)?;
        let incoming = self.rels_to(oid, None)?;
        let mut dependents: Vec<Oid> = Vec::new();
        {
            let schema = self.schema.read();
            for rel in &outgoing {
                if let Some(def) = schema.rel_class(&rel.class) {
                    if def.dependent {
                        dependents.push(rel.destination);
                    }
                }
            }
        }
        for rel in outgoing.iter().chain(incoming.iter()) {
            // A relationship may have been deleted already if it connects oid
            // to itself or appears in both lists.
            if self.exists(rel.oid) {
                self.delete_relationship_inner(rel.oid, true)?;
            }
        }

        // The object record itself.
        let prev_syn = self.synonyms.read().as_ref().clone();
        self.raw_delete_object(&obj)?;
        {
            let mut syn = self.synonyms.write();
            Arc::make_mut(&mut *syn).dissolve(oid);
        }
        self.persist_synonyms()?;
        self.journal(UndoOp::RestoreSynonyms(prev_syn), None);
        self.journal(UndoOp::RestoreObject(obj), Some(event.clone()));
        self.finish_op(event)?;

        // Lifetime-dependent destinations: delete if orphaned.
        for dest in dependents {
            if self.exists(dest) && !self.has_incoming_aggregation(dest)? {
                self.delete_object(dest)?;
            }
        }
        Ok(())
    }

    fn has_incoming_aggregation(&self, oid: Oid) -> DbResult<bool> {
        let incoming = self.rels_to(oid, None)?;
        let schema = self.schema.read();
        Ok(incoming.iter().any(|r| {
            schema
                .rel_class(&r.class)
                .is_some_and(|d| d.kind == RelKind::Aggregation)
        }))
    }

    // -----------------------------------------------------------------
    // Relationship CRUD
    // -----------------------------------------------------------------

    /// Create a relationship instance of `class` from `origin` to
    /// `destination`, enforcing every built-in behaviour of §4.4.3.
    pub fn create_relationship(
        &self,
        class: &str,
        origin: Oid,
        destination: Oid,
        attrs: impl IntoIterator<Item = (String, Value)>,
    ) -> DbResult<Oid> {
        let attrs: BTreeMap<String, Value> = attrs.into_iter().collect();
        if !self.in_unit() {
            return self.in_unit_scope(|db| {
                db.create_relationship(class, origin, destination, attrs.clone())
            });
        }
        let checked = {
            let schema = self.schema.read();
            let def = schema
                .rel_class(class)
                .ok_or_else(|| DbError::Schema(format!("unknown relationship class '{class}'")))?
                .clone();
            // Endpoint class conformance.
            let origin_class = self.class_of(origin)?;
            if def.origin_class != OBJECT_CLASS
                && !schema.conforms(&origin_class, &def.origin_class)
            {
                return Err(DbError::EndpointMismatch {
                    relationship: class.into(),
                    expected: def.origin_class.clone(),
                    found: origin_class,
                });
            }
            let dest_class = self.class_of(destination)?;
            if def.destination_class != OBJECT_CLASS
                && !schema.conforms(&dest_class, &def.destination_class)
            {
                return Err(DbError::EndpointMismatch {
                    relationship: class.into(),
                    expected: def.destination_class.clone(),
                    found: dest_class,
                });
            }
            let declared = schema.all_rel_attrs(class)?;
            let checked = validate_attrs(class, &declared, attrs, true)?;

            // Exclusivity (Figure 15): at most one incoming instance of this
            // class for the destination.
            if def.exclusive && !self.rels_to_of_class(destination, class)?.is_empty() {
                return Err(DbError::ExclusivityViolation {
                    relationship: class.into(),
                    destination,
                });
            }
            // Sharability (Figure 16): a non-sharable aggregation's part may
            // not belong to any other whole, and a part already held by a
            // non-sharable aggregation may not be claimed again.
            if def.kind == RelKind::Aggregation {
                let incoming = self.rels_to(destination, None)?;
                for existing in &incoming {
                    if let Some(other) = schema.rel_class(&existing.class) {
                        if other.kind == RelKind::Aggregation && (!def.sharable || !other.sharable)
                        {
                            return Err(DbError::SharabilityViolation {
                                relationship: class.into(),
                                destination,
                            });
                        }
                    }
                }
            }
            // Cardinality on both sides.
            let from_count = self.rels_from_of_class(origin, class)?.len() as u32;
            if def.origin_card.exceeded_by(from_count + 1) {
                return Err(DbError::CardinalityViolation {
                    relationship: class.into(),
                    side: "origin",
                    limit: def.origin_card.max.unwrap_or(u32::MAX),
                });
            }
            let to_count = self.rels_to_of_class(destination, class)?.len() as u32;
            if def.destination_card.exceeded_by(to_count + 1) {
                return Err(DbError::CardinalityViolation {
                    relationship: class.into(),
                    side: "destination",
                    limit: def.destination_card.max.unwrap_or(u32::MAX),
                });
            }
            // Acyclicity: destination must not already reach origin.
            if def.acyclic && (origin == destination || self.reaches(destination, origin, class)?) {
                return Err(DbError::CycleViolation {
                    relationship: class.into(),
                    origin,
                    destination,
                });
            }
            checked
        };
        let oid = self.store.allocate_oid();
        let event = Event::RelCreated {
            oid,
            class: class.to_string(),
            origin,
            destination,
        };
        self.dispatch_before(&event)?;
        let rel = RelInstance {
            oid,
            class: class.to_string(),
            origin,
            destination,
            attrs: checked,
        };
        self.raw_put_rel(&rel)?;
        self.journal(UndoOp::DeleteRel(oid), Some(event.clone()));
        self.finish_op(event)?;
        Ok(oid)
    }

    /// Update one attribute of a relationship instance.
    pub fn set_rel_attr(&self, oid: Oid, attr: &str, value: impl Into<Value>) -> DbResult<()> {
        let value = value.into();
        if !self.in_unit() {
            return self.in_unit_scope(|db| db.set_rel_attr(oid, attr, value.clone()));
        }
        let mut rel = self.rel(oid)?;
        {
            let schema = self.schema.read();
            let declared = schema.all_rel_attrs(&rel.class)?;
            let def =
                declared
                    .iter()
                    .find(|a| a.name == attr)
                    .ok_or_else(|| DbError::UnknownAttr {
                        class: rel.class.clone(),
                        attr: attr.into(),
                    })?;
            check_type(&rel.class, def, &value)?;
        }
        let old = rel.attr(attr);
        if old == value {
            return Ok(());
        }
        let event = Event::RelUpdated {
            oid,
            class: rel.class.clone(),
            attr: attr.to_string(),
            old: old.clone(),
            new: value.clone(),
        };
        self.dispatch_before(&event)?;
        rel.attrs.insert(attr.to_string(), value);
        self.raw_put_rel(&rel)?;
        self.journal(
            UndoOp::RestoreRelAttr {
                oid,
                attr: attr.to_string(),
                old,
            },
            Some(event.clone()),
        );
        self.finish_op(event)
    }

    /// Delete a relationship instance. Constant relationships may only be
    /// deleted as part of deleting one of their endpoints.
    pub fn delete_relationship(&self, oid: Oid) -> DbResult<()> {
        if !self.in_unit() {
            return self.in_unit_scope(|db| db.delete_relationship_inner(oid, false));
        }
        self.delete_relationship_inner(oid, false)
    }

    fn delete_relationship_inner(&self, oid: Oid, endpoint_cascade: bool) -> DbResult<()> {
        let rel = self.rel(oid)?;
        {
            let schema = self.schema.read();
            if let Some(def) = schema.rel_class(&rel.class) {
                if def.constant && !endpoint_cascade {
                    return Err(DbError::ConstancyViolation { relationship: oid });
                }
            }
        }
        let event = Event::RelDeleted {
            oid,
            class: rel.class.clone(),
            origin: rel.origin,
            destination: rel.destination,
        };
        self.dispatch_before(&event)?;
        // Leave every classification first.
        for cls in self.classifications_of_edge(oid)? {
            self.raw_remove_cls_edge(cls, oid)?;
            self.journal(
                UndoOp::RestoreClsEdge { cls, rel: oid },
                Some(Event::ClassificationEdgeRemoved {
                    classification: cls,
                    rel: oid,
                }),
            );
        }
        self.raw_delete_rel(&rel)?;
        self.journal(UndoOp::RestoreRel(rel), Some(event.clone()));
        self.finish_op(event)
    }

    /// All relationship instances leaving `oid`, optionally restricted to one
    /// relationship class (exact; use [`Database::rels_from_including_subs`]
    /// for polymorphic queries).
    pub fn rels_from(&self, oid: Oid, class: Option<&str>) -> DbResult<Vec<RelInstance>> {
        Reader::rels_from(self, oid, class)
    }

    /// All relationship instances arriving at `oid`, optionally restricted to
    /// one relationship class (exact).
    pub fn rels_to(&self, oid: Oid, class: Option<&str>) -> DbResult<Vec<RelInstance>> {
        Reader::rels_to(self, oid, class)
    }

    /// Outgoing edges of `oid` via `class` or any of its subclasses.
    pub fn rels_from_including_subs(&self, oid: Oid, class: &str) -> DbResult<Vec<RelInstance>> {
        Reader::rels_from_including_subs(self, oid, class)
    }

    /// Incoming edges of `oid` via `class` or any of its subclasses.
    pub fn rels_to_including_subs(&self, oid: Oid, class: &str) -> DbResult<Vec<RelInstance>> {
        Reader::rels_to_including_subs(self, oid, class)
    }

    /// Record-free adjacency (the §6.1.5.2 indexing fast path): the edges
    /// incident to `oid` as `(relationship oid, opposite endpoint)` pairs,
    /// straight from the endpoint index — no relationship records are
    /// fetched or decoded. `outgoing` selects the direction.
    pub fn adjacency(
        &self,
        oid: Oid,
        class: Option<&str>,
        outgoing: bool,
    ) -> DbResult<Vec<(Oid, Oid)>> {
        Reader::adjacency(self, oid, class, outgoing)
    }

    fn rels_from_of_class(&self, oid: Oid, class: &str) -> DbResult<Vec<RelInstance>> {
        self.rels_from(oid, Some(class))
    }

    fn rels_to_of_class(&self, oid: Oid, class: &str) -> DbResult<Vec<RelInstance>> {
        self.rels_to(oid, Some(class))
    }

    /// Whether `from` reaches `to` following edges of exactly `rel_class`.
    fn reaches(&self, from: Oid, to: Oid, rel_class: &str) -> DbResult<bool> {
        let mut stack = vec![from];
        let mut seen: BTreeSet<Oid> = BTreeSet::new();
        while let Some(node) = stack.pop() {
            if node == to {
                return Ok(true);
            }
            if !seen.insert(node) {
                continue;
            }
            for rel in self.rels_from(node, Some(rel_class))? {
                stack.push(rel.destination);
            }
        }
        Ok(false)
    }

    // -----------------------------------------------------------------
    // Extents and attribute queries
    // -----------------------------------------------------------------

    /// OIDs in the extent of `class`; with `include_subclasses`, the deep
    /// extent (ODMG `extent` semantics).
    pub fn extent(&self, class: &str, include_subclasses: bool) -> DbResult<Vec<Oid>> {
        Reader::extent(self, class, include_subclasses)
    }

    /// Exact-match lookup over an indexed attribute (deep extent).
    pub fn find_by_attr(&self, class: &str, attr: &str, value: &Value) -> DbResult<Vec<Oid>> {
        Reader::find_by_attr(self, class, attr, value)
    }

    /// Range lookup `lo <= value < hi` over an indexed attribute.
    pub fn find_by_attr_range(
        &self,
        class: &str,
        attr: &str,
        lo: &Value,
        hi: &Value,
    ) -> DbResult<Vec<Oid>> {
        Reader::find_by_attr_range(self, class, attr, lo, hi)
    }

    /// Attribute lookup with relationship attribute inheritance (§4.4.5).
    ///
    /// Resolution order: the object's own attribute; the class default; then
    /// values inherited from incoming relationship instances whose class
    /// declares `attr` inheritable. Distinct inherited values are ambiguous.
    pub fn attr_of(&self, oid: Oid, attr: &str) -> DbResult<Value> {
        Reader::attr_of(self, oid, attr)
    }

    // -----------------------------------------------------------------
    // Instance synonyms (§4.5)
    // -----------------------------------------------------------------

    /// Declare two instances synonymous.
    pub fn declare_synonym(&self, a: Oid, b: Oid) -> DbResult<()> {
        if !self.exists(a) {
            return Err(DbError::NotFound(a));
        }
        if !self.exists(b) {
            return Err(DbError::NotFound(b));
        }
        let prev = self.synonyms.read().as_ref().clone();
        let changed = Arc::make_mut(&mut *self.synonyms.write()).declare(a, b);
        if changed {
            self.persist_synonyms()?;
            self.journal(UndoOp::RestoreSynonyms(prev), None);
        }
        Ok(())
    }

    /// Whether two instances are declared synonymous.
    pub fn same_instance(&self, a: Oid, b: Oid) -> bool {
        Reader::same_instance(self, a, b)
    }

    /// All members of `oid`'s synonym set (including itself).
    pub fn synonym_set(&self, oid: Oid) -> Vec<Oid> {
        Reader::synonym_set(self, oid)
    }

    /// Canonical representative of `oid`'s synonym set.
    pub fn synonym_representative(&self, oid: Oid) -> Oid {
        Reader::synonym_representative(self, oid)
    }

    fn persist_synonyms(&self) -> DbResult<()> {
        let bytes = codec::to_bytes(&**self.synonyms.read())?;
        self.store.with_txn(|t| {
            t.kv_put(KS_META, index::META_SYNONYMS.to_vec(), bytes.clone());
            Ok(())
        })?;
        Ok(())
    }

    // -----------------------------------------------------------------
    // Classifications (§4.6)
    // -----------------------------------------------------------------

    /// Create a classification: a named, initially empty set of relationship
    /// instances. `attrs` carries traceability data (author, publication,
    /// criteria — requirement 4).
    pub fn create_classification(
        &self,
        name: &str,
        attrs: impl IntoIterator<Item = (String, Value)>,
        strict_hierarchy: bool,
    ) -> DbResult<Oid> {
        let oid = self.store.allocate_oid();
        let meta = ClassificationMeta {
            oid,
            name: name.to_string(),
            attrs: attrs.into_iter().collect(),
            strict_hierarchy,
        };
        let bytes = codec::to_bytes(&StoredEntity::Classification(meta.clone()))?;
        self.store.with_txn(|t| {
            t.put(oid, bytes.clone());
            t.kv_put(
                KS_EXTENT,
                index::extent_key(CLASSIFICATION_EXTENT, oid),
                Vec::new(),
            );
            Ok(())
        })?;
        self.cache_shard(oid)
            .lock()
            .put(oid, StoredEntity::Classification(meta));
        self.journal(UndoOp::DeleteClassification(oid), None);
        Ok(oid)
    }

    /// All classification OIDs.
    pub fn classifications(&self) -> DbResult<Vec<Oid>> {
        Reader::classifications(self)
    }

    /// Find a classification by name.
    pub fn classification_by_name(&self, name: &str) -> DbResult<Option<Oid>> {
        Reader::classification_by_name(self, name)
    }

    /// Add a relationship instance to a classification.
    ///
    /// In a strict-hierarchy classification the edge's destination must not
    /// already have a parent edge there (one parent per node per
    /// classification — the overlap across classifications is the point).
    pub fn add_edge_to_classification(&self, cls: Oid, rel_oid: Oid) -> DbResult<()> {
        if !self.in_unit() {
            return self.in_unit_scope(|db| db.add_edge_to_classification(cls, rel_oid));
        }
        let meta = self.classification_meta(cls)?;
        let rel = self.rel(rel_oid)?;
        if meta.strict_hierarchy {
            for existing in self.classification_parent_edges(cls, rel.destination)? {
                if existing.oid != rel_oid {
                    return Err(DbError::Classification(format!(
                        "node {} already has a parent in classification '{}'",
                        rel.destination, meta.name
                    )));
                }
            }
        }
        if self
            .store
            .kv_get(KS_CLS_EDGES, &index::cls_edge_key(cls, rel_oid))
            .is_some()
        {
            return Ok(()); // already a member
        }
        let event = Event::ClassificationEdgeAdded {
            classification: cls,
            rel: rel_oid,
        };
        self.dispatch_before(&event)?;
        self.raw_add_cls_edge(cls, rel_oid)?;
        self.journal(
            UndoOp::RemoveClsEdge { cls, rel: rel_oid },
            Some(event.clone()),
        );
        self.finish_op(event)
    }

    /// Remove a relationship instance from a classification.
    pub fn remove_edge_from_classification(&self, cls: Oid, rel_oid: Oid) -> DbResult<()> {
        if !self.in_unit() {
            return self.in_unit_scope(|db| db.remove_edge_from_classification(cls, rel_oid));
        }
        if self
            .store
            .kv_get(KS_CLS_EDGES, &index::cls_edge_key(cls, rel_oid))
            .is_none()
        {
            return Ok(());
        }
        let event = Event::ClassificationEdgeRemoved {
            classification: cls,
            rel: rel_oid,
        };
        self.dispatch_before(&event)?;
        self.raw_remove_cls_edge(cls, rel_oid)?;
        self.journal(
            UndoOp::RestoreClsEdge { cls, rel: rel_oid },
            Some(event.clone()),
        );
        self.finish_op(event)
    }

    /// All edge OIDs of a classification.
    pub fn classification_edges(&self, cls: Oid) -> DbResult<Vec<Oid>> {
        Reader::classification_edges(self, cls)
    }

    /// All classifications an edge belongs to.
    pub fn classifications_of_edge(&self, rel_oid: Oid) -> DbResult<Vec<Oid>> {
        Reader::classifications_of_edge(self, rel_oid)
    }

    /// Edges of `cls` arriving at `node` (its parent edges there).
    pub fn classification_parent_edges(&self, cls: Oid, node: Oid) -> DbResult<Vec<RelInstance>> {
        Reader::classification_parent_edges(self, cls, node)
    }

    /// Edges of `cls` leaving `node` (its child edges there).
    pub fn classification_child_edges(&self, cls: Oid, node: Oid) -> DbResult<Vec<RelInstance>> {
        Reader::classification_child_edges(self, cls, node)
    }

    /// Whether an edge belongs to a classification.
    pub fn edge_in_classification(&self, cls: Oid, rel_oid: Oid) -> bool {
        Reader::edge_in_classification(self, cls, rel_oid)
    }

    // -----------------------------------------------------------------
    // Raw (journal-free, event-free) appliers — shared by the forward
    // path and rollback.
    // -----------------------------------------------------------------

    fn raw_put_object(&self, obj: &ObjectInstance) -> DbResult<()> {
        let bytes = codec::to_bytes(&StoredEntity::Object(obj.clone()))?;
        let indexed = self.indexed_attrs(&obj.class)?;
        self.store.with_txn(|t| {
            t.put(obj.oid, bytes.clone());
            t.kv_put(
                KS_EXTENT,
                index::extent_key(&obj.class, obj.oid),
                Vec::new(),
            );
            for attr in &indexed {
                if let Some(v) = obj.attrs.get(attr) {
                    t.kv_put(
                        KS_ATTR,
                        index::attr_key(&obj.class, attr, v, obj.oid),
                        Vec::new(),
                    );
                }
            }
            Ok(())
        })?;
        self.cache_shard(obj.oid)
            .lock()
            .put(obj.oid, StoredEntity::Object(obj.clone()));
        Ok(())
    }

    fn raw_update_object_attr(
        &self,
        obj: &mut ObjectInstance,
        attr: &str,
        value: Value,
    ) -> DbResult<()> {
        let old = obj.attr(attr);
        if value == Value::Null {
            obj.attrs.remove(attr);
        } else {
            obj.attrs.insert(attr.to_string(), value.clone());
        }
        let bytes = codec::to_bytes(&StoredEntity::Object(obj.clone()))?;
        let indexed = self.indexed_attrs(&obj.class)?.contains(&attr.to_string());
        self.store.with_txn(|t| {
            t.put(obj.oid, bytes.clone());
            if indexed {
                if old != Value::Null {
                    t.kv_delete(KS_ATTR, index::attr_key(&obj.class, attr, &old, obj.oid));
                }
                if value != Value::Null {
                    t.kv_put(
                        KS_ATTR,
                        index::attr_key(&obj.class, attr, &value, obj.oid),
                        Vec::new(),
                    );
                }
            }
            Ok(())
        })?;
        self.cache_shard(obj.oid)
            .lock()
            .put(obj.oid, StoredEntity::Object(obj.clone()));
        Ok(())
    }

    fn raw_delete_object(&self, obj: &ObjectInstance) -> DbResult<()> {
        let indexed = self.indexed_attrs(&obj.class)?;
        self.store.with_txn(|t| {
            t.delete(obj.oid);
            t.kv_delete(KS_EXTENT, index::extent_key(&obj.class, obj.oid));
            for attr in &indexed {
                if let Some(v) = obj.attrs.get(attr) {
                    t.kv_delete(KS_ATTR, index::attr_key(&obj.class, attr, v, obj.oid));
                }
            }
            Ok(())
        })?;
        self.cache_shard(obj.oid).lock().remove(&obj.oid);
        Ok(())
    }

    fn raw_put_rel(&self, rel: &RelInstance) -> DbResult<()> {
        let bytes = codec::to_bytes(&StoredEntity::Rel(rel.clone()))?;
        self.store.with_txn(|t| {
            t.put(rel.oid, bytes.clone());
            t.kv_put(
                KS_EXTENT,
                index::extent_key(&rel.class, rel.oid),
                Vec::new(),
            );
            t.kv_put(
                KS_REL_FROM,
                index::endpoint_key(rel.origin, &rel.class, rel.oid),
                rel.destination.to_be_bytes().to_vec(),
            );
            t.kv_put(
                KS_REL_TO,
                index::endpoint_key(rel.destination, &rel.class, rel.oid),
                rel.origin.to_be_bytes().to_vec(),
            );
            Ok(())
        })?;
        self.cache_shard(rel.oid)
            .lock()
            .put(rel.oid, StoredEntity::Rel(rel.clone()));
        Ok(())
    }

    fn raw_delete_rel(&self, rel: &RelInstance) -> DbResult<()> {
        self.store.with_txn(|t| {
            t.delete(rel.oid);
            t.kv_delete(KS_EXTENT, index::extent_key(&rel.class, rel.oid));
            t.kv_delete(
                KS_REL_FROM,
                index::endpoint_key(rel.origin, &rel.class, rel.oid),
            );
            t.kv_delete(
                KS_REL_TO,
                index::endpoint_key(rel.destination, &rel.class, rel.oid),
            );
            Ok(())
        })?;
        self.cache_shard(rel.oid).lock().remove(&rel.oid);
        Ok(())
    }

    fn raw_add_cls_edge(&self, cls: Oid, rel: Oid) -> DbResult<()> {
        self.store.with_txn(|t| {
            t.kv_put(KS_CLS_EDGES, index::cls_edge_key(cls, rel), Vec::new());
            t.kv_put(KS_EDGE_CLS, index::edge_cls_key(rel, cls), Vec::new());
            Ok(())
        })?;
        Ok(())
    }

    fn raw_remove_cls_edge(&self, cls: Oid, rel: Oid) -> DbResult<()> {
        self.store.with_txn(|t| {
            t.kv_delete(KS_CLS_EDGES, index::cls_edge_key(cls, rel));
            t.kv_delete(KS_EDGE_CLS, index::edge_cls_key(rel, cls));
            Ok(())
        })?;
        Ok(())
    }

    fn raw_delete_classification(&self, oid: Oid) -> DbResult<()> {
        // Remove all membership entries, then the meta record.
        let edges = self.classification_edges(oid)?;
        self.store.with_txn(|t| {
            for rel in &edges {
                t.kv_delete(KS_CLS_EDGES, index::cls_edge_key(oid, *rel));
                t.kv_delete(KS_EDGE_CLS, index::edge_cls_key(*rel, oid));
            }
            t.delete(oid);
            t.kv_delete(KS_EXTENT, index::extent_key(CLASSIFICATION_EXTENT, oid));
            Ok(())
        })?;
        self.cache_shard(oid).lock().remove(&oid);
        Ok(())
    }

    /// Delete a classification (its meta record and membership entries; the
    /// edges and objects themselves are untouched).
    pub fn delete_classification(&self, oid: Oid) -> DbResult<()> {
        let meta = self.classification_meta(oid)?;
        let edges = self.classification_edges(oid)?;
        self.raw_delete_classification(oid)?;
        self.journal(UndoOp::RestoreClassification(meta, edges), None);
        Ok(())
    }

    /// Validate minimum-cardinality constraints (§4.4.4) across the whole
    /// database: for every relationship class declaring `min > 0` on a side,
    /// every member of that side's class must participate in at least `min`
    /// instances. Maximums are enforced eagerly at creation; minimums can
    /// only hold *eventually* (an object must exist before it can be
    /// linked), so they are validated deferred — call this at commit points
    /// or from a deferred rule. Returns human-readable violations.
    pub fn validate_min_cardinalities(&self) -> DbResult<Vec<String>> {
        let rel_defs: Vec<crate::schema::RelClassDef> = self.with_schema(|s| {
            s.rel_class_names()
                .filter_map(|n| s.rel_class(n).cloned())
                .filter(|d| d.origin_card.min > 0 || d.destination_card.min > 0)
                .collect()
        });
        let mut problems = Vec::new();
        for def in rel_defs {
            if def.origin_card.min > 0 {
                for oid in self.extent(&def.origin_class, true)? {
                    // Relationship instances also live in extents; skip them.
                    if self.rel(oid).is_ok() {
                        continue;
                    }
                    let count = self.rels_from(oid, Some(&def.name))?.len() as u32;
                    if count < def.origin_card.min {
                        problems.push(format!(
                            "{oid} has {count} outgoing {} instance(s), minimum is {}",
                            def.name, def.origin_card.min
                        ));
                    }
                }
            }
            if def.destination_card.min > 0 {
                for oid in self.extent(&def.destination_class, true)? {
                    if self.rel(oid).is_ok() {
                        continue;
                    }
                    let count = self.rels_to(oid, Some(&def.name))?.len() as u32;
                    if count < def.destination_card.min {
                        problems.push(format!(
                            "{oid} has {count} incoming {} instance(s), minimum is {}",
                            def.name, def.destination_card.min
                        ));
                    }
                }
            }
        }
        Ok(problems)
    }

    /// Deep-copy a composite object (§4.4.1): the object itself is cloned;
    /// destinations of its outgoing **non-sharable or lifetime-dependent
    /// aggregations** (its exclusive parts) are cloned recursively, while
    /// sharable aggregations and associations are re-linked to the original
    /// destinations. Relationship instances are recreated with their
    /// attributes. Returns the new root's OID.
    ///
    /// This is the object-level counterpart of classification copy
    /// (revisions) — requirement 5's composite-object boundary makes the
    /// distinction between "copy the part" and "share the reference"
    /// well-defined.
    pub fn deep_copy(&self, oid: Oid) -> DbResult<Oid> {
        self.in_unit_scope(|db| db.deep_copy_inner(oid))
    }

    fn deep_copy_inner(&self, oid: Oid) -> DbResult<Oid> {
        let obj = self.object(oid)?;
        let copy = self.create_object(&obj.class, obj.attrs.clone())?;
        for rel in self.rels_from(oid, None)? {
            let (is_exclusive_part, _kind) = {
                let schema = self.schema.read();
                match schema.rel_class(&rel.class) {
                    Some(def) => (
                        def.kind == RelKind::Aggregation && (!def.sharable || def.dependent),
                        def.kind,
                    ),
                    None => (false, RelKind::Association),
                }
            };
            let target = if is_exclusive_part {
                self.deep_copy_inner(rel.destination)?
            } else {
                rel.destination
            };
            self.create_relationship(&rel.class, copy, target, rel.attrs.clone())?;
        }
        Ok(copy)
    }

    fn indexed_attrs(&self, class: &str) -> DbResult<Vec<String>> {
        let schema = self.schema.read();
        Ok(schema
            .all_attrs(class)?
            .into_iter()
            .filter(|a| a.indexed)
            .map(|a| a.name)
            .collect())
    }

    /// Dispatch post-event; on failure roll the thread's bound unit back.
    fn finish_op(&self, event: Event) -> DbResult<()> {
        if let Err(e) = self.dispatch_after(&event) {
            self.rollback_unit(CURRENT_UNIT.with(|c| c.get()));
            return Err(e);
        }
        Ok(())
    }
}

fn check_type(class: &str, def: &crate::schema::AttrDef, value: &Value) -> DbResult<()> {
    if *value == Value::Null && !def.optional {
        return Err(DbError::TypeMismatch {
            expected: def.ty.to_string(),
            found: "null".into(),
            context: format!("{class}.{}", def.name),
        });
    }
    if !def.ty.admits_shape(value) {
        return Err(DbError::TypeMismatch {
            expected: def.ty.to_string(),
            found: value.type_name().into(),
            context: format!("{class}.{}", def.name),
        });
    }
    Ok(())
}

fn validate_attrs(
    class: &str,
    declared: &[crate::schema::AttrDef],
    mut provided: BTreeMap<String, Value>,
    apply_defaults: bool,
) -> DbResult<BTreeMap<String, Value>> {
    let mut out = BTreeMap::new();
    for def in declared {
        match provided.remove(&def.name) {
            Some(value) => {
                check_type(class, def, &value)?;
                if value != Value::Null {
                    out.insert(def.name.clone(), value);
                }
            }
            None => {
                if apply_defaults {
                    if let Some(default) = &def.default {
                        out.insert(def.name.clone(), default.clone());
                        continue;
                    }
                }
                if !def.optional {
                    return Err(DbError::TypeMismatch {
                        expected: def.ty.to_string(),
                        found: "missing".into(),
                        context: format!("{class}.{}", def.name),
                    });
                }
            }
        }
    }
    if let Some((name, _)) = provided.into_iter().next() {
        return Err(DbError::UnknownAttr {
            class: class.to_string(),
            attr: name,
        });
    }
    Ok(out)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::schema::{AttrDef, Cardinality, ClassDef, RelClassDef};
    use crate::value::Type;
    use prometheus_storage::StoreOptions;

    pub(crate) fn temp_db() -> Database {
        let path = std::env::temp_dir().join(format!(
            "prometheus-objdb-{}-{:?}-{}.log",
            std::process::id(),
            std::thread::current().id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let _ = std::fs::remove_file(&path);
        let store = Arc::new(
            Store::open_with(
                &path,
                StoreOptions {
                    sync_on_commit: false,
                },
            )
            .unwrap(),
        );
        Database::open(store).unwrap()
    }

    fn taxo_db() -> Database {
        let db = temp_db();
        db.define_class(
            ClassDef::new("Taxon")
                .attr(AttrDef::required("name", Type::Str).indexed())
                .attr(AttrDef::optional("rank", Type::Str)),
        )
        .unwrap();
        db.define_class(
            ClassDef::new("Specimen")
                .attr(AttrDef::required("code", Type::Str).indexed())
                .attr(AttrDef::optional("year", Type::Int).indexed()),
        )
        .unwrap();
        db.define_relationship(
            RelClassDef::aggregation("Circumscribes", "Taxon", "Object").sharable(true),
        )
        .unwrap();
        db.define_relationship(RelClassDef::association("Cites", "Taxon", "Taxon"))
            .unwrap();
        db
    }

    fn attrs(pairs: &[(&str, Value)]) -> Vec<(String, Value)> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn object_crud_round_trip() {
        let db = taxo_db();
        let oid = db
            .create_object("Taxon", attrs(&[("name", "Apium".into())]))
            .unwrap();
        let obj = db.object(oid).unwrap();
        assert_eq!(obj.class, "Taxon");
        assert_eq!(obj.attr("name"), Value::from("Apium"));
        db.set_attr(oid, "rank", "Genus").unwrap();
        assert_eq!(db.object(oid).unwrap().attr("rank"), Value::from("Genus"));
        db.delete_object(oid).unwrap();
        assert!(db.object(oid).is_err());
    }

    #[test]
    fn missing_required_attr_rejected() {
        let db = taxo_db();
        let err = db.create_object("Taxon", attrs(&[])).unwrap_err();
        assert!(matches!(err, DbError::TypeMismatch { .. }));
    }

    #[test]
    fn wrong_type_rejected() {
        let db = taxo_db();
        let err = db
            .create_object("Taxon", attrs(&[("name", Value::Int(3))]))
            .unwrap_err();
        assert!(matches!(err, DbError::TypeMismatch { .. }));
    }

    #[test]
    fn unknown_attr_rejected() {
        let db = taxo_db();
        let err = db
            .create_object(
                "Taxon",
                attrs(&[("name", "x".into()), ("ghost", Value::Int(1))]),
            )
            .unwrap_err();
        assert!(matches!(err, DbError::UnknownAttr { .. }));
    }

    #[test]
    fn abstract_class_cannot_instantiate() {
        let db = temp_db();
        db.define_class(ClassDef::new("Abstract").abstract_class())
            .unwrap();
        assert!(db.create_object("Abstract", attrs(&[])).is_err());
    }

    #[test]
    fn defaults_are_applied() {
        let db = temp_db();
        db.define_class(
            ClassDef::new("X").attr(AttrDef::optional("n", Type::Int).with_default(7i64)),
        )
        .unwrap();
        let oid = db.create_object("X", attrs(&[])).unwrap();
        assert_eq!(db.object(oid).unwrap().attr("n"), Value::Int(7));
    }

    #[test]
    fn extent_and_deep_extent() {
        let db = temp_db();
        db.define_class(ClassDef::new("A")).unwrap();
        db.define_class(ClassDef::new("B").extends("A")).unwrap();
        let a = db.create_object("A", attrs(&[])).unwrap();
        let b = db.create_object("B", attrs(&[])).unwrap();
        assert_eq!(db.extent("A", false).unwrap(), vec![a]);
        let deep = db.extent("A", true).unwrap();
        assert!(deep.contains(&a) && deep.contains(&b));
        assert_eq!(db.extent("B", true).unwrap(), vec![b]);
    }

    #[test]
    fn indexed_attr_lookup_and_update() {
        let db = taxo_db();
        let s1 = db
            .create_object(
                "Specimen",
                attrs(&[("code", "RBGE-1".into()), ("year", Value::Int(1753))]),
            )
            .unwrap();
        let s2 = db
            .create_object(
                "Specimen",
                attrs(&[("code", "RBGE-2".into()), ("year", Value::Int(1821))]),
            )
            .unwrap();
        assert_eq!(
            db.find_by_attr("Specimen", "code", &"RBGE-1".into())
                .unwrap(),
            vec![s1]
        );
        let range = db
            .find_by_attr_range("Specimen", "year", &Value::Int(1800), &Value::Int(1900))
            .unwrap();
        assert_eq!(range, vec![s2]);
        // Update moves the index entry.
        db.set_attr(s1, "code", "RBGE-9").unwrap();
        assert!(db
            .find_by_attr("Specimen", "code", &"RBGE-1".into())
            .unwrap()
            .is_empty());
        assert_eq!(
            db.find_by_attr("Specimen", "code", &"RBGE-9".into())
                .unwrap(),
            vec![s1]
        );
        // Delete removes it.
        db.delete_object(s1).unwrap();
        assert!(db
            .find_by_attr("Specimen", "code", &"RBGE-9".into())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn relationship_crud_and_endpoint_indexes() {
        let db = taxo_db();
        let genus = db
            .create_object("Taxon", attrs(&[("name", "Apium".into())]))
            .unwrap();
        let species = db
            .create_object("Taxon", attrs(&[("name", "graveolens".into())]))
            .unwrap();
        let rel = db
            .create_relationship("Circumscribes", genus, species, attrs(&[]))
            .unwrap();
        assert_eq!(db.rels_from(genus, None).unwrap().len(), 1);
        assert_eq!(
            db.rels_to(species, Some("Circumscribes")).unwrap()[0].oid,
            rel
        );
        db.delete_relationship(rel).unwrap();
        assert!(db.rels_from(genus, None).unwrap().is_empty());
        assert!(db.rel(rel).is_err());
    }

    #[test]
    fn endpoint_class_conformance_enforced() {
        let db = taxo_db();
        let s = db
            .create_object("Specimen", attrs(&[("code", "X".into())]))
            .unwrap();
        let t = db
            .create_object("Taxon", attrs(&[("name", "T".into())]))
            .unwrap();
        // Cites requires Taxon -> Taxon.
        let err = db
            .create_relationship("Cites", s, t, attrs(&[]))
            .unwrap_err();
        assert!(matches!(err, DbError::EndpointMismatch { .. }));
    }

    #[test]
    fn exclusivity_enforced() {
        let db = taxo_db();
        db.define_relationship(
            RelClassDef::association("HasHolotype", "Taxon", "Specimen").exclusive(),
        )
        .unwrap();
        let t1 = db
            .create_object("Taxon", attrs(&[("name", "A".into())]))
            .unwrap();
        let t2 = db
            .create_object("Taxon", attrs(&[("name", "B".into())]))
            .unwrap();
        let s = db
            .create_object("Specimen", attrs(&[("code", "S".into())]))
            .unwrap();
        db.create_relationship("HasHolotype", t1, s, attrs(&[]))
            .unwrap();
        let err = db
            .create_relationship("HasHolotype", t2, s, attrs(&[]))
            .unwrap_err();
        assert!(matches!(err, DbError::ExclusivityViolation { .. }));
    }

    #[test]
    fn sharability_enforced_for_aggregations() {
        let db = temp_db();
        db.define_class(ClassDef::new("Whole")).unwrap();
        db.define_class(ClassDef::new("Part")).unwrap();
        db.define_relationship(RelClassDef::aggregation("Owns", "Whole", "Part"))
            .unwrap();
        let w1 = db.create_object("Whole", attrs(&[])).unwrap();
        let w2 = db.create_object("Whole", attrs(&[])).unwrap();
        let p = db.create_object("Part", attrs(&[])).unwrap();
        db.create_relationship("Owns", w1, p, attrs(&[])).unwrap();
        let err = db
            .create_relationship("Owns", w2, p, attrs(&[]))
            .unwrap_err();
        assert!(matches!(err, DbError::SharabilityViolation { .. }));
    }

    #[test]
    fn sharable_aggregation_allows_sharing() {
        let db = taxo_db(); // Circumscribes is sharable
        let t1 = db
            .create_object("Taxon", attrs(&[("name", "A".into())]))
            .unwrap();
        let t2 = db
            .create_object("Taxon", attrs(&[("name", "B".into())]))
            .unwrap();
        let s = db
            .create_object("Specimen", attrs(&[("code", "S".into())]))
            .unwrap();
        db.create_relationship("Circumscribes", t1, s, attrs(&[]))
            .unwrap();
        // The same specimen may be circumscribed by another taxon — this is
        // the multiple-classification requirement.
        db.create_relationship("Circumscribes", t2, s, attrs(&[]))
            .unwrap();
        assert_eq!(db.rels_to(s, Some("Circumscribes")).unwrap().len(), 2);
    }

    #[test]
    fn cardinality_enforced_on_both_sides() {
        let db = temp_db();
        db.define_class(ClassDef::new("N")).unwrap();
        db.define_relationship(
            RelClassDef::association("Narrow", "N", "N")
                .origin_cardinality(Cardinality {
                    min: 0,
                    max: Some(2),
                })
                .destination_cardinality(Cardinality::OPTIONAL),
        )
        .unwrap();
        let a = db.create_object("N", attrs(&[])).unwrap();
        let b = db.create_object("N", attrs(&[])).unwrap();
        let c = db.create_object("N", attrs(&[])).unwrap();
        let d = db.create_object("N", attrs(&[])).unwrap();
        db.create_relationship("Narrow", a, b, attrs(&[])).unwrap();
        db.create_relationship("Narrow", a, c, attrs(&[])).unwrap();
        let err = db
            .create_relationship("Narrow", a, d, attrs(&[]))
            .unwrap_err();
        assert!(matches!(
            err,
            DbError::CardinalityViolation { side: "origin", .. }
        ));
        let err = db
            .create_relationship("Narrow", c, b, attrs(&[]))
            .unwrap_err();
        assert!(matches!(
            err,
            DbError::CardinalityViolation {
                side: "destination",
                ..
            }
        ));
    }

    #[test]
    fn acyclicity_enforced() {
        let db = temp_db();
        db.define_class(ClassDef::new("N")).unwrap();
        db.define_relationship(RelClassDef::aggregation("Contains", "N", "N").sharable(true))
            .unwrap();
        let a = db.create_object("N", attrs(&[])).unwrap();
        let b = db.create_object("N", attrs(&[])).unwrap();
        let c = db.create_object("N", attrs(&[])).unwrap();
        db.create_relationship("Contains", a, b, attrs(&[]))
            .unwrap();
        db.create_relationship("Contains", b, c, attrs(&[]))
            .unwrap();
        let err = db
            .create_relationship("Contains", c, a, attrs(&[]))
            .unwrap_err();
        assert!(matches!(err, DbError::CycleViolation { .. }));
        let err = db
            .create_relationship("Contains", a, a, attrs(&[]))
            .unwrap_err();
        assert!(matches!(err, DbError::CycleViolation { .. }));
    }

    #[test]
    fn constant_relationship_protected() {
        let db = temp_db();
        db.define_class(ClassDef::new("N")).unwrap();
        db.define_relationship(RelClassDef::association("Fixed", "N", "N").constant())
            .unwrap();
        let a = db.create_object("N", attrs(&[])).unwrap();
        let b = db.create_object("N", attrs(&[])).unwrap();
        let rel = db.create_relationship("Fixed", a, b, attrs(&[])).unwrap();
        let err = db.delete_relationship(rel).unwrap_err();
        assert!(matches!(err, DbError::ConstancyViolation { .. }));
        // Deleting an endpoint cascades through the constant relationship.
        db.delete_object(a).unwrap();
        assert!(db.rel(rel).is_err());
    }

    #[test]
    fn lifetime_dependency_cascades() {
        let db = temp_db();
        db.define_class(ClassDef::new("Whole")).unwrap();
        db.define_class(ClassDef::new("Part")).unwrap();
        db.define_relationship(RelClassDef::aggregation("Owns", "Whole", "Part").dependent())
            .unwrap();
        let w = db.create_object("Whole", attrs(&[])).unwrap();
        let p = db.create_object("Part", attrs(&[])).unwrap();
        db.create_relationship("Owns", w, p, attrs(&[])).unwrap();
        db.delete_object(w).unwrap();
        assert!(
            !db.exists(p),
            "dependent part must be deleted with its whole"
        );
    }

    #[test]
    fn delete_object_detaches_relationships() {
        let db = taxo_db();
        let t = db
            .create_object("Taxon", attrs(&[("name", "T".into())]))
            .unwrap();
        let s = db
            .create_object("Specimen", attrs(&[("code", "S".into())]))
            .unwrap();
        let rel = db
            .create_relationship("Circumscribes", t, s, attrs(&[]))
            .unwrap();
        db.delete_object(t).unwrap();
        assert!(db.rel(rel).is_err());
        assert!(db.exists(s), "sharable, non-dependent part survives");
        assert!(db.rels_to(s, None).unwrap().is_empty());
    }

    #[test]
    fn attribute_inheritance_from_relationships() {
        let db = temp_db();
        db.define_class(ClassDef::new("Person").attr(AttrDef::required("name", Type::Str)))
            .unwrap();
        db.define_relationship(
            RelClassDef::association("Wedding", "Person", "Person")
                .attr(AttrDef::optional("weddingDate", Type::Date))
                .inherits("weddingDate"),
        )
        .unwrap();
        let a = db
            .create_object("Person", attrs(&[("name", "A".into())]))
            .unwrap();
        let b = db
            .create_object("Person", attrs(&[("name", "B".into())]))
            .unwrap();
        let date = crate::value::Date::new(2001, 12, 4);
        db.create_relationship("Wedding", a, b, attrs(&[("weddingDate", date.into())]))
            .unwrap();
        // The destination inherits the relationship attribute (ADAM roles).
        assert_eq!(db.attr_of(b, "weddingDate").unwrap(), Value::Date(date));
        // The origin does not (inheritance targets the destination).
        assert_eq!(db.attr_of(a, "weddingDate").unwrap(), Value::Null);
    }

    #[test]
    fn ambiguous_inherited_attr_is_error() {
        let db = temp_db();
        db.define_class(ClassDef::new("P")).unwrap();
        db.define_relationship(
            RelClassDef::association("R", "P", "P")
                .attr(AttrDef::optional("w", Type::Int))
                .inherits("w"),
        )
        .unwrap();
        let a = db.create_object("P", attrs(&[])).unwrap();
        let b = db.create_object("P", attrs(&[])).unwrap();
        let c = db.create_object("P", attrs(&[])).unwrap();
        db.create_relationship("R", a, c, attrs(&[("w", Value::Int(1))]))
            .unwrap();
        db.create_relationship("R", b, c, attrs(&[("w", Value::Int(2))]))
            .unwrap();
        assert!(matches!(
            db.attr_of(c, "w").unwrap_err(),
            DbError::AmbiguousInheritedAttr { .. }
        ));
    }

    #[test]
    fn synonyms_declare_and_query() {
        let db = taxo_db();
        let a = db
            .create_object("Specimen", attrs(&[("code", "A".into())]))
            .unwrap();
        let b = db
            .create_object("Specimen", attrs(&[("code", "B".into())]))
            .unwrap();
        assert!(!db.same_instance(a, b));
        db.declare_synonym(a, b).unwrap();
        assert!(db.same_instance(a, b));
        assert_eq!(db.synonym_set(a).len(), 2);
        // Deleting one member dissolves it from the set.
        db.delete_object(a).unwrap();
        assert_eq!(db.synonym_set(b).len(), 1);
    }

    #[test]
    fn classification_membership_and_strictness() {
        let db = taxo_db();
        let cls = db
            .create_classification("Linnaeus 1753", attrs(&[]), true)
            .unwrap();
        let g = db
            .create_object("Taxon", attrs(&[("name", "Apium".into())]))
            .unwrap();
        let s1 = db
            .create_object("Taxon", attrs(&[("name", "graveolens".into())]))
            .unwrap();
        let g2 = db
            .create_object("Taxon", attrs(&[("name", "Helio".into())]))
            .unwrap();
        let e1 = db
            .create_relationship("Circumscribes", g, s1, attrs(&[]))
            .unwrap();
        db.add_edge_to_classification(cls, e1).unwrap();
        assert!(db.edge_in_classification(cls, e1));
        // Second parent for s1 in the same classification is rejected.
        let e2 = db
            .create_relationship("Circumscribes", g2, s1, attrs(&[]))
            .unwrap();
        let err = db.add_edge_to_classification(cls, e2).unwrap_err();
        assert!(matches!(err, DbError::Classification(_)));
        // But a different classification may hold it: overlap.
        let cls2 = db
            .create_classification("Koch 1824", attrs(&[]), true)
            .unwrap();
        db.add_edge_to_classification(cls2, e2).unwrap();
        assert_eq!(db.classifications_of_edge(e2).unwrap(), vec![cls2]);
        db.remove_edge_from_classification(cls2, e2).unwrap();
        assert!(!db.edge_in_classification(cls2, e2));
    }

    #[test]
    fn deleting_relationship_leaves_classifications() {
        let db = taxo_db();
        let cls = db.create_classification("C", attrs(&[]), true).unwrap();
        let a = db
            .create_object("Taxon", attrs(&[("name", "a".into())]))
            .unwrap();
        let b = db
            .create_object("Taxon", attrs(&[("name", "b".into())]))
            .unwrap();
        let e = db
            .create_relationship("Circumscribes", a, b, attrs(&[]))
            .unwrap();
        db.add_edge_to_classification(cls, e).unwrap();
        db.delete_relationship(e).unwrap();
        assert!(db.classification_edges(cls).unwrap().is_empty());
    }

    #[test]
    fn unit_abort_rolls_back_everything() {
        let db = taxo_db();
        let pre_existing = db
            .create_object("Taxon", attrs(&[("name", "Keep".into())]))
            .unwrap();
        let token = db.begin_unit();
        let t = db
            .create_object("Taxon", attrs(&[("name", "Gone".into())]))
            .unwrap();
        let s = db
            .create_object("Specimen", attrs(&[("code", "Gone".into())]))
            .unwrap();
        let rel = db
            .create_relationship("Circumscribes", t, s, attrs(&[]))
            .unwrap();
        db.set_attr(pre_existing, "name", "Renamed").unwrap();
        let cls = db
            .create_classification("Scratch", attrs(&[]), true)
            .unwrap();
        db.add_edge_to_classification(cls, rel).unwrap();
        db.abort_unit(token);
        assert!(!db.exists(t));
        assert!(!db.exists(s));
        assert!(!db.exists(rel));
        assert!(!db.exists(cls));
        assert_eq!(
            db.object(pre_existing).unwrap().attr("name"),
            Value::from("Keep")
        );
        // Indexes rolled back too.
        assert!(db
            .find_by_attr("Taxon", "name", &"Gone".into())
            .unwrap()
            .is_empty());
        assert_eq!(
            db.find_by_attr("Taxon", "name", &"Keep".into()).unwrap(),
            vec![pre_existing]
        );
    }

    #[test]
    fn unit_commit_keeps_changes() {
        let db = taxo_db();
        let token = db.begin_unit();
        let t = db
            .create_object("Taxon", attrs(&[("name", "Stay".into())]))
            .unwrap();
        db.commit_unit(token).unwrap();
        assert!(db.exists(t));
        assert!(!db.in_unit());
    }

    #[test]
    fn nested_units_commit_with_outermost() {
        let db = taxo_db();
        let outer = db.begin_unit();
        let t1 = db
            .create_object("Taxon", attrs(&[("name", "one".into())]))
            .unwrap();
        let inner = db.begin_unit();
        let t2 = db
            .create_object("Taxon", attrs(&[("name", "two".into())]))
            .unwrap();
        db.commit_unit(inner).unwrap();
        assert!(db.in_unit(), "outer unit still active");
        db.abort_unit(outer);
        assert!(
            !db.exists(t1) && !db.exists(t2),
            "abort undoes nested work too"
        );
    }

    #[test]
    fn unit_rollback_restores_deleted_object_with_relationships() {
        let db = taxo_db();
        let t = db
            .create_object("Taxon", attrs(&[("name", "T".into())]))
            .unwrap();
        let s = db
            .create_object("Specimen", attrs(&[("code", "S".into())]))
            .unwrap();
        let rel = db
            .create_relationship("Circumscribes", t, s, attrs(&[]))
            .unwrap();
        let cls = db.create_classification("C", attrs(&[]), true).unwrap();
        db.add_edge_to_classification(cls, rel).unwrap();
        let token = db.begin_unit();
        db.delete_object(t).unwrap();
        assert!(!db.exists(rel));
        db.abort_unit(token);
        assert!(db.exists(t));
        assert!(db.exists(rel), "incident relationship restored");
        assert!(
            db.edge_in_classification(cls, rel),
            "classification membership restored"
        );
        assert_eq!(
            db.rels_to(s, None).unwrap().len(),
            1,
            "endpoint index restored"
        );
    }

    struct VetoCreate;
    impl EventListener for VetoCreate {
        fn before(&self, _db: &Database, event: &Event) -> DbResult<()> {
            if matches!(event, Event::ObjectCreated { class, .. } if class == "Taxon") {
                return Err(DbError::Vetoed {
                    rule: "no-taxa".into(),
                    reason: "blocked".into(),
                });
            }
            Ok(())
        }
    }

    #[test]
    fn pre_listener_vetoes_creation() {
        let db = taxo_db();
        db.add_listener(Arc::new(VetoCreate));
        let err = db
            .create_object("Taxon", attrs(&[("name", "X".into())]))
            .unwrap_err();
        assert!(matches!(err, DbError::Vetoed { .. }));
        assert!(db.extent("Taxon", false).unwrap().is_empty());
        // Other classes unaffected.
        assert!(db
            .create_object("Specimen", attrs(&[("code", "ok".into())]))
            .is_ok());
    }

    struct FailAtCommit;
    impl EventListener for FailAtCommit {
        fn at_commit(&self, _db: &Database, events: &[Event]) -> DbResult<()> {
            if events
                .iter()
                .any(|e| matches!(e, Event::ObjectCreated { class, .. } if class == "Taxon"))
            {
                return Err(DbError::ConstraintViolation {
                    rule: "deferred".into(),
                    reason: "no taxa allowed".into(),
                });
            }
            Ok(())
        }
    }

    #[test]
    fn deferred_failure_rolls_back_unit() {
        let db = taxo_db();
        db.add_listener(Arc::new(FailAtCommit));
        let token = db.begin_unit();
        let t = db
            .create_object("Taxon", attrs(&[("name", "X".into())]))
            .unwrap();
        assert!(db.exists(t), "visible inside the unit");
        let err = db.commit_unit(token).unwrap_err();
        assert!(matches!(err, DbError::ConstraintViolation { .. }));
        assert!(!db.exists(t), "rolled back at deferred-constraint failure");
    }

    #[test]
    fn min_cardinality_validation_is_deferred() {
        let db = temp_db();
        db.define_class(ClassDef::new("Name")).unwrap();
        db.define_class(ClassDef::new("Type")).unwrap();
        // Every Name must eventually carry at least one HasType instance.
        db.define_relationship(
            RelClassDef::association("MustType", "Name", "Type")
                .origin_cardinality(Cardinality::at_least(1)),
        )
        .unwrap();
        let name = db.create_object("Name", attrs(&[])).unwrap();
        let problems = db.validate_min_cardinalities().unwrap();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("MustType"));
        let ty = db.create_object("Type", attrs(&[])).unwrap();
        db.create_relationship("MustType", name, ty, attrs(&[]))
            .unwrap();
        assert!(db.validate_min_cardinalities().unwrap().is_empty());
    }

    #[test]
    fn deep_copy_clones_exclusive_parts_and_shares_the_rest() {
        let db = temp_db();
        db.define_class(ClassDef::new("Car").attr(AttrDef::required("model", Type::Str)))
            .unwrap();
        db.define_class(ClassDef::new("Engine").attr(AttrDef::required("serial", Type::Str)))
            .unwrap();
        db.define_class(ClassDef::new("Manual")).unwrap();
        // Engine: exclusive part. Manual: sharable aggregation.
        db.define_relationship(RelClassDef::aggregation("HasEngine", "Car", "Engine"))
            .unwrap();
        db.define_relationship(
            RelClassDef::aggregation("HasManual", "Car", "Manual").sharable(true),
        )
        .unwrap();
        let car = db
            .create_object("Car", attrs(&[("model", "T".into())]))
            .unwrap();
        let engine = db
            .create_object("Engine", attrs(&[("serial", "E-1".into())]))
            .unwrap();
        let manual = db.create_object("Manual", attrs(&[])).unwrap();
        db.create_relationship("HasEngine", car, engine, attrs(&[]))
            .unwrap();
        db.create_relationship("HasManual", car, manual, attrs(&[]))
            .unwrap();

        let copy = db.deep_copy(car).unwrap();
        assert_ne!(copy, car);
        let copy_engine = db.rels_from(copy, Some("HasEngine")).unwrap()[0].destination;
        let copy_manual = db.rels_from(copy, Some("HasManual")).unwrap()[0].destination;
        assert_ne!(copy_engine, engine, "exclusive part must be cloned");
        assert_eq!(copy_manual, manual, "sharable part must be shared");
        assert_eq!(
            db.object(copy_engine).unwrap().attr("serial"),
            Value::from("E-1")
        );
        // The original is untouched.
        assert_eq!(db.rels_from(car, None).unwrap().len(), 2);
        // Copying is atomic: both objects exist, extents updated.
        assert_eq!(db.extent("Engine", false).unwrap().len(), 2);
        assert_eq!(db.extent("Manual", false).unwrap().len(), 1);
    }

    #[test]
    fn deep_copy_rolls_back_atomically_on_failure() {
        let db = temp_db();
        db.define_class(ClassDef::new("A")).unwrap();
        db.define_class(ClassDef::new("B")).unwrap();
        // Exclusive destination: the copy's second link to the same shared
        // associate is fine, but an exclusive association will conflict.
        db.define_relationship(RelClassDef::association("Only", "A", "B").exclusive())
            .unwrap();
        let a = db.create_object("A", attrs(&[])).unwrap();
        let b = db.create_object("B", attrs(&[])).unwrap();
        db.create_relationship("Only", a, b, attrs(&[])).unwrap();
        let before = db.extent("A", false).unwrap().len();
        // Copying re-links the association to the same (exclusive) B: error.
        let err = db.deep_copy(a).unwrap_err();
        assert!(matches!(err, DbError::ExclusivityViolation { .. }));
        assert_eq!(
            db.extent("A", false).unwrap().len(),
            before,
            "copy rolled back"
        );
    }

    #[test]
    fn persistence_across_reopen() {
        let path = std::env::temp_dir().join(format!(
            "prometheus-reopen-{}-{:?}.log",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let oid;
        let cls;
        {
            let store = Arc::new(Store::open(&path).unwrap());
            let db = Database::open(store).unwrap();
            db.define_class(
                ClassDef::new("Taxon").attr(AttrDef::required("name", Type::Str).indexed()),
            )
            .unwrap();
            db.define_relationship(RelClassDef::association("R", "Taxon", "Taxon"))
                .unwrap();
            oid = db
                .create_object("Taxon", attrs(&[("name", "Apium".into())]))
                .unwrap();
            cls = db.create_classification("C", attrs(&[]), true).unwrap();
        }
        let store = Arc::new(Store::open(&path).unwrap());
        let db = Database::open(store).unwrap();
        assert_eq!(db.object(oid).unwrap().attr("name"), Value::from("Apium"));
        assert_eq!(
            db.find_by_attr("Taxon", "name", &"Apium".into()).unwrap(),
            vec![oid]
        );
        assert_eq!(db.classification_meta(cls).unwrap().name, "C");
        assert!(db.with_schema(|s| s.rel_class("R").is_some()));
        let _ = std::fs::remove_file(path);
    }
}
