//! Deterministic morsel-parallel work driver.
//!
//! Splits a slice of work items into fixed-size *morsels*, lets scoped
//! worker threads claim morsels through an atomic cursor, and merges the
//! per-morsel outputs **in morsel order**. Because merging is positional,
//! the concatenated result is byte-identical to running the same function
//! over the items sequentially — parallelism never changes what a caller
//! observes, only how fast it arrives. This is the execution substrate for
//! the POOL parallel executor and the frontier-parallel traversal.
//!
//! Error semantics also match the sequential run: if several morsels fail,
//! the error of the **lowest-indexed** failing morsel is returned — exactly
//! the error a sequential left-to-right run would have hit first.

use crate::error::DbResult;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default number of items per morsel for cheap per-item work (predicate
/// filters, join probes). Small enough to balance skewed work, large enough
/// that the claim cadence is noise. Callers with expensive per-item work
/// (traversal frontier expansion) pass a smaller size — the morsel size is
/// also the parallelism threshold: anything that fits in one morsel runs
/// sequentially, so it doubles as "not worth spinning threads under this".
pub const MORSEL_SIZE: usize = 256;

/// Outcome of a [`run`]: the in-order merged output plus how many morsels
/// were executed by parallel workers (0 for a sequential run — the number
/// feeds the `parallel_morsels` metric).
#[derive(Debug)]
pub struct MorselRun<U> {
    pub output: Vec<U>,
    pub parallel_morsels: u64,
}

/// Apply `f` to `items` in morsels of `morsel_size`, using up to `workers`
/// scoped threads, and merge the outputs in morsel order.
///
/// Runs sequentially (same result, zero `parallel_morsels`) when `workers`
/// <= 1 or when everything fits in one morsel.
pub fn run<T, U, F>(items: &[T], workers: usize, morsel_size: usize, f: F) -> DbResult<MorselRun<U>>
where
    T: Sync,
    U: Send,
    F: Fn(&[T]) -> DbResult<Vec<U>> + Sync,
{
    let morsel_size = morsel_size.max(1);
    let n_morsels = items.len().div_ceil(morsel_size);
    if workers <= 1 || n_morsels <= 1 {
        let mut output = Vec::new();
        for chunk in items.chunks(morsel_size) {
            output.extend(f(chunk)?);
        }
        return Ok(MorselRun {
            output,
            parallel_morsels: 0,
        });
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<DbResult<Vec<U>>>>> =
        (0..n_morsels).map(|_| Mutex::new(None)).collect();
    let threads = workers.min(n_morsels);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= n_morsels {
                    break;
                }
                let lo = idx * morsel_size;
                let hi = (lo + morsel_size).min(items.len());
                let result = f(&items[lo..hi]);
                *slots[idx].lock().unwrap_or_else(|p| p.into_inner()) = Some(result);
            });
        }
    });

    // Positional merge: morsel 0's rows first, then morsel 1's, … so the
    // output is identical to the sequential run; the first (lowest-index)
    // error wins, as it would sequentially.
    let mut output = Vec::new();
    for slot in slots {
        let result = slot
            .into_inner()
            .unwrap_or_else(|p| p.into_inner())
            .expect("every morsel claimed and completed");
        output.extend(result?);
    }
    Ok(MorselRun {
        output,
        parallel_morsels: n_morsels as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::DbError;

    #[test]
    fn parallel_merge_preserves_sequential_order() {
        let items: Vec<u64> = (0..5000).collect();
        let seq = run(&items, 1, 64, |chunk| {
            Ok(chunk.iter().map(|x| x * 3).collect())
        })
        .unwrap();
        let par = run(&items, 8, 64, |chunk| {
            Ok(chunk.iter().map(|x| x * 3).collect())
        })
        .unwrap();
        assert_eq!(seq.output, par.output);
        assert_eq!(seq.parallel_morsels, 0);
        assert!(par.parallel_morsels > 0);
    }

    #[test]
    fn single_morsel_inputs_stay_sequential() {
        let items: Vec<u64> = (0..10).collect();
        let r = run(&items, 8, 16, |chunk| Ok(chunk.to_vec())).unwrap();
        assert_eq!(r.output, items);
        assert_eq!(r.parallel_morsels, 0);
    }

    #[test]
    fn lowest_morsel_error_wins() {
        let items: Vec<u64> = (0..4096).collect();
        // Items 600.. and 3000.. both fail; the error carrying the lower
        // item (lower morsel index) must surface, as it would sequentially.
        let failing = |chunk: &[u64]| -> DbResult<Vec<u64>> {
            for &x in chunk {
                if x == 600 || x == 3000 {
                    return Err(DbError::Query(format!("boom at {x}")));
                }
            }
            Ok(chunk.to_vec())
        };
        let err = run(&items, 8, 64, failing).unwrap_err();
        assert!(
            matches!(&err, DbError::Query(m) if m == "boom at 600"),
            "{err:?}"
        );
    }

    #[test]
    fn empty_input_is_empty_output() {
        let items: Vec<u64> = Vec::new();
        let r = run(&items, 8, 64, |chunk| Ok(chunk.to_vec())).unwrap();
        assert!(r.output.is_empty());
        assert_eq!(r.parallel_morsels, 0);
    }
}
