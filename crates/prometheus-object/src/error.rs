//! Errors raised by the object layer.

use prometheus_storage::{Oid, StorageError};
use std::fmt;

/// Result alias for object-layer operations.
pub type DbResult<T> = Result<T, DbError>;

/// Errors raised by the Prometheus object layer.
///
/// The semantic variants correspond directly to the built-in relationship
/// behaviours of thesis §4.4: violating exclusivity, sharability, constancy,
/// cardinality or acyclicity is a first-class, typed failure rather than a
/// stringly one, so rules and applications can react to them individually.
#[derive(Debug)]
pub enum DbError {
    /// Underlying storage failure.
    Storage(StorageError),
    /// Schema definition problem (unknown class, duplicate, bad inheritance…).
    Schema(String),
    /// A value did not conform to the declared attribute type.
    TypeMismatch {
        expected: String,
        found: String,
        context: String,
    },
    /// Unknown object or relationship instance.
    NotFound(Oid),
    /// Unknown attribute for the instance's class.
    UnknownAttr { class: String, attr: String },
    /// An endpoint object's class does not conform to the relationship
    /// class's declared origin/destination class.
    EndpointMismatch {
        relationship: String,
        expected: String,
        found: String,
    },
    /// Exclusivity (§4.4.3, Figure 15): the destination already participates
    /// in an instance of an exclusive relationship class.
    ExclusivityViolation {
        relationship: String,
        destination: Oid,
    },
    /// Sharability (§4.4.3, Figure 16): the destination of a non-sharable
    /// aggregation is already part of another whole.
    SharabilityViolation {
        relationship: String,
        destination: Oid,
    },
    /// Constancy: a constant relationship instance cannot be re-targeted.
    ConstancyViolation { relationship: Oid },
    /// Cardinality bounds on one side of a relationship class were exceeded.
    CardinalityViolation {
        relationship: String,
        side: &'static str,
        limit: u32,
    },
    /// Adding this edge would create a cycle in an acyclic relationship class.
    CycleViolation {
        relationship: String,
        origin: Oid,
        destination: Oid,
    },
    /// An object still participates in relationships that block the operation.
    DependencyViolation(String),
    /// Attribute inheritance produced conflicting values (§4.4.5).
    AmbiguousInheritedAttr { oid: Oid, attr: String },
    /// A pre-event listener (rule) vetoed the operation.
    Vetoed { rule: String, reason: String },
    /// A deferred constraint failed at unit commit.
    ConstraintViolation { rule: String, reason: String },
    /// Classification-level structural violation (e.g. two parents for one
    /// child inside a strict hierarchy).
    Classification(String),
    /// Unit-of-work misuse (commit without begin, nested misuse…).
    Unit(String),
    /// Query-evaluation error surfaced through the object layer.
    Query(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Storage(e) => write!(f, "storage: {e}"),
            DbError::Schema(m) => write!(f, "schema error: {m}"),
            DbError::TypeMismatch { expected, found, context } => {
                write!(f, "type mismatch in {context}: expected {expected}, found {found}")
            }
            DbError::NotFound(oid) => write!(f, "no such instance: {oid}"),
            DbError::UnknownAttr { class, attr } => {
                write!(f, "class {class} has no attribute '{attr}'")
            }
            DbError::EndpointMismatch { relationship, expected, found } => write!(
                f,
                "relationship {relationship} expects endpoint of class {expected}, found {found}"
            ),
            DbError::ExclusivityViolation { relationship, destination } => write!(
                f,
                "exclusivity violation: {destination} already participates in exclusive relationship {relationship}"
            ),
            DbError::SharabilityViolation { relationship, destination } => write!(
                f,
                "sharability violation: {destination} is already part of another whole via {relationship}"
            ),
            DbError::ConstancyViolation { relationship } => {
                write!(f, "constant relationship {relationship} cannot be modified")
            }
            DbError::CardinalityViolation { relationship, side, limit } => write!(
                f,
                "cardinality violation on {side} side of {relationship}: limit {limit}"
            ),
            DbError::CycleViolation { relationship, origin, destination } => write!(
                f,
                "cycle violation: adding {origin} -> {destination} to acyclic relationship {relationship}"
            ),
            DbError::DependencyViolation(m) => write!(f, "dependency violation: {m}"),
            DbError::AmbiguousInheritedAttr { oid, attr } => {
                write!(f, "attribute '{attr}' of {oid} inherits conflicting values")
            }
            DbError::Vetoed { rule, reason } => write!(f, "vetoed by rule '{rule}': {reason}"),
            DbError::ConstraintViolation { rule, reason } => {
                write!(f, "constraint '{rule}' violated: {reason}")
            }
            DbError::Classification(m) => write!(f, "classification error: {m}"),
            DbError::Unit(m) => write!(f, "unit of work error: {m}"),
            DbError::Query(m) => write!(f, "query error: {m}"),
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for DbError {
    fn from(e: StorageError) -> Self {
        DbError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_mention_key_facts() {
        let e = DbError::ExclusivityViolation {
            relationship: "HasType".into(),
            destination: Oid::from_raw(9),
        };
        let s = e.to_string();
        assert!(s.contains("HasType") && s.contains("#9"));

        let e = DbError::CardinalityViolation {
            relationship: "Circumscribes".into(),
            side: "origin",
            limit: 1,
        };
        assert!(e.to_string().contains("origin"));
    }

    #[test]
    fn storage_errors_convert() {
        let e: DbError = StorageError::Codec("x".into()).into();
        assert!(matches!(e, DbError::Storage(_)));
    }
}
