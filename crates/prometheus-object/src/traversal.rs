//! Generic graph traversal over relationship instances.
//!
//! Implements the recursive-exploration requirement (requirement 9): every
//! higher-level operation — classification descendants/ancestors, POOL's
//! recursive path operators, name derivation, synonym detection — reduces to
//! [`traverse`] with a [`TraversalSpec`].
//!
//! Traversals are cycle-safe, honour depth bounds (`min_depth..=max_depth`,
//! giving POOL its `[a..b]` depth-controlled path expressions), can be scoped
//! to a single classification (querying *in context*, §4.6.2), and can treat
//! instance synonyms transparently (§4.5).

use crate::error::DbResult;
use crate::morsel;
use crate::read::Reader;
use prometheus_storage::Oid;
use std::collections::BTreeSet;

/// Which way to walk relationship instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow origin → destination (e.g. taxon → its circumscribed children).
    Outgoing,
    /// Follow destination → origin (e.g. specimen → the taxa containing it).
    Incoming,
}

/// How instance synonyms participate in a traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynonymMode {
    /// Treat every OID literally.
    Ignore,
    /// Treat a synonym set as one logical node: edges incident to any member
    /// are followed, and visited-tracking collapses the set.
    Transparent,
}

/// Parameters of one traversal.
#[derive(Debug, Clone)]
pub struct TraversalSpec {
    /// Relationship classes to follow; empty means *all*.
    pub rel_classes: Vec<String>,
    /// Also follow subclasses of the listed relationship classes.
    pub include_subclasses: bool,
    pub direction: Direction,
    /// Minimum depth for a node to be reported (1 = direct neighbours;
    /// 0 additionally reports the start node).
    pub min_depth: u32,
    /// Maximum depth to explore; `None` = unbounded (transitive closure).
    pub max_depth: Option<u32>,
    /// Restrict to edges belonging to this classification.
    pub classification: Option<Oid>,
    pub synonyms: SynonymMode,
}

impl TraversalSpec {
    /// Unbounded outgoing closure over the given relationship classes.
    pub fn closure(rel_classes: impl IntoIterator<Item = String>) -> Self {
        TraversalSpec {
            rel_classes: rel_classes.into_iter().collect(),
            include_subclasses: false,
            direction: Direction::Outgoing,
            min_depth: 1,
            max_depth: None,
            classification: None,
            synonyms: SynonymMode::Ignore,
        }
    }

    /// Direct neighbours only.
    pub fn neighbours(rel_classes: impl IntoIterator<Item = String>) -> Self {
        TraversalSpec {
            max_depth: Some(1),
            ..TraversalSpec::closure(rel_classes)
        }
    }

    /// Builder-style adjustments.
    pub fn direction(mut self, d: Direction) -> Self {
        self.direction = d;
        self
    }
    pub fn depth(mut self, min: u32, max: Option<u32>) -> Self {
        self.min_depth = min;
        self.max_depth = max;
        self
    }
    pub fn in_classification(mut self, cls: Oid) -> Self {
        self.classification = Some(cls);
        self
    }
    pub fn with_subclasses(mut self) -> Self {
        self.include_subclasses = true;
        self
    }
    pub fn synonym_mode(mut self, mode: SynonymMode) -> Self {
        self.synonyms = mode;
        self
    }
}

/// One node visited during a traversal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Visit {
    pub node: Oid,
    pub depth: u32,
    /// Edge through which the node was first reached (`None` for the start).
    pub via: Option<Oid>,
}

/// Breadth-first traversal from `start` according to `spec`.
///
/// Returns each reachable node exactly once (first time it is seen), with
/// its discovery depth — the order is therefore by increasing depth. Nodes
/// shallower than `min_depth` are explored but not reported.
///
/// Generic over [`Reader`]: run it against the live `Database` or against a
/// pinned `ReadView` for a traversal over one consistent snapshot.
pub fn traverse<R: Reader>(db: &R, start: Oid, spec: &TraversalSpec) -> DbResult<Vec<Visit>> {
    Ok(traverse_with(db, start, spec, 1)?.0)
}

/// Items per frontier morsel. Expanding one node costs several index scans,
/// so morsels are much smaller than the executor's filter morsels.
const FRONTIER_MORSEL: usize = 16;

/// [`traverse`] with a worker budget: each BFS level's frontier is expanded
/// morsel-parallel, and the expansions are merged in frontier order before
/// the visited-set is updated sequentially. Level-by-level expansion in
/// frontier order visits exactly the nodes, depths and `via` edges of the
/// FIFO walk, so the result is identical for every worker count. Also
/// returns the number of frontier morsels expanded in parallel (0 when the
/// walk stayed sequential).
pub fn traverse_with<R: Reader>(
    db: &R,
    start: Oid,
    spec: &TraversalSpec,
    workers: usize,
) -> DbResult<(Vec<Visit>, u64)> {
    let canon = |oid: Oid| match spec.synonyms {
        SynonymMode::Ignore => oid,
        SynonymMode::Transparent => db.synonym_representative(oid),
    };
    // Subclass-expand the relationship-class filter once per traversal
    // instead of once per visited node, preserving per-class probe order.
    let classes: Option<Vec<String>> = if spec.rel_classes.is_empty() {
        None
    } else {
        Some(db.with_schema(|s| {
            let mut acc = Vec::new();
            for class in &spec.rel_classes {
                if spec.include_subclasses {
                    acc.extend(s.with_subclasses(class));
                } else {
                    acc.push(class.clone());
                }
            }
            acc
        }))
    };
    let mut out = Vec::new();
    let mut visited: BTreeSet<Oid> = BTreeSet::new();
    visited.insert(canon(start));
    let mut level: Vec<(Oid, u32, Option<Oid>)> = vec![(start, 0, None)];
    let mut depth = 0u32;
    let mut parallel_morsels = 0u64;
    while !level.is_empty() {
        for &(node, d, via) in &level {
            if d >= spec.min_depth {
                out.push(Visit {
                    node,
                    depth: d,
                    via,
                });
            }
        }
        if let Some(max) = spec.max_depth {
            if depth >= max {
                break;
            }
        }
        let nodes: Vec<Oid> = level.iter().map(|&(n, _, _)| n).collect();
        let run = morsel::run(&nodes, workers, FRONTIER_MORSEL, |chunk| {
            expand_nodes(db, chunk, classes.as_deref(), spec)
        })?;
        parallel_morsels += run.parallel_morsels;
        let mut next_level = Vec::new();
        for (edge, next) in run.output {
            if visited.insert(canon(next)) {
                next_level.push((next, depth + 1, Some(edge)));
            }
        }
        level = next_level;
        depth += 1;
    }
    Ok((out, parallel_morsels))
}

/// Admissible edges of a batch of frontier nodes, concatenated in node
/// order (each node's edges in the same order [`step`] yields them).
/// `classes` is the pre-expanded relationship-class list (`None` = all).
fn expand_nodes<R: Reader>(
    db: &R,
    nodes: &[Oid],
    classes: Option<&[String]>,
    spec: &TraversalSpec,
) -> DbResult<Vec<(Oid, Oid)>> {
    let outgoing = spec.direction == Direction::Outgoing;
    let mut out = Vec::new();
    if spec.synonyms == SynonymMode::Ignore {
        let pairs_per_node = match classes {
            // Batched adjacency shares one key-prefix buffer across probes.
            Some(classes) => db.adjacency_batch(nodes, classes, outgoing)?,
            None => {
                let mut acc = Vec::with_capacity(nodes.len());
                for &node in nodes {
                    acc.push(db.adjacency(node, None, outgoing)?);
                }
                acc
            }
        };
        for pairs in pairs_per_node {
            for (edge, next) in pairs {
                if let Some(cls) = spec.classification {
                    if !db.edge_in_classification(cls, edge) {
                        continue;
                    }
                }
                out.push((edge, next));
            }
        }
    } else {
        for &node in nodes {
            out.extend(step(db, node, spec)?);
        }
    }
    Ok(out)
}

/// The edges leaving (or arriving at, per direction) `node` that `spec`
/// admits, paired with the node they lead to. With transparent synonyms the
/// edges of every synonym-set member are considered.
pub fn step<R: Reader>(db: &R, node: Oid, spec: &TraversalSpec) -> DbResult<Vec<(Oid, Oid)>> {
    let sources: Vec<Oid> = match spec.synonyms {
        SynonymMode::Ignore => vec![node],
        SynonymMode::Transparent => db.synonym_set(node),
    };
    let outgoing = spec.direction == Direction::Outgoing;
    let mut out = Vec::new();
    for source in sources {
        // Record-free adjacency: the endpoint index stores the opposite
        // endpoint, so no relationship record is decoded per step.
        let pairs: Vec<(Oid, Oid)> = if spec.rel_classes.is_empty() {
            db.adjacency(source, None, outgoing)?
        } else {
            let mut acc = Vec::new();
            for class in &spec.rel_classes {
                if spec.include_subclasses {
                    let classes = db.with_schema(|s| s.with_subclasses(class));
                    for c in classes {
                        acc.extend(db.adjacency(source, Some(&c), outgoing)?);
                    }
                } else {
                    acc.extend(db.adjacency(source, Some(class), outgoing)?);
                }
            }
            acc
        };
        for (edge, next) in pairs {
            if let Some(cls) = spec.classification {
                if !db.edge_in_classification(cls, edge) {
                    continue;
                }
            }
            out.push((edge, next));
        }
    }
    Ok(out)
}

/// All simple paths (as edge OID sequences) from `start` to `goal` honouring
/// `spec`; used by POOL's path-extraction operator. Depth bounds apply to
/// path length.
pub fn paths<R: Reader>(
    db: &R,
    start: Oid,
    goal: Oid,
    spec: &TraversalSpec,
) -> DbResult<Vec<Vec<Oid>>> {
    let mut out = Vec::new();
    let mut path_edges: Vec<Oid> = Vec::new();
    let mut path_nodes: BTreeSet<Oid> = BTreeSet::new();
    path_nodes.insert(start);
    dfs_paths(
        db,
        start,
        goal,
        spec,
        &mut path_edges,
        &mut path_nodes,
        &mut out,
    )?;
    Ok(out)
}

fn dfs_paths<R: Reader>(
    db: &R,
    node: Oid,
    goal: Oid,
    spec: &TraversalSpec,
    path_edges: &mut Vec<Oid>,
    path_nodes: &mut BTreeSet<Oid>,
    out: &mut Vec<Vec<Oid>>,
) -> DbResult<()> {
    if node == goal && path_edges.len() as u32 >= spec.min_depth {
        out.push(path_edges.clone());
        // Paths may continue through the goal when depth allows; fall through.
    }
    if let Some(max) = spec.max_depth {
        if path_edges.len() as u32 >= max {
            return Ok(());
        }
    }
    for (edge, next) in step(db, node, spec)? {
        if !path_nodes.insert(next) {
            continue; // simple paths only
        }
        path_edges.push(edge);
        dfs_paths(db, next, goal, spec, path_edges, path_nodes, out)?;
        path_edges.pop();
        path_nodes.remove(&next);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::tests::temp_db;
    use crate::database::Database;
    use crate::schema::{ClassDef, RelClassDef};

    /// a -> b -> c, a -> d, plus an association d -> c.
    fn diamond() -> (Database, [Oid; 4]) {
        let db = temp_db();
        db.define_class(ClassDef::new("N")).unwrap();
        db.define_relationship(RelClassDef::aggregation("Tree", "N", "N").sharable(true))
            .unwrap();
        db.define_relationship(RelClassDef::association("Link", "N", "N"))
            .unwrap();
        let a = db.create_object("N", Vec::new()).unwrap();
        let b = db.create_object("N", Vec::new()).unwrap();
        let c = db.create_object("N", Vec::new()).unwrap();
        let d = db.create_object("N", Vec::new()).unwrap();
        db.create_relationship("Tree", a, b, Vec::new()).unwrap();
        db.create_relationship("Tree", b, c, Vec::new()).unwrap();
        db.create_relationship("Tree", a, d, Vec::new()).unwrap();
        db.create_relationship("Link", d, c, Vec::new()).unwrap();
        (db, [a, b, c, d])
    }

    #[test]
    fn closure_reaches_everything_via_all_classes() {
        let (db, [a, b, c, d]) = diamond();
        let visits = traverse(&db, a, &TraversalSpec::closure(Vec::new())).unwrap();
        let nodes: Vec<Oid> = visits.iter().map(|v| v.node).collect();
        assert_eq!(nodes.len(), 3);
        assert!(nodes.contains(&b) && nodes.contains(&c) && nodes.contains(&d));
    }

    #[test]
    fn class_filter_restricts_edges() {
        let (db, [_a, _b, c, d]) = diamond();
        // Only Link edges from d.
        let visits = traverse(&db, d, &TraversalSpec::closure(vec!["Link".into()])).unwrap();
        assert_eq!(visits.len(), 1);
        assert_eq!(visits[0].node, c);
        // Only Tree edges from d: none.
        let visits = traverse(&db, d, &TraversalSpec::closure(vec!["Tree".into()])).unwrap();
        assert!(visits.is_empty());
    }

    #[test]
    fn depth_bounds_are_honoured() {
        let (db, [a, b, _c, d]) = diamond();
        let spec = TraversalSpec::closure(vec!["Tree".into()]).depth(1, Some(1));
        let visits = traverse(&db, a, &spec).unwrap();
        let nodes: Vec<Oid> = visits.iter().map(|v| v.node).collect();
        assert_eq!(nodes.len(), 2);
        assert!(nodes.contains(&b) && nodes.contains(&d));
        // min_depth 2 skips direct children.
        let spec = TraversalSpec::closure(vec!["Tree".into()]).depth(2, None);
        let visits = traverse(&db, a, &spec).unwrap();
        assert_eq!(visits.len(), 1);
        assert_eq!(visits[0].depth, 2);
        // depth 0 includes the start node.
        let spec = TraversalSpec::closure(vec!["Tree".into()]).depth(0, Some(0));
        let visits = traverse(&db, a, &spec).unwrap();
        assert_eq!(
            visits,
            vec![Visit {
                node: a,
                depth: 0,
                via: None
            }]
        );
    }

    #[test]
    fn incoming_direction_walks_up() {
        let (db, [a, _b, c, _d]) = diamond();
        let spec = TraversalSpec::closure(Vec::new()).direction(Direction::Incoming);
        let visits = traverse(&db, c, &spec).unwrap();
        let nodes: Vec<Oid> = visits.iter().map(|v| v.node).collect();
        assert!(nodes.contains(&a), "must reach the root upward");
        assert_eq!(nodes.len(), 3);
    }

    #[test]
    fn cycles_terminate() {
        let db = temp_db();
        db.define_class(ClassDef::new("N")).unwrap();
        db.define_relationship(RelClassDef::association("Next", "N", "N"))
            .unwrap();
        let a = db.create_object("N", Vec::new()).unwrap();
        let b = db.create_object("N", Vec::new()).unwrap();
        db.create_relationship("Next", a, b, Vec::new()).unwrap();
        db.create_relationship("Next", b, a, Vec::new()).unwrap();
        let visits = traverse(&db, a, &TraversalSpec::closure(vec!["Next".into()])).unwrap();
        assert_eq!(visits.len(), 1, "each node reported once despite the cycle");
    }

    #[test]
    fn classification_scope_filters_edges() {
        let (db, [a, b, _c, d]) = diamond();
        let cls = db
            .create_classification("only-ab", Vec::new(), false)
            .unwrap();
        let edge_ab = db.rels_from(a, Some("Tree")).unwrap();
        let ab = edge_ab.iter().find(|e| e.destination == b).unwrap().oid;
        db.add_edge_to_classification(cls, ab).unwrap();
        let spec = TraversalSpec::closure(Vec::new()).in_classification(cls);
        let visits = traverse(&db, a, &spec).unwrap();
        assert_eq!(visits.len(), 1);
        assert_eq!(visits[0].node, b);
        let _ = d;
    }

    #[test]
    fn transparent_synonyms_bridge_edges() {
        let db = temp_db();
        db.define_class(ClassDef::new("N")).unwrap();
        db.define_relationship(RelClassDef::association("Next", "N", "N"))
            .unwrap();
        // a -> b ; b' -> c with b ≡ b'.
        let a = db.create_object("N", Vec::new()).unwrap();
        let b = db.create_object("N", Vec::new()).unwrap();
        let b2 = db.create_object("N", Vec::new()).unwrap();
        let c = db.create_object("N", Vec::new()).unwrap();
        db.create_relationship("Next", a, b, Vec::new()).unwrap();
        db.create_relationship("Next", b2, c, Vec::new()).unwrap();
        db.declare_synonym(b, b2).unwrap();
        let ignore = traverse(&db, a, &TraversalSpec::closure(vec!["Next".into()])).unwrap();
        assert_eq!(ignore.len(), 1, "without synonyms the walk stops at b");
        let spec =
            TraversalSpec::closure(vec!["Next".into()]).synonym_mode(SynonymMode::Transparent);
        let transparent = traverse(&db, a, &spec).unwrap();
        let nodes: Vec<Oid> = transparent.iter().map(|v| v.node).collect();
        assert!(nodes.contains(&c), "synonym set bridges to c");
    }

    #[test]
    fn subclass_edges_are_followed_when_requested() {
        let db = temp_db();
        db.define_class(ClassDef::new("N")).unwrap();
        db.define_relationship(RelClassDef::association("Base", "N", "N"))
            .unwrap();
        db.define_relationship(RelClassDef::association("Derived", "N", "N").extends("Base"))
            .unwrap();
        let a = db.create_object("N", Vec::new()).unwrap();
        let b = db.create_object("N", Vec::new()).unwrap();
        db.create_relationship("Derived", a, b, Vec::new()).unwrap();
        let exact = traverse(&db, a, &TraversalSpec::closure(vec!["Base".into()])).unwrap();
        assert!(exact.is_empty());
        let spec = TraversalSpec::closure(vec!["Base".into()]).with_subclasses();
        let poly = traverse(&db, a, &spec).unwrap();
        assert_eq!(poly.len(), 1);
    }

    #[test]
    fn parallel_traversal_matches_sequential_exactly() {
        // A dense layered graph big enough that several frontier morsels
        // actually run in parallel (frontier width > FRONTIER_MORSEL).
        let db = temp_db();
        db.define_class(ClassDef::new("N")).unwrap();
        db.define_relationship(RelClassDef::association("E", "N", "N"))
            .unwrap();
        let layers: Vec<Vec<Oid>> = (0..3)
            .map(|i| {
                (0..(20 + i * 30))
                    .map(|_| db.create_object("N", Vec::new()).unwrap())
                    .collect()
            })
            .collect();
        for w in layers.windows(2) {
            for (i, &from) in w[0].iter().enumerate() {
                for (j, &to) in w[1].iter().enumerate() {
                    if (i + j) % 3 == 0 {
                        db.create_relationship("E", from, to, Vec::new()).unwrap();
                    }
                }
            }
        }
        let root = db.create_object("N", Vec::new()).unwrap();
        for &n in &layers[0] {
            db.create_relationship("E", root, n, Vec::new()).unwrap();
        }
        for spec in [
            TraversalSpec::closure(vec!["E".into()]),
            TraversalSpec::closure(Vec::new()).depth(0, Some(2)),
            TraversalSpec::closure(vec!["E".into()]).with_subclasses(),
        ] {
            let seq = traverse(&db, root, &spec).unwrap();
            let (par, morsels) = traverse_with(&db, root, &spec, 8).unwrap();
            assert_eq!(seq, par, "parallel visits must be byte-identical");
            assert!(morsels > 0, "wide frontiers must actually parallelise");
        }
    }

    #[test]
    fn paths_finds_all_simple_paths() {
        let (db, [a, _b, c, _d]) = diamond();
        let spec = TraversalSpec::closure(Vec::new());
        let found = paths(&db, a, c, &spec).unwrap();
        assert_eq!(found.len(), 2, "a->b->c and a->d->c");
        assert!(found.iter().all(|p| p.len() == 2));
        // Bounded to length 1: no path.
        let spec = TraversalSpec::closure(Vec::new()).depth(1, Some(1));
        assert!(paths(&db, a, c, &spec).unwrap().is_empty());
    }
}
