//! The index layer (thesis §6.1.4): key encodings for the store's ordered
//! keyspaces.
//!
//! Five index families keep queries off full scans:
//!
//! * **extent** — `class ⇒ oid`, membership of each class's extent;
//! * **attribute** — `class · attr · value ⇒ oid`, for attributes declared
//!   `indexed` in the schema (exact-match and range queries);
//! * **relationship endpoints** — `origin ⇒ (class, rel)` and
//!   `destination ⇒ (class, rel)`, the adjacency lists every traversal and
//!   classification operation runs on;
//! * **classification membership** — `classification ⇒ rel` plus the reverse
//!   `rel ⇒ classification`.
//!
//! Keys are built so that prefix scans answer the natural questions: "all
//! members of class C", "all edges leaving O via relationship class R", "all
//! edges of classification K".

use crate::value::Value;
use prometheus_storage::{Keyspace, Oid, RouteRule, ShardRouting};

/// Keyspace holding schema, classification metadata and synonym state.
pub const KS_META: Keyspace = Keyspace(0);
/// Extent index.
pub const KS_EXTENT: Keyspace = Keyspace(1);
/// Attribute value index.
pub const KS_ATTR: Keyspace = Keyspace(2);
/// Outgoing relationship endpoint index.
pub const KS_REL_FROM: Keyspace = Keyspace(3);
/// Incoming relationship endpoint index.
pub const KS_REL_TO: Keyspace = Keyspace(4);
/// Classification membership (classification -> edge).
pub const KS_CLS_EDGES: Keyspace = Keyspace(5);
/// Reverse classification membership (edge -> classification).
pub const KS_EDGE_CLS: Keyspace = Keyspace(6);

/// Reserved meta keys.
pub const META_SCHEMA: &[u8] = b"schema";
pub const META_SYNONYMS: &[u8] = b"synonyms";
pub const META_VIEWS: &[u8] = b"views";

/// The shard-routing table matching this module's key encodings, for
/// [`prometheus_storage::ShardedStore::open_with`].
///
/// * Meta state (schema, synonyms, views) is global → shard 0.
/// * Extent and attribute keys end in the member's OID → route with the
///   record, so creating an object writes exactly one shard.
/// * Endpoint/adjacency and classification-membership keys lead with the
///   subject's OID → route with the *subject*, so "edges of X" scans one
///   shard, and creating a relationship co-locates the edge record with its
///   from-adjacency entry (the edge's OID is allocated on the same shard).
/// * History entries (keyspace 7, see `crate::history`) lead with the
///   subject OID → route with the subject.
pub fn shard_routing() -> ShardRouting {
    ShardRouting::with_rules(&[
        (KS_META.0, RouteRule::ShardZero),
        (KS_EXTENT.0, RouteRule::TrailingOid),
        (KS_ATTR.0, RouteRule::TrailingOid),
        (KS_REL_FROM.0, RouteRule::LeadingOid),
        (KS_REL_TO.0, RouteRule::LeadingOid),
        (KS_CLS_EDGES.0, RouteRule::LeadingOid),
        (KS_EDGE_CLS.0, RouteRule::LeadingOid),
        (crate::history::KS_HISTORY.0, RouteRule::LeadingOid),
    ])
}

const SEP: u8 = 0x00;

fn push_name(key: &mut Vec<u8>, name: &str) {
    key.extend_from_slice(name.as_bytes());
    key.push(SEP);
}

/// `class · oid` — one entry per extent member.
pub fn extent_key(class: &str, oid: Oid) -> Vec<u8> {
    let mut key = Vec::with_capacity(class.len() + 9);
    push_name(&mut key, class);
    key.extend_from_slice(&oid.to_be_bytes());
    key
}

/// Prefix selecting the whole extent of `class` (exact class, no subclasses).
pub fn extent_prefix(class: &str) -> Vec<u8> {
    let mut key = Vec::with_capacity(class.len() + 1);
    push_name(&mut key, class);
    key
}

/// `class · attr · encoded value · oid` — one entry per indexed attribute
/// value.
pub fn attr_key(class: &str, attr: &str, value: &Value, oid: Oid) -> Vec<u8> {
    let mut key = Vec::new();
    push_name(&mut key, class);
    push_name(&mut key, attr);
    value.encode_ordered(&mut key);
    key.extend_from_slice(&oid.to_be_bytes());
    key
}

/// Prefix selecting all index entries of `class.attr` with exactly `value`.
pub fn attr_value_prefix(class: &str, attr: &str, value: &Value) -> Vec<u8> {
    let mut key = Vec::new();
    push_name(&mut key, class);
    push_name(&mut key, attr);
    value.encode_ordered(&mut key);
    key
}

/// Prefix selecting all index entries of `class.attr` (for range scans; pair
/// with [`attr_value_prefix`] bounds).
pub fn attr_prefix(class: &str, attr: &str) -> Vec<u8> {
    let mut key = Vec::new();
    push_name(&mut key, class);
    push_name(&mut key, attr);
    key
}

/// In-place variants for hot scan loops: a caller probing many classes (deep
/// extents, polymorphic adjacency) clears and refills one buffer instead of
/// allocating a fresh `Vec<u8>` per probe.
pub mod build {
    use super::*;

    /// Fill `key` with the extent prefix of `class`.
    pub fn extent_prefix(key: &mut Vec<u8>, class: &str) {
        key.clear();
        push_name(key, class);
    }

    /// Encode `value` once for use with [`attr_value_prefix`]; scanning N
    /// subclasses then reuses the encoding instead of re-encoding per class.
    pub fn encode_value(value: &Value) -> Vec<u8> {
        let mut enc = Vec::new();
        value.encode_ordered(&mut enc);
        enc
    }

    /// Fill `key` with `class · attr · encoded`, where `encoded` came from
    /// [`encode_value`].
    pub fn attr_value_prefix(key: &mut Vec<u8>, class: &str, attr: &str, encoded: &[u8]) {
        key.clear();
        push_name(key, class);
        push_name(key, attr);
        key.extend_from_slice(encoded);
    }

    /// Fill `key` with the adjacency prefix `endpoint · rel_class`.
    pub fn endpoint_class_prefix(key: &mut Vec<u8>, endpoint: Oid, rel_class: &str) {
        key.clear();
        key.extend_from_slice(&endpoint.to_be_bytes());
        push_name(key, rel_class);
    }
}

/// Extract the trailing OID from an index key.
pub fn oid_suffix(key: &[u8]) -> Option<Oid> {
    if key.len() < 8 {
        return None;
    }
    let tail: [u8; 8] = key[key.len() - 8..].try_into().ok()?;
    Some(Oid::from_be_bytes(tail))
}

/// `endpoint · relclass · rel` — adjacency entry. The stored value is the
/// opposite endpoint's OID so traversals avoid a record fetch.
pub fn endpoint_key(endpoint: Oid, rel_class: &str, rel: Oid) -> Vec<u8> {
    let mut key = Vec::with_capacity(rel_class.len() + 18);
    key.extend_from_slice(&endpoint.to_be_bytes());
    push_name(&mut key, rel_class);
    key.extend_from_slice(&rel.to_be_bytes());
    key
}

/// Prefix selecting every adjacency entry of `endpoint`.
pub fn endpoint_prefix(endpoint: Oid) -> Vec<u8> {
    endpoint.to_be_bytes().to_vec()
}

/// Prefix selecting `endpoint`'s adjacency entries via `rel_class` only.
pub fn endpoint_class_prefix(endpoint: Oid, rel_class: &str) -> Vec<u8> {
    let mut key = Vec::with_capacity(rel_class.len() + 9);
    key.extend_from_slice(&endpoint.to_be_bytes());
    push_name(&mut key, rel_class);
    key
}

/// Decode the relationship-class name and rel OID out of an adjacency key.
pub fn decode_endpoint_key(key: &[u8]) -> Option<(String, Oid)> {
    if key.len() < 17 {
        return None;
    }
    let name_part = &key[8..key.len() - 8];
    let name_end = name_part.iter().position(|&b| b == SEP)?;
    let class = std::str::from_utf8(&name_part[..name_end])
        .ok()?
        .to_string();
    let rel = oid_suffix(key)?;
    Some((class, rel))
}

/// `classification · rel` — membership entry; value is empty.
pub fn cls_edge_key(classification: Oid, rel: Oid) -> Vec<u8> {
    let mut key = Vec::with_capacity(16);
    key.extend_from_slice(&classification.to_be_bytes());
    key.extend_from_slice(&rel.to_be_bytes());
    key
}

/// Prefix selecting all edges of a classification.
pub fn cls_prefix(classification: Oid) -> Vec<u8> {
    classification.to_be_bytes().to_vec()
}

/// `rel · classification` — reverse membership entry.
pub fn edge_cls_key(rel: Oid, classification: Oid) -> Vec<u8> {
    let mut key = Vec::with_capacity(16);
    key.extend_from_slice(&rel.to_be_bytes());
    key.extend_from_slice(&classification.to_be_bytes());
    key
}

/// Prefix selecting all classifications an edge belongs to.
pub fn edge_prefix(rel: Oid) -> Vec<u8> {
    rel.to_be_bytes().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extent_keys_group_by_class() {
        let a = extent_key("CT", Oid::from_raw(1));
        let b = extent_key("CT", Oid::from_raw(2));
        let c = extent_key("NT", Oid::from_raw(1));
        assert!(a.starts_with(&extent_prefix("CT")));
        assert!(b.starts_with(&extent_prefix("CT")));
        assert!(!c.starts_with(&extent_prefix("CT")));
        assert_eq!(oid_suffix(&a), Some(Oid::from_raw(1)));
    }

    #[test]
    fn class_prefix_does_not_capture_longer_names() {
        // "CT" must not match members of class "CTX".
        let other = extent_key("CTX", Oid::from_raw(1));
        assert!(!other.starts_with(&extent_prefix("CT")));
    }

    #[test]
    fn attr_keys_sort_by_value() {
        let k1 = attr_key("NT", "year", &Value::Int(1753), Oid::from_raw(5));
        let k2 = attr_key("NT", "year", &Value::Int(1824), Oid::from_raw(1));
        assert!(k1 < k2);
        assert!(k1.starts_with(&attr_prefix("NT", "year")));
        assert!(k1.starts_with(&attr_value_prefix("NT", "year", &Value::Int(1753))));
        assert!(!k1.starts_with(&attr_value_prefix("NT", "year", &Value::Int(1824))));
    }

    #[test]
    fn endpoint_keys_decode() {
        let key = endpoint_key(Oid::from_raw(10), "Circumscribes", Oid::from_raw(77));
        assert!(key.starts_with(&endpoint_prefix(Oid::from_raw(10))));
        assert!(key.starts_with(&endpoint_class_prefix(Oid::from_raw(10), "Circumscribes")));
        let (class, rel) = decode_endpoint_key(&key).unwrap();
        assert_eq!(class, "Circumscribes");
        assert_eq!(rel, Oid::from_raw(77));
    }

    #[test]
    fn endpoint_class_prefix_is_exact() {
        let key = endpoint_key(Oid::from_raw(10), "HasTypeX", Oid::from_raw(1));
        assert!(!key.starts_with(&endpoint_class_prefix(Oid::from_raw(10), "HasType")));
    }

    #[test]
    fn build_variants_match_allocating_forms() {
        let mut buf = Vec::new();
        build::extent_prefix(&mut buf, "CT");
        assert_eq!(buf, extent_prefix("CT"));
        let v = Value::Int(1753);
        let enc = build::encode_value(&v);
        build::attr_value_prefix(&mut buf, "NT", "year", &enc);
        assert_eq!(buf, attr_value_prefix("NT", "year", &v));
        build::endpoint_class_prefix(&mut buf, Oid::from_raw(10), "Circumscribes");
        assert_eq!(
            buf,
            endpoint_class_prefix(Oid::from_raw(10), "Circumscribes")
        );
    }

    #[test]
    fn classification_keys() {
        let k = cls_edge_key(Oid::from_raw(3), Oid::from_raw(9));
        assert!(k.starts_with(&cls_prefix(Oid::from_raw(3))));
        assert_eq!(oid_suffix(&k), Some(Oid::from_raw(9)));
        let r = edge_cls_key(Oid::from_raw(9), Oid::from_raw(3));
        assert!(r.starts_with(&edge_prefix(Oid::from_raw(9))));
        assert_eq!(oid_suffix(&r), Some(Oid::from_raw(3)));
    }
}
