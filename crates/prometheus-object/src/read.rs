//! The snapshot read path: [`Reader`] and [`ReadView`].
//!
//! Every read operation of the object layer — entity fetches, extent and
//! attribute-index lookups, relationship adjacency, classification
//! membership, synonym resolution — is expressed once, here, as a default
//! method of the [`Reader`] trait over a small required surface (raw record
//! and index access plus schema/synonym access). Two implementations exist:
//!
//! * [`Database`] reads its **working image** (behind the store mutex and
//!   the object cache), so code running inside a unit of work sees its own
//!   uncommitted operations;
//! * [`ReadView`] reads a **pinned immutable snapshot**
//!   ([`prometheus_storage::ShardSnapshot`], one pinned image per shard) plus the schema registry and synonym
//!   table current at pin time. A `ReadView` never takes the store mutex or
//!   any cache lock, so any number of views proceed in parallel with the
//!   writer, and a whole query — including recursive traversals and graph
//!   extraction — executes against one consistent committed state:
//!   unit-of-work atomicity holds by construction, because the store only
//!   publishes images at commit points and settled units.
//!
//! The query evaluator, traversals, classification structure queries and
//! views are generic over `Reader`, so the same code serves both paths.

use crate::database::{Database, CLASSIFICATION_EXTENT};
use crate::error::{DbError, DbResult};
use crate::index::{self, KS_ATTR, KS_CLS_EDGES, KS_EDGE_CLS, KS_EXTENT, KS_REL_FROM, KS_REL_TO};
use crate::instance::{ClassificationMeta, ObjectInstance, RelInstance, StoredEntity};
use crate::schema::SchemaRegistry;
use crate::synonym::SynonymTable;
use crate::value::Value;
use prometheus_storage::{codec, Bytes, Keyspace, Oid, ShardSnapshot};
use std::sync::Arc;

/// Read access to a (possibly pinned) database state.
///
/// Implementors provide raw record and index access plus schema/synonym
/// access; everything else is derived. The generic closure methods make the
/// trait non-object-safe by design — callers monomorphise.
///
/// `Send + Sync` is part of the contract: the morsel-parallel executor
/// shares one reader across `std::thread::scope` workers. Both existing
/// implementors already satisfy it — [`ReadView`] is an immutable pinned
/// snapshot, and [`Database`] guards its mutable state internally.
pub trait Reader: Sized + Send + Sync {
    /// Fetch and decode the entity stored under `oid`.
    fn entity(&self, oid: Oid) -> DbResult<StoredEntity>;

    /// Point lookup in an index keyspace. The returned value is a shared
    /// handle into the underlying image, not a copy.
    fn raw_kv_get(&self, ks: Keyspace, key: &[u8]) -> Option<Bytes>;

    /// Ordered prefix scan over an index keyspace; keys and values are
    /// shared handles into the image.
    fn raw_kv_scan_prefix(&self, ks: Keyspace, prefix: &[u8]) -> Vec<(Bytes, Bytes)>;

    /// Ordered range scan `lo <= key < hi` over an index keyspace.
    fn raw_kv_scan_range(&self, ks: Keyspace, lo: &[u8], hi: &[u8]) -> Vec<(Bytes, Bytes)>;

    /// Stream every entry under `prefix` in key order, without materialising
    /// an intermediate vector. Implementations drive this straight off the
    /// storage image's range cursor; the default falls back to the
    /// materialising scan for exotic readers.
    fn raw_kv_for_each_prefix(&self, ks: Keyspace, prefix: &[u8], mut f: impl FnMut(&[u8], &[u8])) {
        for (k, v) in self.raw_kv_scan_prefix(ks, prefix) {
            f(&k, &v);
        }
    }

    /// Stream every entry with `lo <= key < hi` in key order.
    fn raw_kv_for_each_range(
        &self,
        ks: Keyspace,
        lo: &[u8],
        hi: &[u8],
        mut f: impl FnMut(&[u8], &[u8]),
    ) {
        for (k, v) in self.raw_kv_scan_range(ks, lo, hi) {
            f(&k, &v);
        }
    }

    /// Run `f` with read access to the schema registry.
    fn with_schema<T>(&self, f: impl FnOnce(&SchemaRegistry) -> T) -> T;

    /// Run `f` with read access to the synonym table.
    fn with_synonyms<T>(&self, f: impl FnOnce(&SynonymTable) -> T) -> T;

    // -----------------------------------------------------------------
    // Entity access
    // -----------------------------------------------------------------

    /// Fetch an object instance.
    fn object(&self, oid: Oid) -> DbResult<ObjectInstance> {
        match self.entity(oid)? {
            StoredEntity::Object(o) => Ok(o),
            _ => Err(DbError::NotFound(oid)),
        }
    }

    /// Fetch a relationship instance.
    fn rel(&self, oid: Oid) -> DbResult<RelInstance> {
        match self.entity(oid)? {
            StoredEntity::Rel(r) => Ok(r),
            _ => Err(DbError::NotFound(oid)),
        }
    }

    /// Fetch classification metadata.
    fn classification_meta(&self, oid: Oid) -> DbResult<ClassificationMeta> {
        match self.entity(oid)? {
            StoredEntity::Classification(c) => Ok(c),
            _ => Err(DbError::NotFound(oid)),
        }
    }

    /// Whether any entity with this OID exists.
    fn exists(&self, oid: Oid) -> bool {
        self.entity(oid).is_ok()
    }

    /// Most-specific class of the entity (`"__classification"` for
    /// classification metadata).
    fn class_of(&self, oid: Oid) -> DbResult<String> {
        Ok(match self.entity(oid)? {
            StoredEntity::Object(o) => o.class,
            StoredEntity::Rel(r) => r.class,
            StoredEntity::Classification(_) => CLASSIFICATION_EXTENT.to_string(),
        })
    }

    // -----------------------------------------------------------------
    // Relationship adjacency
    // -----------------------------------------------------------------

    /// All relationship instances leaving `oid`, optionally restricted to one
    /// relationship class (exact; use [`Reader::rels_from_including_subs`]
    /// for polymorphic queries).
    fn rels_from(&self, oid: Oid, class: Option<&str>) -> DbResult<Vec<RelInstance>> {
        let prefix = match class {
            Some(c) => index::endpoint_class_prefix(oid, c),
            None => index::endpoint_prefix(oid),
        };
        load_rels(self, KS_REL_FROM, &prefix)
    }

    /// All relationship instances arriving at `oid`, optionally restricted to
    /// one relationship class (exact).
    fn rels_to(&self, oid: Oid, class: Option<&str>) -> DbResult<Vec<RelInstance>> {
        let prefix = match class {
            Some(c) => index::endpoint_class_prefix(oid, c),
            None => index::endpoint_prefix(oid),
        };
        load_rels(self, KS_REL_TO, &prefix)
    }

    /// Outgoing edges of `oid` via `class` or any of its subclasses.
    fn rels_from_including_subs(&self, oid: Oid, class: &str) -> DbResult<Vec<RelInstance>> {
        let classes = self.with_schema(|s| s.with_subclasses(class));
        let mut out = Vec::new();
        let mut prefix = Vec::new();
        for c in classes {
            index::build::endpoint_class_prefix(&mut prefix, oid, &c);
            out.extend(load_rels(self, KS_REL_FROM, &prefix)?);
        }
        Ok(out)
    }

    /// Incoming edges of `oid` via `class` or any of its subclasses.
    fn rels_to_including_subs(&self, oid: Oid, class: &str) -> DbResult<Vec<RelInstance>> {
        let classes = self.with_schema(|s| s.with_subclasses(class));
        let mut out = Vec::new();
        let mut prefix = Vec::new();
        for c in classes {
            index::build::endpoint_class_prefix(&mut prefix, oid, &c);
            out.extend(load_rels(self, KS_REL_TO, &prefix)?);
        }
        Ok(out)
    }

    /// Record-free adjacency (the §6.1.5.2 indexing fast path): the edges
    /// incident to `oid` as `(relationship oid, opposite endpoint)` pairs,
    /// straight from the endpoint index — no relationship records are
    /// fetched or decoded. `outgoing` selects the direction.
    fn adjacency(
        &self,
        oid: Oid,
        class: Option<&str>,
        outgoing: bool,
    ) -> DbResult<Vec<(Oid, Oid)>> {
        let ks = if outgoing { KS_REL_FROM } else { KS_REL_TO };
        let prefix = match class {
            Some(c) => index::endpoint_class_prefix(oid, c),
            None => index::endpoint_prefix(oid),
        };
        let mut out = Vec::new();
        self.raw_kv_for_each_prefix(ks, &prefix, |key, value| {
            if let (Some(rel_oid), Ok(bytes)) = (index::oid_suffix(key), <[u8; 8]>::try_from(value))
            {
                out.push((rel_oid, Oid::from_be_bytes(bytes)));
            }
        });
        Ok(out)
    }

    /// [`Reader::adjacency`] for a batch of nodes over a fixed set of
    /// relationship classes, sharing one prefix buffer across all probes.
    /// Returns one adjacency list per input node, in input order — the
    /// frontier-parallel traversal expands whole morsels of a BFS level
    /// through this. `classes` must already be subclass-expanded.
    fn adjacency_batch(
        &self,
        oids: &[Oid],
        classes: &[String],
        outgoing: bool,
    ) -> DbResult<Vec<Vec<(Oid, Oid)>>> {
        let ks = if outgoing { KS_REL_FROM } else { KS_REL_TO };
        let mut prefix = Vec::new();
        let mut out = Vec::with_capacity(oids.len());
        for &oid in oids {
            let mut adj = Vec::new();
            for class in classes {
                index::build::endpoint_class_prefix(&mut prefix, oid, class);
                self.raw_kv_for_each_prefix(ks, &prefix, |key, value| {
                    if let (Some(rel_oid), Ok(bytes)) =
                        (index::oid_suffix(key), <[u8; 8]>::try_from(value))
                    {
                        adj.push((rel_oid, Oid::from_be_bytes(bytes)));
                    }
                });
            }
            out.push(adj);
        }
        Ok(out)
    }

    // -----------------------------------------------------------------
    // Extents and attribute queries
    // -----------------------------------------------------------------

    /// OIDs in the extent of `class`; with `include_subclasses`, the deep
    /// extent (ODMG `extent` semantics).
    fn extent(&self, class: &str, include_subclasses: bool) -> DbResult<Vec<Oid>> {
        let classes = if include_subclasses {
            self.with_schema(|s| s.with_subclasses(class))
        } else {
            vec![class.to_string()]
        };
        let mut out = Vec::new();
        let mut prefix = Vec::new();
        for c in classes {
            index::build::extent_prefix(&mut prefix, &c);
            self.raw_kv_for_each_prefix(KS_EXTENT, &prefix, |key, _| {
                if let Some(oid) = index::oid_suffix(key) {
                    out.push(oid);
                }
            });
        }
        Ok(out)
    }

    /// Exact-match lookup over an indexed attribute (deep extent). The value
    /// is encoded once and the key prefix buffer reused across subclasses.
    fn find_by_attr(&self, class: &str, attr: &str, value: &Value) -> DbResult<Vec<Oid>> {
        let classes = self.with_schema(|s| s.with_subclasses(class));
        let encoded = index::build::encode_value(value);
        let mut out = Vec::new();
        let mut prefix = Vec::new();
        for c in classes {
            index::build::attr_value_prefix(&mut prefix, &c, attr, &encoded);
            self.raw_kv_for_each_prefix(KS_ATTR, &prefix, |key, _| {
                if let Some(oid) = index::oid_suffix(key) {
                    out.push(oid);
                }
            });
        }
        Ok(out)
    }

    /// Range lookup `lo <= value < hi` over an indexed attribute.
    fn find_by_attr_range(
        &self,
        class: &str,
        attr: &str,
        lo: &Value,
        hi: &Value,
    ) -> DbResult<Vec<Oid>> {
        let classes = self.with_schema(|s| s.with_subclasses(class));
        let enc_lo = index::build::encode_value(lo);
        let enc_hi = index::build::encode_value(hi);
        let mut out = Vec::new();
        let (mut lo_key, mut hi_key) = (Vec::new(), Vec::new());
        for c in classes {
            index::build::attr_value_prefix(&mut lo_key, &c, attr, &enc_lo);
            index::build::attr_value_prefix(&mut hi_key, &c, attr, &enc_hi);
            self.raw_kv_for_each_range(KS_ATTR, &lo_key, &hi_key, |key, _| {
                if let Some(oid) = index::oid_suffix(key) {
                    out.push(oid);
                }
            });
        }
        Ok(out)
    }

    /// Attribute lookup with relationship attribute inheritance (§4.4.5).
    ///
    /// Resolution order: the object's own attribute; the class default; then
    /// values inherited from incoming relationship instances whose class
    /// declares `attr` inheritable. Distinct inherited values are ambiguous.
    fn attr_of(&self, oid: Oid, attr: &str) -> DbResult<Value> {
        let obj = self.object(oid)?;
        if let Some(v) = obj.attrs.get(attr) {
            if *v != Value::Null {
                return Ok(v.clone());
            }
        }
        let default = self.with_schema(|schema| {
            schema.all_attrs(&obj.class).ok().and_then(|declared| {
                declared
                    .iter()
                    .find(|a| a.name == attr)
                    .and_then(|def| def.default.clone())
            })
        });
        if let Some(default) = default {
            if !obj.attrs.contains_key(attr) {
                return Ok(default);
            }
        }
        // Inherited from incoming relationships.
        let incoming = self.rels_to(oid, None)?;
        let mut inherited = self.with_schema(|schema| {
            let mut inherited: Vec<Value> = Vec::new();
            for rel in &incoming {
                if let Some(def) = schema.rel_class(&rel.class) {
                    if def.inheritable_attrs.iter().any(|a| a == attr) {
                        let v = rel.attr(attr);
                        if v != Value::Null && !inherited.contains(&v) {
                            inherited.push(v);
                        }
                    }
                }
            }
            inherited
        });
        match inherited.len() {
            0 => Ok(Value::Null),
            1 => Ok(inherited.pop().unwrap()),
            _ => Err(DbError::AmbiguousInheritedAttr {
                oid,
                attr: attr.to_string(),
            }),
        }
    }

    // -----------------------------------------------------------------
    // Instance synonyms (§4.5)
    // -----------------------------------------------------------------

    /// Whether two instances are declared synonymous.
    fn same_instance(&self, a: Oid, b: Oid) -> bool {
        self.with_synonyms(|s| s.same(a, b))
    }

    /// All members of `oid`'s synonym set (including itself).
    fn synonym_set(&self, oid: Oid) -> Vec<Oid> {
        self.with_synonyms(|s| s.set_of(oid).into_iter().collect())
    }

    /// Canonical representative of `oid`'s synonym set.
    fn synonym_representative(&self, oid: Oid) -> Oid {
        self.with_synonyms(|s| s.find(oid))
    }

    // -----------------------------------------------------------------
    // Classifications (§4.6)
    // -----------------------------------------------------------------

    /// All classification OIDs.
    fn classifications(&self) -> DbResult<Vec<Oid>> {
        let prefix = index::extent_prefix(CLASSIFICATION_EXTENT);
        let mut out = Vec::new();
        self.raw_kv_for_each_prefix(KS_EXTENT, &prefix, |key, _| {
            if let Some(oid) = index::oid_suffix(key) {
                out.push(oid);
            }
        });
        Ok(out)
    }

    /// Find a classification by name.
    fn classification_by_name(&self, name: &str) -> DbResult<Option<Oid>> {
        for oid in self.classifications()? {
            if self.classification_meta(oid)?.name == name {
                return Ok(Some(oid));
            }
        }
        Ok(None)
    }

    /// All edge OIDs of a classification.
    fn classification_edges(&self, cls: Oid) -> DbResult<Vec<Oid>> {
        let mut out = Vec::new();
        self.raw_kv_for_each_prefix(KS_CLS_EDGES, &index::cls_prefix(cls), |key, _| {
            if let Some(oid) = index::oid_suffix(key) {
                out.push(oid);
            }
        });
        Ok(out)
    }

    /// All classifications an edge belongs to.
    fn classifications_of_edge(&self, rel_oid: Oid) -> DbResult<Vec<Oid>> {
        let mut out = Vec::new();
        self.raw_kv_for_each_prefix(KS_EDGE_CLS, &index::edge_prefix(rel_oid), |key, _| {
            if let Some(oid) = index::oid_suffix(key) {
                out.push(oid);
            }
        });
        Ok(out)
    }

    /// Edges of `cls` arriving at `node` (its parent edges there).
    fn classification_parent_edges(&self, cls: Oid, node: Oid) -> DbResult<Vec<RelInstance>> {
        let mut out = Vec::new();
        for rel in self.rels_to(node, None)? {
            if self.edge_in_classification(cls, rel.oid) {
                out.push(rel);
            }
        }
        Ok(out)
    }

    /// Edges of `cls` leaving `node` (its child edges there).
    fn classification_child_edges(&self, cls: Oid, node: Oid) -> DbResult<Vec<RelInstance>> {
        let mut out = Vec::new();
        for rel in self.rels_from(node, None)? {
            if self.edge_in_classification(cls, rel.oid) {
                out.push(rel);
            }
        }
        Ok(out)
    }

    /// Whether an edge belongs to a classification.
    fn edge_in_classification(&self, cls: Oid, rel_oid: Oid) -> bool {
        self.raw_kv_get(KS_CLS_EDGES, &index::cls_edge_key(cls, rel_oid))
            .is_some()
    }
}

fn load_rels<R: Reader>(db: &R, ks: Keyspace, prefix: &[u8]) -> DbResult<Vec<RelInstance>> {
    // Stream the index cursor first, then decode records: `Database`'s
    // streaming scan holds the store mutex, which `rel` must re-take.
    let mut rel_oids = Vec::new();
    db.raw_kv_for_each_prefix(ks, prefix, |key, _| {
        if let Some((_, rel_oid)) = index::decode_endpoint_key(key) {
            rel_oids.push(rel_oid);
        }
    });
    let mut out = Vec::with_capacity(rel_oids.len());
    for rel_oid in rel_oids {
        out.push(db.rel(rel_oid)?);
    }
    Ok(out)
}

/// [`Database`] reads resolve against the working image — inside a unit of
/// work they see the unit's own operations.
impl Reader for Database {
    fn entity(&self, oid: Oid) -> DbResult<StoredEntity> {
        self.entity_cached(oid)
    }

    fn raw_kv_get(&self, ks: Keyspace, key: &[u8]) -> Option<Bytes> {
        self.store().kv_get(ks, key)
    }

    fn raw_kv_scan_prefix(&self, ks: Keyspace, prefix: &[u8]) -> Vec<(Bytes, Bytes)> {
        self.store().kv_scan_prefix(ks, prefix)
    }

    fn raw_kv_scan_range(&self, ks: Keyspace, lo: &[u8], hi: &[u8]) -> Vec<(Bytes, Bytes)> {
        self.store().kv_scan_range(ks, lo, hi)
    }

    fn raw_kv_for_each_prefix(&self, ks: Keyspace, prefix: &[u8], f: impl FnMut(&[u8], &[u8])) {
        self.store().kv_for_each_prefix(ks, prefix, f)
    }

    fn raw_kv_for_each_range(
        &self,
        ks: Keyspace,
        lo: &[u8],
        hi: &[u8],
        f: impl FnMut(&[u8], &[u8]),
    ) {
        self.store().kv_for_each_range(ks, lo, hi, f)
    }

    fn with_schema<T>(&self, f: impl FnOnce(&SchemaRegistry) -> T) -> T {
        Database::with_schema(self, f)
    }

    fn with_synonyms<T>(&self, f: impl FnOnce(&SynonymTable) -> T) -> T {
        Database::with_synonyms(self, f)
    }
}

/// A shared reference to a reader is itself a reader, so call sites may pass
/// `&db`, `&Arc<Database>`, a borrowed [`ReadView`], … into the generic query
/// and traversal entry points without manual derefs.
impl<R: Reader> Reader for &R {
    fn entity(&self, oid: Oid) -> DbResult<StoredEntity> {
        (**self).entity(oid)
    }

    fn raw_kv_get(&self, ks: Keyspace, key: &[u8]) -> Option<Bytes> {
        (**self).raw_kv_get(ks, key)
    }

    fn raw_kv_scan_prefix(&self, ks: Keyspace, prefix: &[u8]) -> Vec<(Bytes, Bytes)> {
        (**self).raw_kv_scan_prefix(ks, prefix)
    }

    fn raw_kv_scan_range(&self, ks: Keyspace, lo: &[u8], hi: &[u8]) -> Vec<(Bytes, Bytes)> {
        (**self).raw_kv_scan_range(ks, lo, hi)
    }

    fn raw_kv_for_each_prefix(&self, ks: Keyspace, prefix: &[u8], f: impl FnMut(&[u8], &[u8])) {
        (**self).raw_kv_for_each_prefix(ks, prefix, f)
    }

    fn raw_kv_for_each_range(
        &self,
        ks: Keyspace,
        lo: &[u8],
        hi: &[u8],
        f: impl FnMut(&[u8], &[u8]),
    ) {
        (**self).raw_kv_for_each_range(ks, lo, hi, f)
    }

    fn with_schema<T>(&self, f: impl FnOnce(&SchemaRegistry) -> T) -> T {
        (**self).with_schema(f)
    }

    fn with_synonyms<T>(&self, f: impl FnOnce(&SynonymTable) -> T) -> T {
        (**self).with_synonyms(f)
    }
}

/// `Arc<Database>` (the shape most embedders hold) reads like the database
/// it wraps.
impl<R: Reader> Reader for Arc<R> {
    fn entity(&self, oid: Oid) -> DbResult<StoredEntity> {
        (**self).entity(oid)
    }

    fn raw_kv_get(&self, ks: Keyspace, key: &[u8]) -> Option<Bytes> {
        (**self).raw_kv_get(ks, key)
    }

    fn raw_kv_scan_prefix(&self, ks: Keyspace, prefix: &[u8]) -> Vec<(Bytes, Bytes)> {
        (**self).raw_kv_scan_prefix(ks, prefix)
    }

    fn raw_kv_scan_range(&self, ks: Keyspace, lo: &[u8], hi: &[u8]) -> Vec<(Bytes, Bytes)> {
        (**self).raw_kv_scan_range(ks, lo, hi)
    }

    fn raw_kv_for_each_prefix(&self, ks: Keyspace, prefix: &[u8], f: impl FnMut(&[u8], &[u8])) {
        (**self).raw_kv_for_each_prefix(ks, prefix, f)
    }

    fn raw_kv_for_each_range(
        &self,
        ks: Keyspace,
        lo: &[u8],
        hi: &[u8],
        f: impl FnMut(&[u8], &[u8]),
    ) {
        (**self).raw_kv_for_each_range(ks, lo, hi, f)
    }

    fn with_schema<T>(&self, f: impl FnOnce(&SchemaRegistry) -> T) -> T {
        (**self).with_schema(f)
    }

    fn with_synonyms<T>(&self, f: impl FnOnce(&SynonymTable) -> T) -> T {
        (**self).with_synonyms(f)
    }
}

/// An immutable, pinned view of one committed database state.
///
/// Obtained from [`Database::read_view`]. Holds a storage snapshot plus the
/// schema registry and synonym table that were current at pin time; reads
/// never take the store mutex or the object cache locks and never decode
/// through shared state, so views scale with reader parallelism. State
/// committed (or rolled back) after the pin is invisible; re-pin for fresh
/// state. Cloning is three `Arc` bumps.
#[derive(Debug, Clone)]
pub struct ReadView {
    snap: ShardSnapshot,
    schema: Arc<SchemaRegistry>,
    synonyms: Arc<SynonymTable>,
}

impl ReadView {
    pub(crate) fn new(
        snap: ShardSnapshot,
        schema: Arc<SchemaRegistry>,
        synonyms: Arc<SynonymTable>,
    ) -> ReadView {
        ReadView {
            snap,
            schema,
            synonyms,
        }
    }

    /// Whether `other` pins the same published storage image.
    pub fn same_version(&self, other: &ReadView) -> bool {
        self.snap.same_version(&other.snap)
    }

    /// Number of records in the pinned image.
    pub fn record_count(&self) -> usize {
        self.snap.record_count()
    }
}

impl Reader for ReadView {
    fn entity(&self, oid: Oid) -> DbResult<StoredEntity> {
        let bytes = self.snap.get(oid).ok_or(DbError::NotFound(oid))?;
        Ok(codec::from_bytes(&bytes)?)
    }

    fn raw_kv_get(&self, ks: Keyspace, key: &[u8]) -> Option<Bytes> {
        self.snap.kv_get(ks, key)
    }

    fn raw_kv_scan_prefix(&self, ks: Keyspace, prefix: &[u8]) -> Vec<(Bytes, Bytes)> {
        self.snap.kv_scan_prefix(ks, prefix)
    }

    fn raw_kv_scan_range(&self, ks: Keyspace, lo: &[u8], hi: &[u8]) -> Vec<(Bytes, Bytes)> {
        self.snap.kv_scan_range(ks, lo, hi)
    }

    fn raw_kv_for_each_prefix(&self, ks: Keyspace, prefix: &[u8], f: impl FnMut(&[u8], &[u8])) {
        self.snap.kv_for_each_prefix(ks, prefix, f)
    }

    fn raw_kv_for_each_range(
        &self,
        ks: Keyspace,
        lo: &[u8],
        hi: &[u8],
        f: impl FnMut(&[u8], &[u8]),
    ) {
        self.snap.kv_for_each_range(ks, lo, hi, f)
    }

    fn with_schema<T>(&self, f: impl FnOnce(&SchemaRegistry) -> T) -> T {
        f(&self.schema)
    }

    fn with_synonyms<T>(&self, f: impl FnOnce(&SynonymTable) -> T) -> T {
        f(&self.synonyms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::tests::temp_db;
    use crate::schema::{AttrDef, ClassDef, RelClassDef};
    use crate::value::Type;

    fn seeded() -> (Database, Oid, Oid) {
        let db = temp_db();
        db.define_class(
            ClassDef::new("Taxon").attr(AttrDef::required("name", Type::Str).indexed()),
        )
        .unwrap();
        db.define_relationship(RelClassDef::aggregation("Circ", "Taxon", "Taxon").sharable(true))
            .unwrap();
        let a = db
            .create_object("Taxon", vec![("name".to_string(), Value::from("Apium"))])
            .unwrap();
        let b = db
            .create_object(
                "Taxon",
                vec![("name".to_string(), Value::from("graveolens"))],
            )
            .unwrap();
        db.create_relationship("Circ", a, b, Vec::new()).unwrap();
        (db, a, b)
    }

    #[test]
    fn read_view_matches_database_when_quiescent() {
        let (db, a, b) = seeded();
        let view = db.read_view();
        assert_eq!(view.object(a).unwrap(), db.object(a).unwrap());
        assert_eq!(
            view.extent("Taxon", true).unwrap(),
            db.extent("Taxon", true).unwrap()
        );
        assert_eq!(
            view.find_by_attr("Taxon", "name", &Value::from("Apium"))
                .unwrap(),
            vec![a]
        );
        assert_eq!(
            view.rels_from(a, None).unwrap(),
            db.rels_from(a, None).unwrap()
        );
        assert_eq!(
            view.adjacency(a, None, true).unwrap(),
            db.adjacency(a, None, true).unwrap()
        );
        assert_eq!(view.class_of(b).unwrap(), "Taxon");
    }

    #[test]
    fn read_view_is_pinned_while_database_moves_on() {
        let (db, a, _b) = seeded();
        let view = db.read_view();
        let c = db
            .create_object("Taxon", vec![("name".to_string(), Value::from("later"))])
            .unwrap();
        db.set_attr(a, "name", "renamed").unwrap();
        // The pinned view still sees the pre-mutation state…
        assert!(!view.exists(c));
        assert_eq!(view.object(a).unwrap().attr("name"), Value::from("Apium"));
        assert_eq!(
            view.find_by_attr("Taxon", "name", &Value::from("Apium"))
                .unwrap(),
            vec![a]
        );
        // …while the database and a fresh view see the new one.
        assert_eq!(db.object(a).unwrap().attr("name"), Value::from("renamed"));
        let fresh = db.read_view();
        assert!(fresh.exists(c));
        assert!(!fresh.same_version(&view));
    }

    #[test]
    fn read_view_does_not_observe_an_open_unit() {
        let (db, a, _b) = seeded();
        let token = db.begin_unit();
        db.set_attr(a, "name", "speculative").unwrap();
        // Inside the unit the database reads its own write…
        assert_eq!(
            db.object(a).unwrap().attr("name"),
            Value::from("speculative")
        );
        // …but a view pinned mid-unit sees the last settled state.
        let view = db.read_view();
        assert_eq!(view.object(a).unwrap().attr("name"), Value::from("Apium"));
        db.commit_unit(token).unwrap();
        assert_eq!(
            db.read_view().object(a).unwrap().attr("name"),
            Value::from("speculative")
        );
    }
}
