//! # prometheus-object
//!
//! The Prometheus extended object-oriented model (thesis chapters 4 and 6).
//!
//! This crate implements the layers of Figure 26 that sit between the raw
//! storage substrate and the query/rule languages:
//!
//! * **object layer** — an ODMG-style meta-model ([`schema`]) of classes with
//!   typed attributes, single-rooted multiple inheritance and extents, plus
//!   dynamic instances ([`instance`]);
//! * **first-class relationships** — relationship *classes*
//!   ([`schema::RelClassDef`]) carrying the built-in semantic attributes of
//!   §4.4 (aggregation/association kind, exclusivity, sharability, lifetime
//!   dependency, constancy, attribute inheritance, cardinality, direction)
//!   and relationship *instances* that are ordinary objects with an origin
//!   and a destination;
//! * **classifications** ([`classification`]) — named, overlapping sets of
//!   relationship instances orthogonal to the classified objects (§4.6),
//!   with graph traversal and comparison operations;
//! * **instance synonyms** ([`synonym`]) — the §4.5 mechanism declaring that
//!   two OIDs denote the same real-world instance;
//! * **event layer** ([`events`]) — every mutation raises typed events that
//!   pre-listeners may veto and post-listeners may react to; the rule engine
//!   in `prometheus-rules` plugs in here;
//! * **index layer** ([`index`]) — extent, attribute and relationship-
//!   endpoint indexes over the store's ordered keyspaces;
//! * **views layer** ([`views`]) — named class/classification-scoped subsets
//!   of the database;
//! * **units of work** — [`Database::begin_unit`] groups operations with an
//!   undo journal, giving logical atomicity, deferred-rule scheduling and
//!   the *what-if* workflows of §7.1.4;
//! * **snapshot read path** ([`read`]) — the [`Reader`] trait defines every
//!   read operation once; [`ReadView`] pins an immutable storage snapshot so
//!   whole queries run lock-free against one consistent committed state.

pub mod classification;
pub mod database;
pub mod error;
pub mod events;
pub mod history;
pub mod index;
pub mod instance;
pub mod morsel;
pub mod read;
pub mod schema;
pub mod synonym;
pub mod traversal;
pub mod value;
pub mod views;

pub use classification::{Classification, ClassificationCompare};
pub use database::{Database, UnitToken};
pub use error::{DbError, DbResult};
pub use events::{Event, EventListener};
pub use history::{history_of, HistoryEntry, HistoryRecorder};
pub use index::shard_routing;
pub use instance::{ObjectInstance, RelInstance};
pub use prometheus_storage::{Oid, ShardRouting, ShardedStore, Store, StoreOptions};
pub use read::{ReadView, Reader};
pub use schema::{AttrDef, Cardinality, ClassDef, RelClassDef, RelKind, SchemaRegistry};
pub use traversal::{Direction, SynonymMode, TraversalSpec};
pub use value::{Date, Type, Value};
pub use views::View;
