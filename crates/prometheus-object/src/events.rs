//! The event layer (thesis §6.1.1, Figure 27).
//!
//! Every structural mutation of the database raises an [`Event`]. Listeners
//! — in practice the rule engine of `prometheus-rules` — see each event
//! twice:
//!
//! * **before** the mutation is applied, where returning an error *vetoes*
//!   the operation (pre-condition rules, §5.2.1.4.2);
//! * **after** it is applied, where an error aborts the enclosing unit of
//!   work (immediate invariants and post-conditions).
//!
//! At unit commit, [`EventListener::at_commit`] runs once, which is where
//! deferred rules are evaluated (§5.2.2.1).

use crate::database::Database;
use crate::error::DbResult;
use crate::value::Value;
use prometheus_storage::Oid;

/// A structural mutation of the database.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// An object of `class` is being / has been created.
    ObjectCreated { oid: Oid, class: String },
    /// Attribute `attr` of an object changes from `old` to `new`.
    ObjectUpdated {
        oid: Oid,
        class: String,
        attr: String,
        old: Value,
        new: Value,
    },
    /// An object is being / has been deleted.
    ObjectDeleted { oid: Oid, class: String },
    /// A relationship instance is being / has been created.
    RelCreated {
        oid: Oid,
        class: String,
        origin: Oid,
        destination: Oid,
    },
    /// An attribute of a relationship instance changes.
    RelUpdated {
        oid: Oid,
        class: String,
        attr: String,
        old: Value,
        new: Value,
    },
    /// A relationship instance is being / has been deleted.
    RelDeleted {
        oid: Oid,
        class: String,
        origin: Oid,
        destination: Oid,
    },
    /// An edge joined a classification.
    ClassificationEdgeAdded { classification: Oid, rel: Oid },
    /// An edge left a classification.
    ClassificationEdgeRemoved { classification: Oid, rel: Oid },
}

impl Event {
    /// The class name the event concerns, if any.
    pub fn class(&self) -> Option<&str> {
        match self {
            Event::ObjectCreated { class, .. }
            | Event::ObjectUpdated { class, .. }
            | Event::ObjectDeleted { class, .. }
            | Event::RelCreated { class, .. }
            | Event::RelUpdated { class, .. }
            | Event::RelDeleted { class, .. } => Some(class),
            _ => None,
        }
    }

    /// Primary OID the event concerns.
    pub fn subject(&self) -> Oid {
        match self {
            Event::ObjectCreated { oid, .. }
            | Event::ObjectUpdated { oid, .. }
            | Event::ObjectDeleted { oid, .. }
            | Event::RelCreated { oid, .. }
            | Event::RelUpdated { oid, .. }
            | Event::RelDeleted { oid, .. } => *oid,
            Event::ClassificationEdgeAdded { rel, .. }
            | Event::ClassificationEdgeRemoved { rel, .. } => *rel,
        }
    }
}

/// A subscriber to database events. The rule engine implements this.
///
/// Listener callbacks receive the database itself so that rule conditions and
/// actions can query and mutate it; the database takes care not to hold
/// internal locks across these calls.
pub trait EventListener: Send + Sync {
    /// Called before the mutation is applied. Returning an error vetoes it.
    fn before(&self, _db: &Database, _event: &Event) -> DbResult<()> {
        Ok(())
    }

    /// Called after the mutation is applied. Returning an error aborts the
    /// enclosing unit of work.
    fn after(&self, _db: &Database, _event: &Event) -> DbResult<()> {
        Ok(())
    }

    /// Called when a unit of work commits, with every event it produced.
    /// Returning an error rolls the unit back (deferred constraints).
    fn at_commit(&self, _db: &Database, _events: &[Event]) -> DbResult<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_accessors() {
        let e = Event::ObjectCreated {
            oid: Oid::from_raw(4),
            class: "CT".into(),
        };
        assert_eq!(e.class(), Some("CT"));
        assert_eq!(e.subject(), Oid::from_raw(4));

        let e = Event::ClassificationEdgeAdded {
            classification: Oid::from_raw(1),
            rel: Oid::from_raw(2),
        };
        assert_eq!(e.class(), None);
        assert_eq!(e.subject(), Oid::from_raw(2));
    }
}
