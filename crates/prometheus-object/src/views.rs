//! The views layer (thesis §6.1.3, Figure 29).
//!
//! A view is a named, persistent scoping of the database: a set of classes
//! (deep extents) intersected with a set of classifications. The thesis uses
//! views to present a taxonomist with "one classification at a time" out of
//! the overlapping whole — the objects stay shared, the view only filters.

use crate::database::Database;
use crate::error::{DbError, DbResult};
use crate::index::{KS_META, META_VIEWS};
use crate::read::Reader;
use prometheus_storage::{codec, Oid};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A named subset of the database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct View {
    pub name: String,
    /// Classes whose deep extents are visible; empty = all classes.
    pub classes: Vec<String>,
    /// Classifications whose participants are visible; empty = no
    /// classification filter.
    pub classifications: Vec<Oid>,
}

impl View {
    /// Define a view.
    pub fn new(name: impl Into<String>) -> Self {
        View {
            name: name.into(),
            classes: Vec::new(),
            classifications: Vec::new(),
        }
    }

    /// Restrict to a class (deep extent).
    pub fn class(mut self, class: impl Into<String>) -> Self {
        self.classes.push(class.into());
        self
    }

    /// Restrict to participants of a classification.
    pub fn classification(mut self, cls: Oid) -> Self {
        self.classifications.push(cls);
        self
    }

    /// The OIDs visible through this view.
    ///
    /// With both filters present the result is the intersection: members of
    /// the listed classes that participate in at least one of the listed
    /// classifications. Generic over [`Reader`], so a view can be evaluated
    /// against a pinned snapshot.
    pub fn members<R: Reader>(&self, db: &R) -> DbResult<BTreeSet<Oid>> {
        let class_members: Option<BTreeSet<Oid>> = if self.classes.is_empty() {
            None
        } else {
            let mut out = BTreeSet::new();
            for class in &self.classes {
                out.extend(db.extent(class, true)?);
            }
            Some(out)
        };
        let cls_members: Option<BTreeSet<Oid>> = if self.classifications.is_empty() {
            None
        } else {
            let mut out = BTreeSet::new();
            for cls in &self.classifications {
                let handle = crate::classification::Classification::from_oid(*cls);
                out.extend(handle.nodes(db)?);
            }
            Some(out)
        };
        Ok(match (class_members, cls_members) {
            (Some(a), Some(b)) => a.intersection(&b).copied().collect(),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => db
                .with_schema(|s| s.class_names().map(String::from).collect::<Vec<_>>())
                .iter()
                .flat_map(|c| db.extent(c, false).unwrap_or_default())
                .collect(),
        })
    }

    /// Persist this view definition.
    pub fn save(&self, db: &Database) -> DbResult<()> {
        let mut all = load_views(db)?;
        all.insert(self.name.clone(), self.clone());
        save_views(db, &all)
    }

    /// Load a view by name.
    pub fn load<R: Reader>(db: &R, name: &str) -> DbResult<View> {
        load_views(db)?
            .remove(name)
            .ok_or_else(|| DbError::Schema(format!("no view named '{name}'")))
    }

    /// Delete a persisted view definition.
    pub fn delete(db: &Database, name: &str) -> DbResult<bool> {
        let mut all = load_views(db)?;
        let existed = all.remove(name).is_some();
        if existed {
            save_views(db, &all)?;
        }
        Ok(existed)
    }

    /// Names of all persisted views.
    pub fn names<R: Reader>(db: &R) -> DbResult<Vec<String>> {
        Ok(load_views(db)?.into_keys().collect())
    }
}

fn load_views<R: Reader>(db: &R) -> DbResult<BTreeMap<String, View>> {
    match db.raw_kv_get(KS_META, META_VIEWS) {
        Some(bytes) => Ok(codec::from_bytes(&bytes)?),
        None => Ok(BTreeMap::new()),
    }
}

fn save_views(db: &Database, all: &BTreeMap<String, View>) -> DbResult<()> {
    let bytes = codec::to_bytes(all)?;
    db.store().with_txn(|t| {
        t.kv_put(KS_META, META_VIEWS.to_vec(), bytes.clone());
        Ok(())
    })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classification::Classification;
    use crate::database::tests::temp_db;
    use crate::schema::{AttrDef, ClassDef, RelClassDef};
    use crate::value::{Type, Value};

    #[test]
    fn class_and_classification_filters_intersect() {
        let db = temp_db();
        db.define_class(ClassDef::new("Taxon").attr(AttrDef::required("name", Type::Str)))
            .unwrap();
        db.define_class(ClassDef::new("Specimen").attr(AttrDef::required("code", Type::Str)))
            .unwrap();
        db.define_relationship(RelClassDef::association("R", "Object", "Object"))
            .unwrap();
        let t1 = db
            .create_object("Taxon", vec![("name".to_string(), Value::from("a"))])
            .unwrap();
        let t2 = db
            .create_object("Taxon", vec![("name".to_string(), Value::from("b"))])
            .unwrap();
        let s = db
            .create_object("Specimen", vec![("code".to_string(), Value::from("s"))])
            .unwrap();
        let cls = Classification::create(&db, "C", Vec::new(), true).unwrap();
        cls.link(&db, "R", t1, s, Vec::new()).unwrap();

        // Class filter only.
        let v = View::new("taxa").class("Taxon");
        let members = v.members(&db).unwrap();
        assert!(members.contains(&t1) && members.contains(&t2) && !members.contains(&s));

        // Classification filter only.
        let v = View::new("c").classification(cls.oid());
        let members = v.members(&db).unwrap();
        assert!(members.contains(&t1) && members.contains(&s) && !members.contains(&t2));

        // Intersection.
        let v = View::new("both").class("Taxon").classification(cls.oid());
        let members = v.members(&db).unwrap();
        assert_eq!(members.into_iter().collect::<Vec<_>>(), vec![t1]);
    }

    #[test]
    fn views_persist_by_name() {
        let db = temp_db();
        db.define_class(ClassDef::new("Taxon")).unwrap();
        let v = View::new("mine").class("Taxon");
        v.save(&db).unwrap();
        let loaded = View::load(&db, "mine").unwrap();
        assert_eq!(loaded, v);
        assert_eq!(View::names(&db).unwrap(), vec!["mine".to_string()]);
        assert!(View::delete(&db, "mine").unwrap());
        assert!(View::load(&db, "mine").is_err());
        assert!(!View::delete(&db, "mine").unwrap());
    }
}
