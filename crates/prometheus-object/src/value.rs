//! Dynamic attribute values and their types.
//!
//! Prometheus instances are schema-checked but dynamically shaped: an
//! attribute holds a [`Value`] whose conformance to the declared [`Type`] is
//! verified by the object layer at write time. The thesis' ODMG base model
//! gives atomic literals, references and collections (§4.2, §4.4.6); dates
//! get first-class support because publication years drive the ICBN priority
//! rules.

use prometheus_storage::Oid;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A calendar date. Publication dates decide nomenclatural priority
/// (§2.1.2: "the oldest validly published name is selected"), so dates order
/// correctly and only need day precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Date {
    pub year: i32,
    pub month: u8,
    pub day: u8,
}

impl Date {
    /// Build a date, clamping month/day into their calendar ranges.
    pub fn new(year: i32, month: u8, day: u8) -> Self {
        Date {
            year,
            month: month.clamp(1, 12),
            day: day.clamp(1, 31),
        }
    }

    /// A year-only date (January 1st), the usual precision of old botanical
    /// literature.
    pub fn year(year: i32) -> Self {
        Date::new(year, 1, 1)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// A dynamically typed attribute value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Date(Date),
    /// Reference to another instance. Plain references still exist in the
    /// model for compatibility (§4.8.1); semantic links use relationship
    /// instances instead.
    Ref(Oid),
    /// Ordered collection.
    List(Vec<Value>),
}

impl Value {
    /// Human-readable name of this value's runtime type.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Date(_) => "date",
            Value::Ref(_) => "ref",
            Value::List(_) => "list",
        }
    }

    /// Truthiness used by query predicates: `Null` and `false` are false,
    /// everything else is true.
    pub fn is_truthy(&self) -> bool {
        !matches!(self, Value::Null | Value::Bool(false))
    }

    /// Extract a string slice if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extract an integer if this is an int.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Extract a float, widening ints.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Extract an OID if this is a reference.
    pub fn as_ref_oid(&self) -> Option<Oid> {
        match self {
            Value::Ref(oid) => Some(*oid),
            _ => None,
        }
    }

    /// Extract a date if this is a date.
    pub fn as_date(&self) -> Option<Date> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// Order-preserving binary encoding, used to build attribute-index keys:
    /// for two values of the same runtime type, byte-wise ordering of the
    /// encodings matches [`Value::cmp`].
    pub fn encode_ordered(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(0x00),
            Value::Bool(b) => {
                out.push(0x01);
                out.push(*b as u8);
            }
            Value::Int(i) => {
                out.push(0x02);
                // Bias by flipping the sign bit so negatives sort first.
                out.extend_from_slice(&((*i as u64) ^ (1u64 << 63)).to_be_bytes());
            }
            Value::Float(x) => {
                out.push(0x03);
                // IEEE-754 total-order trick.
                let bits = x.to_bits();
                let key = if bits >> 63 == 0 {
                    bits ^ (1u64 << 63)
                } else {
                    !bits
                };
                out.extend_from_slice(&key.to_be_bytes());
            }
            Value::Str(s) => {
                out.push(0x04);
                out.extend_from_slice(s.as_bytes());
                out.push(0x00); // terminator keeps prefix strings ordered first
            }
            Value::Date(d) => {
                out.push(0x05);
                out.extend_from_slice(&((d.year as u32) ^ (1u32 << 31)).to_be_bytes());
                out.push(d.month);
                out.push(d.day);
            }
            Value::Ref(oid) => {
                out.push(0x06);
                out.extend_from_slice(&oid.to_be_bytes());
            }
            Value::List(items) => {
                out.push(0x07);
                for item in items {
                    item.encode_ordered(out);
                }
                out.push(0x00);
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: values of the same type compare naturally (floats via
    /// IEEE total order, int/float cross-compare numerically); values of
    /// different types order by type tag.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Ref(a), Ref(b)) => a.cmp(b),
            (List(a), List(b)) => a.cmp(b),
            _ => self.tag().cmp(&other.tag()),
        }
    }
}

impl Value {
    fn tag(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 4,
            Value::Date(_) => 5,
            Value::Ref(_) => 6,
            Value::List(_) => 7,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Date(d) => write!(f, "{d}"),
            Value::Ref(oid) => write!(f, "{oid}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Date> for Value {
    fn from(v: Date) -> Self {
        Value::Date(v)
    }
}
impl From<Oid> for Value {
    fn from(v: Oid) -> Self {
        Value::Ref(v)
    }
}

/// Declared type of an attribute.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Type {
    Bool,
    Int,
    Float,
    Str,
    Date,
    /// Reference to an instance of the named class (or any subclass).
    Ref(String),
    /// Reference to any instance.
    AnyRef,
    /// Homogeneous list.
    List(Box<Type>),
    /// Anything, including null.
    Any,
}

impl Type {
    /// Structural conformance check, ignoring class subtyping (the database
    /// layer performs the class check because it owns the schema registry).
    /// `Null` conforms to every type — optionality is expressed by the
    /// attribute definition instead.
    pub fn admits_shape(&self, value: &Value) -> bool {
        match (self, value) {
            (_, Value::Null) => true,
            (Type::Any, _) => true,
            (Type::Bool, Value::Bool(_)) => true,
            (Type::Int, Value::Int(_)) => true,
            (Type::Float, Value::Float(_) | Value::Int(_)) => true,
            (Type::Str, Value::Str(_)) => true,
            (Type::Date, Value::Date(_)) => true,
            (Type::Ref(_) | Type::AnyRef, Value::Ref(_)) => true,
            (Type::List(inner), Value::List(items)) => {
                items.iter().all(|item| inner.admits_shape(item))
            }
            _ => false,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Bool => write!(f, "bool"),
            Type::Int => write!(f, "int"),
            Type::Float => write!(f, "float"),
            Type::Str => write!(f, "string"),
            Type::Date => write!(f, "date"),
            Type::Ref(class) => write!(f, "ref<{class}>"),
            Type::AnyRef => write!(f, "ref"),
            Type::List(inner) => write!(f, "list<{inner}>"),
            Type::Any => write!(f, "any"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(Value::Int(0).is_truthy());
        assert!(Value::Str(String::new()).is_truthy());
    }

    #[test]
    fn numeric_cross_comparison() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(1.5) < Value::Int(2));
    }

    #[test]
    fn date_ordering_matches_priority_rules() {
        let apium = Date::year(1821); // Apium repens (Jacq.)Lag.
        let helio = Date::year(1824); // Heliosciadium nodiflorum
        assert!(apium < helio, "older publication takes priority");
    }

    #[test]
    fn ordered_encoding_preserves_int_order() {
        let values = [-100i64, -1, 0, 1, 127, 128, 1_000_000];
        let mut encodings: Vec<Vec<u8>> = Vec::new();
        for v in values {
            let mut buf = Vec::new();
            Value::Int(v).encode_ordered(&mut buf);
            encodings.push(buf);
        }
        for w in encodings.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn ordered_encoding_preserves_string_and_date_order() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        Value::Str("Apium".into()).encode_ordered(&mut a);
        Value::Str("Apiumx".into()).encode_ordered(&mut b);
        assert!(a < b);

        let mut a = Vec::new();
        let mut b = Vec::new();
        Value::Date(Date::year(1753)).encode_ordered(&mut a);
        Value::Date(Date::new(1753, 5, 1)).encode_ordered(&mut b);
        assert!(a < b);
    }

    #[test]
    fn ordered_encoding_preserves_float_order_with_negatives() {
        let values = [-5.5f64, -0.0, 0.0, 0.25, 7.0];
        let mut prev: Option<Vec<u8>> = None;
        for v in values {
            let mut buf = Vec::new();
            Value::Float(v).encode_ordered(&mut buf);
            if let Some(p) = prev {
                assert!(p <= buf, "{v} broke ordering");
            }
            prev = Some(buf);
        }
    }

    #[test]
    fn type_shape_admission() {
        assert!(Type::Int.admits_shape(&Value::Int(1)));
        assert!(!Type::Int.admits_shape(&Value::Str("x".into())));
        assert!(
            Type::Float.admits_shape(&Value::Int(1)),
            "ints widen to float"
        );
        assert!(Type::Any.admits_shape(&Value::List(vec![])));
        assert!(Type::Ref("Taxon".into()).admits_shape(&Value::Ref(Oid::from_raw(1))));
        assert!(Type::List(Box::new(Type::Int)).admits_shape(&Value::List(vec![Value::Int(1)])),);
        assert!(
            !Type::List(Box::new(Type::Int)).admits_shape(&Value::List(vec![Value::Bool(true)])),
        );
        // Null conforms everywhere; optionality is separate.
        assert!(Type::Str.admits_shape(&Value::Null));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::from("x").to_string(), "\"x\"");
        assert_eq!(Value::Date(Date::year(1753)).to_string(), "1753-01-01");
        assert_eq!(
            Type::List(Box::new(Type::Ref("CT".into()))).to_string(),
            "list<ref<CT>>"
        );
    }
}
