//! Persistent instances: objects, relationship instances and the record
//! envelope stored in the substrate.

use crate::value::Value;
use prometheus_storage::Oid;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An ordinary object instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectInstance {
    pub oid: Oid,
    /// Most-specific class of the instance.
    pub class: String,
    /// Attribute values; absent attributes read as `Null` (or their default).
    pub attrs: BTreeMap<String, Value>,
}

impl ObjectInstance {
    /// Attribute value, `Null` if unset.
    pub fn attr(&self, name: &str) -> Value {
        self.attrs.get(name).cloned().unwrap_or(Value::Null)
    }
}

/// A relationship instance (§4.3): origin, destination and its own
/// attributes. It is itself an object — it has an OID and a class — which is
/// what makes relationships first-class in Prometheus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelInstance {
    pub oid: Oid,
    /// Relationship class of this instance.
    pub class: String,
    pub origin: Oid,
    pub destination: Oid,
    pub attrs: BTreeMap<String, Value>,
}

impl RelInstance {
    /// Attribute value, `Null` if unset.
    pub fn attr(&self, name: &str) -> Value {
        self.attrs.get(name).cloned().unwrap_or(Value::Null)
    }

    /// The endpoint opposite to `oid`, if `oid` is an endpoint.
    pub fn opposite(&self, oid: Oid) -> Option<Oid> {
        if self.origin == oid {
            Some(self.destination)
        } else if self.destination == oid {
            Some(self.origin)
        } else {
            None
        }
    }
}

/// Metadata record describing one classification (§4.6): a named set of
/// relationship instances. Membership lives in an index keyspace, not here,
/// so that large classifications do not rewrite a monolithic record on every
/// edge change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassificationMeta {
    pub oid: Oid,
    pub name: String,
    /// Free-form provenance (author, publication, criteria) — requirement 4,
    /// traceability.
    pub attrs: BTreeMap<String, Value>,
    /// Enforce at most one parent per node within this classification.
    pub strict_hierarchy: bool,
}

/// The envelope persisted per record in the store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StoredEntity {
    Object(ObjectInstance),
    Rel(RelInstance),
    Classification(ClassificationMeta),
}

impl StoredEntity {
    /// OID of the contained entity.
    pub fn oid(&self) -> Oid {
        match self {
            StoredEntity::Object(o) => o.oid,
            StoredEntity::Rel(r) => r.oid,
            StoredEntity::Classification(c) => c.oid,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prometheus_storage::codec;

    #[test]
    fn object_attr_defaults_to_null() {
        let obj = ObjectInstance {
            oid: Oid::from_raw(1),
            class: "CT".into(),
            attrs: BTreeMap::new(),
        };
        assert_eq!(obj.attr("missing"), Value::Null);
    }

    #[test]
    fn rel_opposite_endpoint() {
        let rel = RelInstance {
            oid: Oid::from_raw(3),
            class: "Circumscribes".into(),
            origin: Oid::from_raw(1),
            destination: Oid::from_raw(2),
            attrs: BTreeMap::new(),
        };
        assert_eq!(rel.opposite(Oid::from_raw(1)), Some(Oid::from_raw(2)));
        assert_eq!(rel.opposite(Oid::from_raw(2)), Some(Oid::from_raw(1)));
        assert_eq!(rel.opposite(Oid::from_raw(9)), None);
    }

    #[test]
    fn stored_entity_round_trips() {
        let mut attrs = BTreeMap::new();
        attrs.insert("name".to_string(), Value::from("Apium"));
        let entity = StoredEntity::Object(ObjectInstance {
            oid: Oid::from_raw(7),
            class: "NT".into(),
            attrs,
        });
        let bytes = codec::to_bytes(&entity).unwrap();
        let back: StoredEntity = codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, entity);
        assert_eq!(back.oid(), Oid::from_raw(7));
    }
}
