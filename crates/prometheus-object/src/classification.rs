//! Classifications as first-class entities (thesis §4.6).
//!
//! A [`Classification`] is a named set of relationship instances over
//! arbitrary objects, orthogonal to the objects themselves (requirement 12).
//! Because edges — not objects — carry membership, the same object can sit
//! in any number of classifications at once (requirement 3), which is
//! exactly the multiple-overlapping-classifications structure of Figure 4.
//!
//! The type is a convenience handle over [`Database`]: structure queries
//! (roots, leaves, children, descendants), whole-graph operations (deep
//! copy for revisions, requirement 1) and comparisons (specimen-based
//! synonym detection, §2.3). Structure queries are generic over
//! [`Reader`], so they run equally against the live database or a pinned
//! snapshot view.

use crate::database::Database;
use crate::error::DbResult;
use crate::instance::RelInstance;
use crate::read::Reader;
use crate::traversal::{self, Direction, SynonymMode, TraversalSpec};
use crate::value::Value;
use prometheus_storage::Oid;
use std::collections::{BTreeMap, BTreeSet};

/// Handle over one classification in a database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Classification {
    oid: Oid,
}

/// Result of comparing two classifications (or two taxa across them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassificationCompare {
    /// Objects appearing in both classifications.
    pub shared_nodes: BTreeSet<Oid>,
    /// Leaves (objects with no outgoing member edge) in both.
    pub shared_leaves: BTreeSet<Oid>,
    /// Nodes only in the first classification.
    pub only_first: BTreeSet<Oid>,
    /// Nodes only in the second.
    pub only_second: BTreeSet<Oid>,
}

impl Classification {
    /// Create a new classification.
    pub fn create(
        db: &Database,
        name: &str,
        attrs: impl IntoIterator<Item = (String, Value)>,
        strict_hierarchy: bool,
    ) -> DbResult<Self> {
        Ok(Classification {
            oid: db.create_classification(name, attrs, strict_hierarchy)?,
        })
    }

    /// Wrap an existing classification OID.
    pub fn from_oid(oid: Oid) -> Self {
        Classification { oid }
    }

    /// Look a classification up by name.
    pub fn by_name<R: Reader>(db: &R, name: &str) -> DbResult<Option<Self>> {
        Ok(db
            .classification_by_name(name)?
            .map(Classification::from_oid))
    }

    /// The classification's OID.
    pub fn oid(&self) -> Oid {
        self.oid
    }

    /// The classification's name.
    pub fn name<R: Reader>(&self, db: &R) -> DbResult<String> {
        Ok(db.classification_meta(self.oid)?.name)
    }

    /// Add an existing relationship instance as an edge.
    pub fn add_edge(&self, db: &Database, rel: Oid) -> DbResult<()> {
        db.add_edge_to_classification(self.oid, rel)
    }

    /// Create a relationship instance and add it in one step — the usual way
    /// classifications are built.
    pub fn link(
        &self,
        db: &Database,
        rel_class: &str,
        parent: Oid,
        child: Oid,
        attrs: impl IntoIterator<Item = (String, Value)>,
    ) -> DbResult<Oid> {
        db.in_unit_scope(|db| {
            let rel = db.create_relationship(rel_class, parent, child, attrs)?;
            db.add_edge_to_classification(self.oid, rel)?;
            Ok(rel)
        })
    }

    /// Remove an edge from the classification (the relationship instance
    /// survives).
    pub fn remove_edge(&self, db: &Database, rel: Oid) -> DbResult<()> {
        db.remove_edge_from_classification(self.oid, rel)
    }

    /// All member edges.
    pub fn edges<R: Reader>(&self, db: &R) -> DbResult<Vec<RelInstance>> {
        db.classification_edges(self.oid)?
            .into_iter()
            .map(|oid| db.rel(oid))
            .collect()
    }

    /// All objects participating in the classification (origins and
    /// destinations of member edges).
    pub fn nodes<R: Reader>(&self, db: &R) -> DbResult<BTreeSet<Oid>> {
        let mut nodes = BTreeSet::new();
        for edge in self.edges(db)? {
            nodes.insert(edge.origin);
            nodes.insert(edge.destination);
        }
        Ok(nodes)
    }

    /// Nodes that are never the destination of a member edge — the tops of
    /// the hierarchy.
    pub fn roots<R: Reader>(&self, db: &R) -> DbResult<Vec<Oid>> {
        let edges = self.edges(db)?;
        let dests: BTreeSet<Oid> = edges.iter().map(|e| e.destination).collect();
        let mut roots: Vec<Oid> = edges
            .iter()
            .map(|e| e.origin)
            .filter(|o| !dests.contains(o))
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        roots.sort();
        Ok(roots)
    }

    /// Nodes that are never the origin of a member edge — in taxonomy, the
    /// specimens (or lowest taxa).
    pub fn leaves<R: Reader>(&self, db: &R) -> DbResult<Vec<Oid>> {
        let edges = self.edges(db)?;
        let origins: BTreeSet<Oid> = edges.iter().map(|e| e.origin).collect();
        Ok(edges
            .iter()
            .map(|e| e.destination)
            .filter(|d| !origins.contains(d))
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect())
    }

    /// Direct children of `node` within this classification (record-free:
    /// served from the endpoint and membership indexes).
    pub fn children<R: Reader>(&self, db: &R, node: Oid) -> DbResult<Vec<Oid>> {
        Ok(db
            .adjacency(node, None, true)?
            .into_iter()
            .filter(|(edge, _)| db.edge_in_classification(self.oid, *edge))
            .map(|(_, child)| child)
            .collect())
    }

    /// Direct parents of `node` within this classification (at most one in a
    /// strict hierarchy).
    pub fn parents<R: Reader>(&self, db: &R, node: Oid) -> DbResult<Vec<Oid>> {
        Ok(db
            .adjacency(node, None, false)?
            .into_iter()
            .filter(|(edge, _)| db.edge_in_classification(self.oid, *edge))
            .map(|(_, parent)| parent)
            .collect())
    }

    /// All descendants of `node` (requirement 9: recursive exploration),
    /// optionally depth-bounded.
    pub fn descendants<R: Reader>(
        &self,
        db: &R,
        node: Oid,
        max_depth: Option<u32>,
    ) -> DbResult<Vec<Oid>> {
        let spec = TraversalSpec::closure(Vec::new())
            .in_classification(self.oid)
            .depth(1, max_depth);
        Ok(traversal::traverse(db, node, &spec)?
            .into_iter()
            .map(|v| v.node)
            .collect())
    }

    /// All ancestors of `node`.
    pub fn ancestors<R: Reader>(
        &self,
        db: &R,
        node: Oid,
        max_depth: Option<u32>,
    ) -> DbResult<Vec<Oid>> {
        let spec = TraversalSpec::closure(Vec::new())
            .direction(Direction::Incoming)
            .in_classification(self.oid)
            .depth(1, max_depth);
        Ok(traversal::traverse(db, node, &spec)?
            .into_iter()
            .map(|v| v.node)
            .collect())
    }

    /// The leaf set below `node` — in taxonomy, the *circumscription* of the
    /// taxon in terms of specimens, the objective basis of every comparison
    /// (§2.1.3).
    pub fn leaf_set<R: Reader>(&self, db: &R, node: Oid) -> DbResult<BTreeSet<Oid>> {
        let mut leaves = BTreeSet::new();
        let descendants = self.descendants(db, node, None)?;
        for d in descendants {
            if self.children(db, d)?.is_empty() {
                leaves.insert(d);
            }
        }
        Ok(leaves)
    }

    /// Deep-copy this classification: fresh relationship instances with the
    /// same endpoints, attributes copied, membership in a new classification.
    /// Objects are **shared**, not copied — this is what makes a revision an
    /// *overlapping* classification (§2.1.3).
    pub fn copy(&self, db: &Database, new_name: &str) -> DbResult<Classification> {
        let meta = db.classification_meta(self.oid)?;
        db.in_unit_scope(|db| {
            let copy =
                Classification::create(db, new_name, meta.attrs.clone(), meta.strict_hierarchy)?;
            for edge in self.edges(db)? {
                let attrs: BTreeMap<String, Value> = edge.attrs.clone();
                copy.link(db, &edge.class, edge.origin, edge.destination, attrs)?;
            }
            Ok(copy)
        })
    }

    /// Compare two classifications node-wise and leaf-wise. With
    /// `SynonymMode::Transparent`, instance synonyms count as the same node.
    pub fn compare<R: Reader>(
        &self,
        db: &R,
        other: &Classification,
        synonyms: SynonymMode,
    ) -> DbResult<ClassificationCompare> {
        let canon = |oid: Oid| match synonyms {
            SynonymMode::Ignore => oid,
            SynonymMode::Transparent => db.synonym_representative(oid),
        };
        let a_nodes: BTreeSet<Oid> = self.nodes(db)?.into_iter().map(canon).collect();
        let b_nodes: BTreeSet<Oid> = other.nodes(db)?.into_iter().map(canon).collect();
        let a_leaves: BTreeSet<Oid> = self.leaves(db)?.into_iter().map(canon).collect();
        let b_leaves: BTreeSet<Oid> = other.leaves(db)?.into_iter().map(canon).collect();
        Ok(ClassificationCompare {
            shared_nodes: a_nodes.intersection(&b_nodes).copied().collect(),
            shared_leaves: a_leaves.intersection(&b_leaves).copied().collect(),
            only_first: a_nodes.difference(&b_nodes).copied().collect(),
            only_second: b_nodes.difference(&a_nodes).copied().collect(),
        })
    }

    /// Degree of leaf-set overlap between a taxon here and a taxon in
    /// `other`: `(shared, only_self, only_other)`. Full synonymy means both
    /// "only" sets are empty; *pro parte* synonymy means `shared` is
    /// non-empty but so is at least one "only" set (§2.1.3).
    pub fn circumscription_overlap<R: Reader>(
        &self,
        db: &R,
        node: Oid,
        other: &Classification,
        other_node: Oid,
        synonyms: SynonymMode,
    ) -> DbResult<(usize, usize, usize)> {
        let canon = |oid: Oid| match synonyms {
            SynonymMode::Ignore => oid,
            SynonymMode::Transparent => db.synonym_representative(oid),
        };
        let a: BTreeSet<Oid> = self.leaf_set(db, node)?.into_iter().map(canon).collect();
        let b: BTreeSet<Oid> = other
            .leaf_set(db, other_node)?
            .into_iter()
            .map(canon)
            .collect();
        let shared = a.intersection(&b).count();
        Ok((shared, a.len() - shared, b.len() - shared))
    }

    /// Extract the subtree under `node` into a new classification — POOL's
    /// graph-extraction operator uses this.
    pub fn extract_subtree(
        &self,
        db: &Database,
        node: Oid,
        new_name: &str,
    ) -> DbResult<Classification> {
        let meta = db.classification_meta(self.oid)?;
        db.in_unit_scope(|db| {
            let sub =
                Classification::create(db, new_name, meta.attrs.clone(), meta.strict_hierarchy)?;
            let mut stack = vec![node];
            let mut seen: BTreeSet<Oid> = BTreeSet::new();
            while let Some(current) = stack.pop() {
                if !seen.insert(current) {
                    continue;
                }
                for edge in db.classification_child_edges(self.oid, current)? {
                    sub.add_edge(db, edge.oid)?;
                    stack.push(edge.destination);
                }
            }
            Ok(sub)
        })
    }

    /// Verify the classification is structurally sound: acyclic and (if
    /// strict) single-parented. Returns problem descriptions.
    pub fn check_integrity<R: Reader>(&self, db: &R) -> DbResult<Vec<String>> {
        let mut problems = Vec::new();
        let meta = db.classification_meta(self.oid)?;
        let edges = self.edges(db)?;
        if meta.strict_hierarchy {
            let mut parent_count: BTreeMap<Oid, usize> = BTreeMap::new();
            for e in &edges {
                *parent_count.entry(e.destination).or_default() += 1;
            }
            for (node, count) in parent_count {
                if count > 1 {
                    problems.push(format!("node {node} has {count} parents"));
                }
            }
        }
        // Cycle check: DFS from each root; if some node is never reached
        // from any root and edges exist, there is a cycle among the rest.
        let nodes = self.nodes(db)?;
        let mut reached: BTreeSet<Oid> = BTreeSet::new();
        for root in self.roots(db)? {
            reached.insert(root);
            for v in self.descendants(db, root, None)? {
                reached.insert(v);
            }
        }
        for node in nodes.difference(&reached) {
            problems.push(format!("node {node} is unreachable from any root (cycle)"));
        }
        Ok(problems)
    }
}

impl From<Classification> for Oid {
    fn from(c: Classification) -> Oid {
        c.oid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::tests::temp_db;
    use crate::database::Database;
    use crate::schema::{AttrDef, ClassDef, RelClassDef};
    use crate::value::Type;

    fn shapes_db() -> Database {
        let db = temp_db();
        db.define_class(ClassDef::new("Taxon").attr(AttrDef::required("name", Type::Str)))
            .unwrap();
        db.define_class(ClassDef::new("Specimen").attr(AttrDef::required("code", Type::Str)))
            .unwrap();
        db.define_relationship(
            RelClassDef::aggregation("Circ", "Taxon", "Object")
                .sharable(true)
                .acyclic(true),
        )
        .unwrap();
        db
    }

    fn taxon(db: &Database, name: &str) -> Oid {
        db.create_object("Taxon", vec![("name".to_string(), Value::from(name))])
            .unwrap()
    }

    fn specimen(db: &Database, code: &str) -> Oid {
        db.create_object("Specimen", vec![("code".to_string(), Value::from(code))])
            .unwrap()
    }

    /// Figure 4, top-left: Shapes > {Squares, Triangles, Ovals} > specimens.
    fn first_classification(db: &Database) -> (Classification, BTreeMap<&'static str, Oid>) {
        let cls = Classification::create(db, "taxonomist-1", Vec::new(), true).unwrap();
        let shapes = taxon(db, "Shapes");
        let squares = taxon(db, "Squares");
        let triangles = taxon(db, "Triangles");
        let ovals = taxon(db, "Ovals");
        let ws = specimen(db, "white-square");
        let gt = specimen(db, "grey-triangle");
        let bo = specimen(db, "black-oval");
        for (parent, child) in [
            (shapes, squares),
            (shapes, triangles),
            (shapes, ovals),
            (squares, ws),
            (triangles, gt),
            (ovals, bo),
        ] {
            cls.link(db, "Circ", parent, child, Vec::new()).unwrap();
        }
        let mut map = BTreeMap::new();
        map.insert("shapes", shapes);
        map.insert("squares", squares);
        map.insert("triangles", triangles);
        map.insert("ovals", ovals);
        map.insert("white-square", ws);
        map.insert("grey-triangle", gt);
        map.insert("black-oval", bo);
        (cls, map)
    }

    #[test]
    fn structure_queries() {
        let db = shapes_db();
        let (cls, m) = first_classification(&db);
        assert_eq!(cls.roots(&db).unwrap(), vec![m["shapes"]]);
        let leaves = cls.leaves(&db).unwrap();
        assert_eq!(leaves.len(), 3);
        assert!(leaves.contains(&m["white-square"]));
        let children = cls.children(&db, m["shapes"]).unwrap();
        assert_eq!(children.len(), 3);
        assert_eq!(cls.parents(&db, m["squares"]).unwrap(), vec![m["shapes"]]);
        let desc = cls.descendants(&db, m["shapes"], None).unwrap();
        assert_eq!(desc.len(), 6);
        let anc = cls.ancestors(&db, m["white-square"], None).unwrap();
        assert_eq!(anc, vec![m["squares"], m["shapes"]]);
    }

    #[test]
    fn leaf_set_is_the_circumscription() {
        let db = shapes_db();
        let (cls, m) = first_classification(&db);
        let circ = cls.leaf_set(&db, m["shapes"]).unwrap();
        assert_eq!(circ.len(), 3);
        let circ = cls.leaf_set(&db, m["squares"]).unwrap();
        assert_eq!(
            circ.into_iter().collect::<Vec<_>>(),
            vec![m["white-square"]]
        );
    }

    #[test]
    fn overlapping_classifications_share_objects() {
        let db = shapes_db();
        let (cls1, m) = first_classification(&db);
        // Taxonomist 3 reclassifies by brightness: same specimens, new taxa.
        let cls2 = Classification::create(&db, "taxonomist-3", Vec::new(), true).unwrap();
        let bright = taxon(&db, "Bright");
        let dark = taxon(&db, "Dark");
        let all = taxon(&db, "Shades");
        cls2.link(&db, "Circ", all, bright, Vec::new()).unwrap();
        cls2.link(&db, "Circ", all, dark, Vec::new()).unwrap();
        cls2.link(&db, "Circ", bright, m["white-square"], Vec::new())
            .unwrap();
        cls2.link(&db, "Circ", dark, m["grey-triangle"], Vec::new())
            .unwrap();
        cls2.link(&db, "Circ", dark, m["black-oval"], Vec::new())
            .unwrap();
        // The specimen sits in both hierarchies simultaneously.
        let cmp = cls1.compare(&db, &cls2, SynonymMode::Ignore).unwrap();
        assert_eq!(cmp.shared_leaves.len(), 3, "all specimens shared");
        assert!(cmp.shared_nodes.contains(&m["white-square"]));
        assert!(cmp.only_first.contains(&m["squares"]));
        assert!(cmp.only_second.contains(&bright));
        // Circumscription overlap: Squares (1 specimen) vs Bright (1 specimen).
        let (shared, only_a, only_b) = cls1
            .circumscription_overlap(&db, m["squares"], &cls2, bright, SynonymMode::Ignore)
            .unwrap();
        assert_eq!((shared, only_a, only_b), (1, 0, 0), "full synonyms");
        // Squares vs Dark: disjoint.
        let (shared, _, _) = cls1
            .circumscription_overlap(&db, m["squares"], &cls2, dark, SynonymMode::Ignore)
            .unwrap();
        assert_eq!(shared, 0);
    }

    #[test]
    fn copy_creates_independent_overlapping_revision() {
        let db = shapes_db();
        let (cls1, m) = first_classification(&db);
        let cls2 = cls1.copy(&db, "revision").unwrap();
        assert_eq!(cls2.name(&db).unwrap(), "revision");
        assert_eq!(
            cls2.edges(&db).unwrap().len(),
            cls1.edges(&db).unwrap().len()
        );
        // Same nodes (objects shared), different edges.
        let e1: BTreeSet<Oid> = cls1.edges(&db).unwrap().iter().map(|e| e.oid).collect();
        let e2: BTreeSet<Oid> = cls2.edges(&db).unwrap().iter().map(|e| e.oid).collect();
        assert!(e1.is_disjoint(&e2));
        assert_eq!(cls1.nodes(&db).unwrap(), cls2.nodes(&db).unwrap());
        // Mutating the copy leaves the original intact.
        let new_taxon = taxon(&db, "Rectangles");
        let edge = cls2
            .link(&db, "Circ", m["shapes"], new_taxon, Vec::new())
            .unwrap();
        assert!(db.edge_in_classification(cls2.oid(), edge));
        assert_eq!(cls1.descendants(&db, m["shapes"], None).unwrap().len(), 6);
        assert_eq!(cls2.descendants(&db, m["shapes"], None).unwrap().len(), 7);
    }

    #[test]
    fn extract_subtree() {
        let db = shapes_db();
        let (cls, m) = first_classification(&db);
        let sub = cls
            .extract_subtree(&db, m["squares"], "just-squares")
            .unwrap();
        assert_eq!(sub.edges(&db).unwrap().len(), 1);
        assert_eq!(sub.roots(&db).unwrap(), vec![m["squares"]]);
        // Shared edges: removing from the extract does not affect the source.
        let edge = sub.edges(&db).unwrap()[0].oid;
        sub.remove_edge(&db, edge).unwrap();
        assert!(db.edge_in_classification(cls.oid(), edge));
    }

    #[test]
    fn integrity_check_flags_multi_parents_in_lenient_mode() {
        let db = shapes_db();
        let cls = Classification::create(&db, "lenient", Vec::new(), false).unwrap();
        let a = taxon(&db, "a");
        let b = taxon(&db, "b");
        let c = taxon(&db, "c");
        cls.link(&db, "Circ", a, c, Vec::new()).unwrap();
        cls.link(&db, "Circ", b, c, Vec::new()).unwrap();
        // Lenient classifications accept this; check_integrity only reports
        // against the strict flag, so no problem is raised here.
        assert!(cls.check_integrity(&db).unwrap().is_empty());
        let strict = Classification::create(&db, "strict", Vec::new(), true).unwrap();
        let d = taxon(&db, "d");
        let edge = db.create_relationship("Circ", a, d, Vec::new()).unwrap();
        strict.add_edge(&db, edge).unwrap();
        assert!(strict.check_integrity(&db).unwrap().is_empty());
    }

    #[test]
    fn traceability_attrs_are_preserved() {
        let db = shapes_db();
        let cls = Classification::create(
            &db,
            "published",
            vec![
                ("author".to_string(), Value::from("Linnaeus")),
                ("criteria".to_string(), Value::from("leaf shape")),
            ],
            true,
        )
        .unwrap();
        let meta = db.classification_meta(cls.oid()).unwrap();
        assert_eq!(meta.attrs.get("author"), Some(&Value::from("Linnaeus")));
        let a = taxon(&db, "a");
        let b = taxon(&db, "b");
        let edge = cls
            .link(
                &db,
                "Circ",
                a,
                b,
                vec![("".to_string(), Value::Null)]
                    .into_iter()
                    .filter(|_| false)
                    .collect::<Vec<_>>(),
            )
            .unwrap();
        assert!(db.rel(edge).is_ok());
    }
}
